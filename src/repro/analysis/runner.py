"""Lint driver: file discovery, rule execution, CLI.

``python -m repro lint [paths...]`` — lints ``src/repro`` by default,
prints a text or JSON report, and exits 0 (clean), 1 (findings), or
2 (usage/parse error). The driver parses every file first, builds the
:class:`~repro.analysis.program.Program` whole-program model, then runs
per-file rules file by file and program rules once over the whole set.

Extras beyond the plain pass:

* ``--strict-suppressions`` — audit ``# slinglint: disable=`` comments
  and flag the ones that no longer suppress anything (SUP001);
* ``--list-rules`` — print the rule catalog (id, severity, title);
* ``--state-inventory FILE`` — write the CKPT mutable-state inventory
  (:mod:`repro.analysis.state_inventory`);
* ``--sanitize`` — run the golden scenarios with the RNG-stream
  recorder on and diff dynamic draws against the static STREAM map
  (:mod:`repro.analysis.sanitize`);
* ``--bench FILE`` — append a runtime record so the lint pass itself is
  benchmarked alongside the simulations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, Severity, format_findings, sort_findings
from repro.analysis.program import Program
from repro.analysis.registry import (
    LintContext,
    LintRule,
    all_rules,
    register_rule,
    run_program_rules,
    run_rules,
)


def _repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


def _default_target() -> Path:
    return Path(__file__).resolve().parents[1]


@register_rule
class UnusedSuppressionRule(LintRule):
    """SUP001: suppression comments must still suppress something.

    A ``# slinglint: disable=RULE`` directive that no longer matches any
    finding is dead weight: it documents a violation that was fixed (or
    never existed) and will silently swallow a *future* violation on
    that line. Driver-computed — enabled by ``--strict-suppressions``.
    """

    rule_id = "SUP001"
    title = "unused suppression directive"
    severity = Severity.WARNING
    fix_hint = "delete the stale # slinglint: disable comment"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        # Computed by the driver from suppression-hit data, not from the
        # AST; the class exists so the catalog and severity are uniform.
        return iter(())


def unused_suppression_findings(
    ctx: LintContext, suppressed: Sequence[Finding]
) -> List[Finding]:
    """SUP001 findings for directives in ``ctx`` that suppressed nothing.

    ``suppressed`` is the set of findings (for this file) that rule
    execution dropped; a directive is *used* when at least one dropped
    finding matches its line and rule id.
    """
    rule = UnusedSuppressionRule()

    def stale(path: str, line: int, rule_id: str, file_level: bool) -> Finding:
        scope = "file-wide " if file_level else ""
        return Finding(
            path=path,
            line=line,
            col=1,
            rule_id=rule.rule_id,
            severity=rule.severity,
            message=(
                f"{scope}suppression of {rule_id} no longer suppresses "
                "any finding"
            ),
            fix_hint=rule.fix_hint,
        )

    dropped_by_line: Dict[int, Set[str]] = {}
    dropped_ids: Set[str] = set()
    for finding in suppressed:
        dropped_by_line.setdefault(finding.line, set()).add(finding.rule_id)
        dropped_ids.add(finding.rule_id)
    findings: List[Finding] = []
    for line in sorted(ctx.line_suppressions):
        at_line = dropped_by_line.get(line, set())
        for rule_id in sorted(ctx.line_suppressions[line]):
            used = bool(at_line) if rule_id == "all" else rule_id in at_line
            if not used:
                findings.append(stale(ctx.path, line, rule_id, file_level=False))
    for rule_id in sorted(ctx.file_suppressions):
        used = bool(dropped_ids) if rule_id == "all" else rule_id in dropped_ids
        if not used:
            findings.append(stale(ctx.path, 1, rule_id, file_level=True))
    return findings


@dataclass
class LintReport:
    """Everything one lint invocation produced."""

    findings: List[Finding]
    contexts: List[LintContext] = field(default_factory=list)
    program: Optional[Program] = None
    #: Findings dropped by suppression directives, per file path.
    suppressed_by_path: Dict[str, List[Finding]] = field(default_factory=dict)


def _run_over_contexts(
    contexts: Sequence[LintContext], strict_suppressions: bool = False
) -> LintReport:
    """Run per-file and program rules over parsed contexts."""
    program = Program(contexts)
    findings: List[Finding] = []
    suppressed_by_path: Dict[str, List[Finding]] = {
        ctx.path: [] for ctx in contexts
    }
    for ctx in contexts:
        findings.extend(
            run_rules(ctx, suppressed=suppressed_by_path[ctx.path])
        )
    program_suppressed: List[Finding] = []
    findings.extend(run_program_rules(program, suppressed=program_suppressed))
    for finding in program_suppressed:
        suppressed_by_path.setdefault(finding.path, []).append(finding)
    if strict_suppressions:
        for ctx in contexts:
            findings.extend(
                unused_suppression_findings(
                    ctx, suppressed_by_path.get(ctx.path, [])
                )
            )
    return LintReport(
        findings=sort_findings(findings),
        contexts=list(contexts),
        program=program,
        suppressed_by_path=suppressed_by_path,
    )


def lint_source(
    source: str,
    path: str = "<string>",
    num_rus: int = 256,
    num_phys: int = 256,
) -> List[Finding]:
    """Lint one source string; raises SyntaxError on unparseable input.

    The single file forms a one-module program, so program rules
    (STREAM/TIMX/CKPT) run over it too.
    """
    ctx = LintContext.for_source(
        source, path=path, p4_num_rus=num_rus, p4_num_phys=num_phys
    )
    return _run_over_contexts([ctx]).findings


def _is_skippable(path: Path) -> bool:
    """True for files under ``__pycache__`` or hidden directories."""
    return any(
        part == "__pycache__" or part.startswith(".") for part in path.parts[:-1]
    ) or path.name.startswith(".")


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand directories into sorted ``*.py`` file lists.

    ``__pycache__`` and hidden directories are skipped, and overlapping
    arguments are deduplicated by resolved path — ``repro lint src
    src/repro`` lints (and reports) each file once.
    """
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if not _is_skippable(p)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _contexts_for_paths(
    paths: Optional[Sequence[Path]],
    num_rus: int,
    num_phys: int,
) -> List[LintContext]:
    targets = [Path(p) for p in paths] if paths else [_default_target()]
    root = _repo_root()
    contexts: List[LintContext] = []
    for file_path in discover_files(targets):
        source = file_path.read_text()
        resolved = file_path.resolve()
        try:
            display = str(resolved.relative_to(root))
        except ValueError:
            display = str(file_path)
        contexts.append(
            LintContext.for_source(
                source, path=display, p4_num_rus=num_rus, p4_num_phys=num_phys
            )
        )
    return contexts


def lint_report(
    paths: Optional[Sequence[Path]] = None,
    num_rus: int = 256,
    num_phys: int = 256,
    strict_suppressions: bool = False,
) -> LintReport:
    """Full lint pass over files/directories, returning the rich report.

    Finding paths are reported relative to the repository root when the
    file lives under it, so reports are stable across checkouts.
    """
    contexts = _contexts_for_paths(paths, num_rus, num_phys)
    return _run_over_contexts(contexts, strict_suppressions=strict_suppressions)


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    num_rus: int = 256,
    num_phys: int = 256,
    strict_suppressions: bool = False,
) -> List[Finding]:
    """Lint files/directories (default: the ``repro`` package source)."""
    return lint_report(
        paths,
        num_rus=num_rus,
        num_phys=num_phys,
        strict_suppressions=strict_suppressions,
    ).findings


def rule_catalog() -> str:
    """The registered rule catalog, one ``ID severity title`` line each."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id:10s} {str(rule.severity):8s} {rule.title}")
    return "\n".join(lines)


#: Wall-clock budget for one whole-repo lint pass; the tier-1 smoke
#: fails when the analyzer grows slower than this.
LINT_BUDGET_SECONDS = 20.0


def _record_bench(bench_path: Path, files: int, findings: int, seconds: float) -> None:
    """Append one lint-runtime record to a JSON benchmark file."""
    entries = []
    if bench_path.exists():
        try:
            entries = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            entries = []
    entries.append(
        {
            "benchmark": "slinglint",
            "files": files,
            "rules": len(all_rules()),
            "findings": findings,
            "wall_seconds": round(seconds, 4),
            "budget_seconds": LINT_BUDGET_SECONDS,
        }
    )
    bench_path.parent.mkdir(parents=True, exist_ok=True)
    bench_path.write_text(json.dumps(entries, indent=2) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis for the Slingshot reproduction (slinglint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package source)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--num-rus",
        type=int,
        default=256,
        help="deployment scale for the P4 resource verifier (default: 256)",
    )
    parser.add_argument(
        "--num-phys",
        type=int,
        default=256,
        help="PHY-server count for the P4 resource verifier (default: 256)",
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help="flag # slinglint: disable comments that suppress nothing (SUP001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, severity, title) and exit",
    )
    parser.add_argument(
        "--state-inventory",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the CKPT mutable-state inventory JSON to FILE",
    )
    parser.add_argument(
        "--write-manifest",
        action="store_true",
        help="regenerate src/repro/checkpoint/manifest.py from the state "
        "inventory (the literal CKPT003 checks against)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the golden scenarios with the RNG-stream recorder and "
        "diff dynamic draws against the static STREAM map",
    )
    parser.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="FILE",
        help="append a lint-runtime record to this JSON benchmark file",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    if args.list_rules:
        print(rule_catalog())
        return 0
    # Wall-clock timing of the lint pass itself is host tooling, not
    # simulation logic.
    started = time.perf_counter()  # slinglint: disable=DET001
    try:
        report = lint_report(
            args.paths or None,
            num_rus=args.num_rus,
            num_phys=args.num_phys,
            strict_suppressions=args.strict_suppressions,
        )
    except (SyntaxError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    findings = report.findings
    elapsed = time.perf_counter() - started  # slinglint: disable=DET001
    sanitize_failed = False
    extra_lines: List[str] = []
    if args.state_inventory is not None and report.program is not None:
        from repro.analysis.state_inventory import write_inventory

        write_inventory(report.program, args.state_inventory)
        extra_lines.append(f"state inventory written to {args.state_inventory}")
    if args.write_manifest and report.program is not None:
        from repro.analysis.state_inventory import MANIFEST_MODULE, write_manifest

        manifest_module = report.program.modules.get(MANIFEST_MODULE)
        if manifest_module is None:
            print(
                "repro lint: --write-manifest needs the whole package "
                f"linted (module {MANIFEST_MODULE} not in the file set)",
                file=sys.stderr,
            )
            return 2
        manifest_path = Path(manifest_module.context.path)
        write_manifest(report.program, manifest_path)
        extra_lines.append(f"checkpoint manifest written to {manifest_path}")
    if args.sanitize and report.program is not None:
        from repro.analysis.sanitize import run_sanitizer

        result = run_sanitizer(report.program)
        extra_lines.append(result.summary())
        sanitize_failed = bool(result.divergences)
    try:
        print(format_findings(findings, fmt=args.format))
        for line in extra_lines:
            print(line)
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe; the exit code
        # still reports the findings.
        sys.stderr.close()
        return 1 if findings or sanitize_failed else 0
    if args.bench is not None:
        _record_bench(
            args.bench,
            files=len(report.contexts),
            findings=len(findings),
            seconds=elapsed,
        )
    return 1 if findings or sanitize_failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
