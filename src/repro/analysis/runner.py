"""Lint driver: file discovery, rule execution, CLI.

``python -m repro lint [paths...]`` — lints ``src/repro`` by default,
prints a text or JSON report, and exits 0 (clean), 1 (findings), or
2 (usage/parse error). ``--bench FILE`` appends a runtime record so the
lint pass itself is benchmarked alongside the simulations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.findings import Finding, format_findings, sort_findings
from repro.analysis.registry import LintContext, run_rules


def _repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


def _default_target() -> Path:
    return Path(__file__).resolve().parents[1]


def lint_source(
    source: str,
    path: str = "<string>",
    num_rus: int = 256,
    num_phys: int = 256,
) -> List[Finding]:
    """Lint one source string; raises SyntaxError on unparseable input."""
    ctx = LintContext.for_source(
        source, path=path, p4_num_rus=num_rus, p4_num_phys=num_phys
    )
    return sort_findings(run_rules(ctx))


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand directories into sorted ``*.py`` file lists."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    num_rus: int = 256,
    num_phys: int = 256,
) -> List[Finding]:
    """Lint files/directories (default: the ``repro`` package source).

    Finding paths are reported relative to the repository root when the
    file lives under it, so reports are stable across checkouts.
    """
    targets = [Path(p) for p in paths] if paths else [_default_target()]
    root = _repo_root()
    findings: List[Finding] = []
    for file_path in discover_files(targets):
        source = file_path.read_text()
        resolved = file_path.resolve()
        try:
            display = str(resolved.relative_to(root))
        except ValueError:
            display = str(file_path)
        findings.extend(
            lint_source(source, path=display, num_rus=num_rus, num_phys=num_phys)
        )
    return sort_findings(findings)


def _record_bench(bench_path: Path, files: int, findings: int, seconds: float) -> None:
    """Append one lint-runtime record to a JSON benchmark file."""
    entries = []
    if bench_path.exists():
        try:
            entries = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            entries = []
    entries.append(
        {
            "benchmark": "slinglint",
            "files": files,
            "findings": findings,
            "wall_seconds": round(seconds, 4),
        }
    )
    bench_path.parent.mkdir(parents=True, exist_ok=True)
    bench_path.write_text(json.dumps(entries, indent=2) + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis for the Slingshot reproduction (slinglint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package source)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--num-rus",
        type=int,
        default=256,
        help="deployment scale for the P4 resource verifier (default: 256)",
    )
    parser.add_argument(
        "--num-phys",
        type=int,
        default=256,
        help="PHY-server count for the P4 resource verifier (default: 256)",
    )
    parser.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="FILE",
        help="append a lint-runtime record to this JSON benchmark file",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    # Wall-clock timing of the lint pass itself is host tooling, not
    # simulation logic.  # slinglint: disable=DET001
    started = time.perf_counter()  # slinglint: disable=DET001
    try:
        findings = lint_paths(
            args.paths or None, num_rus=args.num_rus, num_phys=args.num_phys
        )
    except (SyntaxError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started  # slinglint: disable=DET001
    try:
        print(format_findings(findings, fmt=args.format))
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe; the exit code
        # still reports the findings.
        sys.stderr.close()
        return 1 if findings else 0
    if args.bench is not None:
        files = len(discover_files([Path(p) for p in args.paths] or [_default_target()]))
        _record_bench(args.bench, files=files, findings=len(findings), seconds=elapsed)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
