"""Whole-program model: module table, import graph, symbols, call graph.

Per-file rules see one AST at a time; that ceiling is exactly where the
determinism contract leaks (a float-seconds value returned from one
module and scheduled in another, a stream name drawn far from the
subsystem that owns it). :class:`Program` lifts the linted file set into
one queryable object:

* **module table** — every file keyed by its dotted module name
  (``repro.cell.deployment``), with the file's :class:`LintContext`;
* **import graph** — per-module alias table (``run_for_ns`` ->
  ``repro.sim.units.run_for_ns``) plus module -> imported-module edges;
* **symbol table** — top-level functions, classes, and class methods,
  each with its AST node and defining module;
* **call graph** — best-effort resolution of ``Call`` nodes to program
  functions: bare names through the local symbol table and import
  aliases, ``self.method()`` within a class, and ``module.func()``
  through ``import``/``from`` aliases. Unresolvable calls (builtins,
  third-party, dynamic dispatch) resolve to ``None`` and are simply
  absent from the graph — the analyses built on top are *may* analyses
  over the resolvable subset.

Program-level rules subclass :class:`~repro.analysis.registry.ProgramRule`
and receive the :class:`Program`; their findings are filtered through the
owning file's suppressions exactly like per-file findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.registry import LintContext, dotted_name

#: Functions and methods share one qualname space:
#: ``repro.cell.deployment.build_slingshot_cell`` (module function) or
#: ``repro.apps.video.VideoSender._send_frame`` (method).
FunctionNode = ast.FunctionDef


def module_name_for(ctx: LintContext) -> str:
    """Dotted module name for a linted file.

    Files inside the package map from their ``module_parts``
    (``("cell", "deployment.py")`` -> ``repro.cell.deployment``); files
    outside it fall back to the display path with separators dotted, so
    every context gets a unique, stable name.
    """
    if ctx.module_parts:
        parts = list(ctx.module_parts)
        leaf = parts.pop()
        if leaf != "__init__.py":
            parts.append(leaf[:-3] if leaf.endswith(".py") else leaf)
        return ".".join(["repro", *parts])
    cleaned = ctx.path.replace("\\", "/").strip("/")
    if cleaned.endswith(".py"):
        cleaned = cleaned[:-3]
    return cleaned.replace("/", ".") or "<string>"


@dataclass
class FunctionInfo:
    """One program function or method."""

    qualname: str
    module: str
    #: Enclosing class name for methods, ``None`` for module functions.
    class_name: Optional[str]
    node: FunctionNode
    #: Positional parameter names (posonly + regular), ``self`` excluded
    #: for methods so argument positions line up with call sites.
    params: Tuple[str, ...]
    #: Keyword-only parameter names.
    kwonly: Tuple[str, ...]


@dataclass
class ClassInfo:
    """One top-level class definition."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Base-class expressions as dotted strings (unresolved).
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One linted file inside the program."""

    name: str
    context: LintContext
    #: Local alias -> fully dotted target. Covers ``import a.b as c``
    #: (``c`` -> ``a.b``) and ``from a.b import f as g`` (``g`` ->
    #: ``a.b.f``).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Top-level function name -> info.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Top-level class name -> info.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def subsystem(self) -> str:
        """Top-level package within ``repro`` (``"cell"``, ``"faults"``,
        ...); the module's own stem for package-root files."""
        parts = self.context.module_parts
        if not parts:
            return ""
        if len(parts) == 1:
            leaf = parts[0]
            return leaf[:-3] if leaf.endswith(".py") else leaf
        return parts[0]


def _function_params(node: FunctionNode, is_method: bool) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    args = node.args
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    return tuple(positional), tuple(a.arg for a in args.kwonlyargs)


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            # The repo uses absolute imports only; relative imports
            # (level > 0) are skipped rather than mis-resolved.
            if node.module is None or node.level != 0:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


class Program:
    """Queryable whole-program view over a set of lint contexts."""

    def __init__(self, contexts: Sequence[LintContext]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_path: Dict[str, ModuleInfo] = {}
        for ctx in contexts:
            info = self._index_module(ctx)
            self.modules[info.name] = info
            self._by_path[ctx.path] = info
        self._functions: Dict[str, FunctionInfo] = {}
        self._classes: Dict[str, ClassInfo] = {}
        for info in self.modules.values():
            for function in info.functions.values():
                self._functions[function.qualname] = function
            for klass in info.classes.values():
                self._classes[klass.qualname] = klass
                for method in klass.methods.values():
                    self._functions[method.qualname] = method
        self._call_graph: Optional[Dict[str, Tuple[str, ...]]] = None
        #: Shared memo for derived whole-program analyses (taint
        #: fixpoint, stream sites, class states): several rules consume
        #: the same analysis, which only depends on the immutable
        #: context set, so each is computed once per Program.
        self.analysis_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_contexts(cls, contexts: Sequence[LintContext]) -> "Program":
        return cls(contexts)

    def _index_module(self, ctx: LintContext) -> ModuleInfo:
        name = module_name_for(ctx)
        info = ModuleInfo(name=name, context=ctx, aliases=_collect_aliases(ctx.tree))
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef):
                params, kwonly = _function_params(node, is_method=False)
                info.functions[node.name] = FunctionInfo(
                    qualname=f"{name}.{node.name}",
                    module=name,
                    class_name=None,
                    node=node,
                    params=params,
                    kwonly=kwonly,
                )
            elif isinstance(node, ast.ClassDef):
                klass = ClassInfo(
                    qualname=f"{name}.{node.name}",
                    module=name,
                    node=node,
                    bases=tuple(
                        base
                        for base in (dotted_name(b) for b in node.bases)
                        if base is not None
                    ),
                )
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        params, kwonly = _function_params(item, is_method=True)
                        klass.methods[item.name] = FunctionInfo(
                            qualname=f"{klass.qualname}.{item.name}",
                            module=name,
                            class_name=node.name,
                            node=item,
                            params=params,
                            kwonly=kwonly,
                        )
                info.classes[node.name] = klass
        return info

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        return self._by_path.get(path)

    def context_for_path(self, path: str) -> Optional[LintContext]:
        info = self._by_path.get(path)
        return info.context if info is not None else None

    def functions(self) -> Iterator[FunctionInfo]:
        """All program functions and methods, in qualname order."""
        for qualname in sorted(self._functions):
            yield self._functions[qualname]

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self._functions.get(qualname)

    def classes(self) -> Iterator[ClassInfo]:
        """All top-level classes, in qualname order."""
        for qualname in sorted(self._classes):
            yield self._classes[qualname]

    def resolve_class(self, name: str, module: ModuleInfo) -> Optional[ClassInfo]:
        """Resolve a (possibly imported) class name seen in ``module``."""
        if name in module.classes:
            return module.classes[name]
        target = module.aliases.get(name)
        if target is not None:
            return self._classes.get(target)
        return self._classes.get(name)

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, module: ModuleInfo, class_name: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        """Best-effort: the program function a ``Call`` node invokes.

        Handles bare names (local defs, then import aliases),
        ``self.method()`` inside a known class, and one-level attribute
        access through a module alias (``units.run_for_ns(...)``).
        Constructors resolve to the class's ``__init__`` when present.
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module)
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and class_name is not None
            ):
                klass = module.classes.get(class_name)
                if klass is not None:
                    return self._method_on(klass, func.attr)
                return None
            name = dotted_name(func)
            if name is None:
                return None
            head, _, attr = name.rpartition(".")
            target = module.aliases.get(head)
            if target is not None:
                resolved = self._functions.get(f"{target}.{attr}")
                if resolved is not None:
                    return resolved
                klass = self._classes.get(f"{target}.{attr}")
                if klass is not None:
                    return klass.methods.get("__init__")
            return self._functions.get(name)
        return None

    def _resolve_name(self, name: str, module: ModuleInfo) -> Optional[FunctionInfo]:
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name].methods.get("__init__")
        target = module.aliases.get(name)
        if target is None:
            return None
        resolved = self._functions.get(target)
        if resolved is not None:
            return resolved
        klass = self._classes.get(target)
        if klass is not None:
            return klass.methods.get("__init__")
        return None

    def _method_on(self, klass: ClassInfo, method: str) -> Optional[FunctionInfo]:
        """Method lookup following in-program base classes (MRO order)."""
        seen = set()
        queue: List[ClassInfo] = [klass]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(base.split(".")[-1], module)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def base_classes(self, klass: ClassInfo) -> List[ClassInfo]:
        """Transitive in-program base classes of ``klass``."""
        result: List[ClassInfo] = []
        seen = {klass.qualname}
        queue = [klass]
        while queue:
            current = queue.pop(0)
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(base.split(".")[-1], module)
                if resolved is not None and resolved.qualname not in seen:
                    seen.add(resolved.qualname)
                    result.append(resolved)
                    queue.append(resolved)
        return result

    def call_graph(self) -> Dict[str, Tuple[str, ...]]:
        """Caller qualname -> sorted tuple of resolved callee qualnames."""
        if self._call_graph is None:
            graph: Dict[str, Tuple[str, ...]] = {}
            for function in self.functions():
                module = self.modules[function.module]
                callees = set()
                for node in ast.walk(function.node):
                    if isinstance(node, ast.Call):
                        resolved = self.resolve_call(
                            node, module, class_name=function.class_name
                        )
                        if resolved is not None:
                            callees.add(resolved.qualname)
                graph[function.qualname] = tuple(sorted(callees))
            self._call_graph = graph
        return self._call_graph

    def calls_in(
        self, function: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, Optional[FunctionInfo]]]:
        """Every ``Call`` node in one function with its resolution."""
        module = self.modules[function.module]
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(
                    node, module, class_name=function.class_name
                )

    def import_graph(self) -> Dict[str, Tuple[str, ...]]:
        """Module name -> sorted tuple of imported program modules."""
        graph: Dict[str, Tuple[str, ...]] = {}
        for name, info in sorted(self.modules.items()):
            edges = set()
            for target in info.aliases.values():
                # ``a.b.symbol`` and ``a.b`` both edge to module ``a.b``.
                candidate = target
                while candidate:
                    if candidate in self.modules and candidate != name:
                        edges.add(candidate)
                        break
                    candidate = candidate.rpartition(".")[0]
            graph[name] = tuple(sorted(edges))
        return graph
