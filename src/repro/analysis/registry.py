"""Rule registry, lint context, and suppression handling.

Rules are small classes registered with :func:`register_rule`; each gets
the parsed AST plus per-line suppression data and yields
:class:`~repro.analysis.findings.Finding` objects. Suppressions:

* ``# slinglint: disable=RULE1,RULE2`` on the offending line, or
* ``# slinglint: disable=all`` to silence every rule on that line, or
* ``# slinglint: disable-file=RULE`` (or ``all``) anywhere in the file.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (program -> registry)
    from repro.analysis.program import Program

_SUPPRESS_RE = re.compile(
    r"#\s*slinglint:\s*(disable|disable-file)=([A-Za-z0-9_,\s]+|all)"
)


def parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract per-line and whole-file suppressions from source comments.

    Uses the tokenizer (not a regex over raw lines) so directives inside
    string literals do not count. Returns ``(line -> rule ids, file-wide
    rule ids)``; the id ``"all"`` suppresses every rule.
    """
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            kind, spec = match.groups()
            rules = {part.strip() for part in spec.split(",") if part.strip()}
            if kind == "disable":
                per_line.setdefault(token.start[0], set()).update(rules)
            else:
                whole_file.update(rules)
    except tokenize.TokenError:  # pragma: no cover - only on broken source
        pass
    return per_line, whole_file


@dataclass
class LintContext:
    """Everything a rule needs to check one file."""

    #: Path as reported in findings (repo-relative when possible).
    path: str
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)
    #: Path split into parts relative to the ``repro`` package root, e.g.
    #: ``("sim", "rng.py")``; empty when the file is outside the package.
    module_parts: Tuple[str, ...] = ()
    #: Scale at which the P4 resource verifier checks budgets.
    p4_num_rus: int = 256
    p4_num_phys: int = 256

    @classmethod
    def for_source(cls, source: str, path: str = "<string>", **kwargs) -> "LintContext":
        per_line, whole_file = parse_suppressions(source)
        tree = ast.parse(source, filename=path)
        parts: Tuple[str, ...] = kwargs.pop("module_parts", ())
        if not parts:
            pieces = path.replace("\\", "/").split("/")
            if "repro" in pieces:
                parts = tuple(pieces[pieces.index("repro") + 1 :])
        return cls(
            path=path,
            source=source,
            tree=tree,
            line_suppressions=per_line,
            file_suppressions=whole_file,
            module_parts=parts,
            **kwargs,
        )

    def in_module(self, *suffix: str) -> bool:
        """True when this file is ``repro/<...>/suffix`` (exact tail match)."""
        if len(suffix) > len(self.module_parts):
            return False
        return self.module_parts[len(self.module_parts) - len(suffix) :] == suffix

    def suppressed(self, rule_id: str, line: int) -> bool:
        if {"all", rule_id} & self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(line, set())
        return bool({"all", rule_id} & at_line)


class LintRule:
    """Base class for one lint rule.

    Subclasses set ``rule_id``, ``title``, ``severity``, ``fix_hint`` and
    implement :meth:`check`, yielding findings (suppression filtering is
    applied by the framework, not the rule).
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    fix_hint: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


class ProgramRule(LintRule):
    """Base class for a whole-program rule.

    Program rules run once per lint invocation over the
    :class:`~repro.analysis.program.Program` built from every linted
    file, instead of once per file. Findings still anchor to a file and
    line, and are filtered through *that* file's suppressions.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Program rules do not participate in the per-file pass."""
        return iter(())

    def check_program(self, program: "Program") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding at an explicit location (cross-file anchor)."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the global registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def file_rules() -> List[LintRule]:
    """Registered per-file rules (everything that is not a ProgramRule)."""
    return [rule for rule in all_rules() if not isinstance(rule, ProgramRule)]


def program_rules() -> List[ProgramRule]:
    """Registered whole-program rules."""
    return [rule for rule in all_rules() if isinstance(rule, ProgramRule)]


def run_rules(
    ctx: LintContext,
    rules: Optional[Iterable[LintRule]] = None,
    suppressed: Optional[List[Finding]] = None,
) -> List[Finding]:
    """Run per-file rules over one context, dropping suppressed findings.

    When ``suppressed`` is given, dropped findings are collected into it
    so the caller can audit which suppression directives actually fired
    (``--strict-suppressions``).
    """
    results: List[Finding] = []
    for rule in file_rules() if rules is None else rules:
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.rule_id, finding.line):
                if suppressed is not None:
                    suppressed.append(finding)
            else:
                results.append(finding)
    return results


def run_program_rules(
    program: "Program",
    rules: Optional[Iterable[ProgramRule]] = None,
    suppressed: Optional[List[Finding]] = None,
) -> List[Finding]:
    """Run whole-program rules, filtering each finding through the
    suppressions of the file it anchors to."""
    results: List[Finding] = []
    for rule in program_rules() if rules is None else rules:
        for finding in rule.check_program(program):
            ctx = program.context_for_path(finding.path)
            if ctx is not None and ctx.suppressed(finding.rule_id, finding.line):
                if suppressed is not None:
                    suppressed.append(finding)
            else:
                results.append(finding)
    return results


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
