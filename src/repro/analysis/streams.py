"""RNG-stream ownership rules (STREAM0xx) and the static stream map.

Every :class:`repro.sim.rng.RngRegistry` stream name is a seed in
disguise: the draws a component sees are a pure function of
``(scenario seed, stream name)``. Two components sharing a name share a
bit stream (a determinism-breaking coupling); a component drawing a
stream that another subsystem owns couples their replay behaviour just
as silently. This module lifts the stream-name discipline from the old
per-file DET005 check ("``faults/`` stays inside ``faults.*``") to a
whole-program ownership model:

* every ``.stream(...)`` / ``.batched_uniform(...)`` call site in the
  program is extracted with its statically-resolvable name (a literal,
  or the constant prefix of an f-string);
* each name's leading component (its *namespace head*) must be declared
  in :data:`NAMESPACES`, which maps the head to the subsystem that owns
  those draws;
* draw sites must sit in the owning subsystem — or in a *composition
  root* (``cell``, ``experiments``: the wiring layers that thread
  streams into components at build time) for non-strict namespaces.
  Strict namespaces (``faults``, ``perf``) may only ever be drawn by
  their owner, in either direction — the DET005 contract, now enforced
  program-wide;
* the same exact stream name drawn from two different subsystems is a
  collision, unless one side is a private fallback registry
  (``RngRegistry(seed=0).stream(...)`` — its own seed universe).

The extracted :func:`stream_sites` map doubles as the static half of the
``--sanitize`` runtime cross-check (:mod:`repro.analysis.sanitize`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.program import ModuleInfo, Program
from repro.analysis.registry import ProgramRule, dotted_name, register_rule

#: Method-name tails that acquire a named stream from a registry.
_STREAM_METHODS = ("stream", "batched_uniform")


@dataclass(frozen=True)
class StreamNamespace:
    """One declared stream namespace: head -> owning subsystem."""

    head: str
    owner: str
    #: Strict namespaces may only be drawn by their owner — composition
    #: roots get no pass. ``faults`` is strict so fault injection can
    #: never share a bit stream with the system under test.
    strict: bool = False
    description: str = ""


#: The stream-namespace ownership table. Adding a stream family to the
#: simulation means declaring its namespace here; STREAM002 fails on
#: undeclared heads so the table cannot silently rot.
NAMESPACES: Tuple[StreamNamespace, ...] = (
    StreamNamespace("app", "apps", description="application traffic sources"),
    StreamNamespace(
        "baseline", "baselines", description="non-Slingshot baseline models"
    ),
    StreamNamespace("core", "corenet", description="core-network attach jitter"),
    StreamNamespace(
        "faults",
        "faults",
        strict=True,
        description="chaos fault plans (reserved for fault injection)",
    ),
    StreamNamespace(
        "fleet",
        "fleet",
        strict=True,
        description="fleet composition draws (tracer-cell sampling)",
    ),
    StreamNamespace(
        "perf", "perf", strict=True, description="benchmark input corpora"
    ),
    StreamNamespace("phy", "cell", description="per-PHY processing jitter"),
    StreamNamespace("ptp", "net", description="PTP clock noise"),
    StreamNamespace("p4", "net", description="switch control-plane latency"),
    StreamNamespace("ue", "cell", description="per-UE channel and modem"),
)

#: Subsystems allowed to draw any non-strict namespace: the wiring
#: layers that build cells and experiments thread streams into the
#: components that consume them.
COMPOSITION_ROOTS = frozenset({"cell", "experiments"})

_NAMESPACE_BY_HEAD: Dict[str, StreamNamespace] = {ns.head: ns for ns in NAMESPACES}


@dataclass(frozen=True)
class StreamSite:
    """One static ``.stream(...)`` call site."""

    #: Static stream name (``exact=True``) or constant prefix of an
    #: f-string name (``exact=False``). Empty when unresolvable.
    name: str
    exact: bool
    module: str
    subsystem: str
    path: str
    line: int
    col: int
    method: str
    #: True when the receiver is a freshly constructed private registry
    #: (``RngRegistry(...)...``) rather than the scenario registry.
    private_registry: bool

    def matches(self, stream_name: str) -> bool:
        """Whether a concrete runtime stream name maps to this site."""
        if self.exact:
            return stream_name == self.name
        return stream_name.startswith(self.name)


def namespace_head(name: str) -> str:
    """Leading namespace component of a stream name or prefix.

    ``"faults.link."`` -> ``"faults"``; ``"phy"`` -> ``"phy"``. A
    trailing digit run is stripped when that leaves a plausible head
    (``"phy3"`` -> ``"phy"``) but short heads keep their digits
    (``"p4"`` stays ``"p4"``).
    """
    head = name.split(".", 1)[0]
    stripped = head.rstrip("0123456789")
    if stripped != head and len(stripped) >= 2:
        return stripped
    return head


def _static_stream_name(node: ast.expr) -> Optional[Tuple[str, bool]]:
    """``(name, exact)`` for a stream-name argument, if resolvable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, False
    return None


def _is_private_registry(func: ast.expr) -> bool:
    """True for ``RngRegistry(...).stream(...)``-shaped receivers."""
    if not isinstance(func, ast.Attribute):
        return False
    receiver = func.value
    if not isinstance(receiver, ast.Call):
        return False
    name = dotted_name(receiver.func)
    return name is not None and name.rpartition(".")[2] == "RngRegistry"


def _module_sites(info: ModuleInfo) -> Iterator[StreamSite]:
    ctx = info.context
    if ctx.in_module("sim", "rng.py"):
        # The registry itself forwards names it is handed; its internal
        # ``self.stream(name)`` call is not a draw site.
        return
    if info.subsystem == "analysis":
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        # Match on the attribute tail directly (not dotted_name, which
        # cannot render call receivers like ``RngRegistry(0).stream``).
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _STREAM_METHODS:
            continue
        method = func.attr
        static: Optional[Tuple[str, bool]] = None
        if node.args:
            static = _static_stream_name(node.args[0])
        elif node.keywords:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    static = _static_stream_name(keyword.value)
                    break
        stream_name, exact = static if static is not None else ("", True)
        yield StreamSite(
            name=stream_name,
            exact=exact,
            module=info.name,
            subsystem=info.subsystem,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            method=method,
            private_registry=_is_private_registry(node.func),
        )


def stream_sites(program: Program) -> List[StreamSite]:
    """Every static stream-acquisition site in the program, in stable
    (path, line, col) order. Sites outside the package are skipped;
    memoized per Program (four rules and the sanitizer share it)."""
    cached = program.analysis_cache.get("stream_sites")
    if isinstance(cached, list):
        return cached
    sites: List[StreamSite] = []
    for info in program.modules.values():
        if not info.context.module_parts:
            continue
        sites.extend(_module_sites(info))
    ordered = sorted(sites, key=lambda s: (s.path, s.line, s.col))
    program.analysis_cache["stream_sites"] = ordered
    return ordered


def ownership_map(program: Program) -> Dict[str, Dict[str, object]]:
    """Stream name/prefix -> {owner, subsystem draw sites} (JSON-able).

    The machine-readable static half of the ``--sanitize`` cross-check.
    """
    result: Dict[str, Dict[str, object]] = {}
    for site in stream_sites(program):
        if not site.name:
            continue
        head = namespace_head(site.name)
        namespace = _NAMESPACE_BY_HEAD.get(head)
        key = site.name if site.exact else site.name + "*"
        entry = result.setdefault(
            key,
            {
                "head": head,
                "owner": namespace.owner if namespace is not None else None,
                "sites": [],
            },
        )
        sites = entry["sites"]
        assert isinstance(sites, list)
        sites.append(
            {
                "module": site.module,
                "subsystem": site.subsystem,
                "line": site.line,
                "private_registry": site.private_registry,
            }
        )
    return result


@register_rule
class StreamNameResolvableRule(ProgramRule):
    """STREAM001: every stream name must be statically resolvable.

    A stream acquired through a fully dynamic name cannot be assigned an
    owner, audited for collisions, or checked by the runtime sanitizer —
    the whole ownership model goes dark at that call site.
    """

    rule_id = "STREAM001"
    title = "stream name not statically resolvable"
    severity = Severity.ERROR
    fix_hint = (
        "pass a string literal or an f-string whose constant prefix "
        'carries the namespace, e.g. rng.stream(f"p4.{name}")'
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for site in stream_sites(program):
            if not site.name:
                yield self.finding_at(
                    site.path,
                    site.line,
                    site.col,
                    f"{site.method}() name in {site.module} has no static "
                    "literal or f-string prefix; its owner cannot be proven",
                )


@register_rule
class StreamNamespaceDeclaredRule(ProgramRule):
    """STREAM002: stream names live in a declared namespace.

    The ownership table (:data:`NAMESPACES`) is the single registry of
    who owns which stream family; an undeclared head is a stream with no
    owner on record.
    """

    rule_id = "STREAM002"
    title = "stream namespace not declared in the ownership table"
    severity = Severity.ERROR
    fix_hint = (
        "prefix the stream with its owning namespace (app./core./faults./"
        "phy/ptp/ue/...) or declare a new namespace in "
        "repro.analysis.streams.NAMESPACES"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for site in stream_sites(program):
            if not site.name:
                continue
            head = namespace_head(site.name)
            if head not in _NAMESPACE_BY_HEAD:
                yield self.finding_at(
                    site.path,
                    site.line,
                    site.col,
                    f"stream {site.name!r}{'' if site.exact else '...'} has "
                    f"undeclared namespace head {head!r} (drawn from "
                    f"{site.module})",
                )


@register_rule
class StreamOwnershipRule(ProgramRule):
    """STREAM003: draw sites sit in the namespace's owning subsystem.

    Non-strict namespaces may also be drawn from a composition root
    (``cell``/``experiments`` wiring); strict namespaces (``faults``,
    ``perf``) are owner-only in both directions — the generalization of
    the old DET005 rule.
    """

    rule_id = "STREAM003"
    title = "cross-subsystem stream draw"
    severity = Severity.ERROR
    fix_hint = (
        "draw the stream from its owning subsystem or thread it through "
        "the cell/experiment wiring; strict namespaces (faults.*, perf.*) "
        "may only be drawn by their owner"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for site in stream_sites(program):
            if not site.name:
                continue
            namespace = _NAMESPACE_BY_HEAD.get(namespace_head(site.name))
            if namespace is None:
                continue
            if site.subsystem == namespace.owner:
                continue
            if not namespace.strict and site.subsystem in COMPOSITION_ROOTS:
                continue
            kind = "strict " if namespace.strict else ""
            yield self.finding_at(
                site.path,
                site.line,
                site.col,
                f"stream {site.name!r}{'' if site.exact else '...'} belongs "
                f"to the {kind}{namespace.head}.* namespace owned by "
                f"{namespace.owner!r}, but is drawn from {site.subsystem!r} "
                f"({site.module})",
            )


@register_rule
class StreamCollisionRule(ProgramRule):
    """STREAM004: one stream name, one owning subsystem.

    Two subsystems drawing the same (scenario-registry) stream name
    share one bit stream: each consumes draws the other expected,
    coupling their behaviour through the RNG. Private fallback
    registries (``RngRegistry(seed=0)``) are their own seed universe and
    do not collide with scenario-registry draws.
    """

    rule_id = "STREAM004"
    title = "stream name drawn from multiple subsystems"
    severity = Severity.ERROR
    fix_hint = (
        "give each subsystem its own stream name; shared draws couple "
        "components through the RNG bit stream"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        shared = [
            s for s in stream_sites(program) if s.name and not s.private_registry
        ]
        for index, site in enumerate(shared):
            for other in shared[index + 1 :]:
                if other.subsystem == site.subsystem:
                    continue
                if not self._overlaps(site, other):
                    continue
                for flagged, peer in ((site, other), (other, site)):
                    yield self.finding_at(
                        flagged.path,
                        flagged.line,
                        flagged.col,
                        f"stream {flagged.name!r}"
                        f"{'' if flagged.exact else '...'} in "
                        f"{flagged.subsystem!r} collides with "
                        f"{peer.name!r}{'' if peer.exact else '...'} drawn "
                        f"from {peer.subsystem!r} ({peer.path}:{peer.line})",
                    )

    @staticmethod
    def _overlaps(a: StreamSite, b: StreamSite) -> bool:
        if a.exact and b.exact:
            return a.name == b.name
        if a.exact:
            return a.name.startswith(b.name)
        if b.exact:
            return b.name.startswith(a.name)
        return a.name.startswith(b.name) or b.name.startswith(a.name)
