"""P4 pipeline resource rules (P4R0xx) — static §8.6 budget verifier.

The fronthaul middlebox (:mod:`repro.core.fh_middlebox`) models a Tofino
pipeline, and a Tofino imposes hard per-pass limits that plain Python
never would: a bounded number of match-action tables, a bounded number of
accesses to any one register array within a single packet pass, and
fixed SRAM/ALU/crossbar budgets. These rules recover the pipeline's
shape from the AST — table and register declarations, plus a call graph
of the ``_process_*`` packet passes — and check it against the budgets
in :mod:`repro.net.p4.resources` at the scale the paper reports (§8.6:
256 RUs / 256 PHY servers).

Modelling notes:

* A *pass* is one ``process``/``_process_*`` method plus the helpers it
  (transitively) calls. Dispatch between pass methods selects which pass
  a packet takes, so expansion does not descend from one pass method
  into another.
* Access counting is branch-insensitive: every ``.read()``/``.write()``
  in a reachable body counts, which over-approximates any single
  dynamic execution — exactly what a compiler placing stateful ALUs
  must provision for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule
from repro.net.p4.resources import PipelineResourceModel

#: Match-action tables one pipeline can host (stage-count bound).
MAX_TABLES_PER_PIPELINE = 32

#: Stateful-ALU accesses to a single register array within one pass.
MAX_REGISTER_ACCESSES_PER_PASS = 4


@dataclass
class P4ProgramSummary:
    """Statically recovered shape of a switch-pipeline program."""

    #: Declared match-action tables: attribute name -> resolved entry count.
    tables: Dict[str, Optional[int]] = field(default_factory=dict)
    #: Declared register arrays: attribute name -> resolved entry count.
    registers: Dict[str, Optional[int]] = field(default_factory=dict)
    #: Per-pass, per-register access counts: pass name -> register -> count.
    pass_accesses: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def max_accesses(self, register: str) -> int:
        """Worst-case accesses to one register array over all passes."""
        return max(
            (counts.get(register, 0) for counts in self.pass_accesses.values()),
            default=0,
        )


def _resolve_size(node: ast.expr, num_rus: int, num_phys: int) -> Optional[int]:
    """Resolve a declared table/register size expression to a number.

    ``cfg.max_rus`` / ``self.config.max_rus`` style attributes resolve to
    the verification scale; integer literals pass through.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    name = dotted_name(node)
    if name is not None:
        tail = name.rpartition(".")[2]
        if tail == "max_rus":
            return num_rus
        if tail == "max_phys":
            return num_phys
    return None


def _is_pass_method(name: str) -> bool:
    return name == "process" or name.startswith("_process")


def summarize_program(
    tree: ast.Module, num_rus: int = 256, num_phys: int = 256
) -> P4ProgramSummary:
    """Recover tables, registers, and per-pass access counts from a module."""
    summary = P4ProgramSummary()
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in cls.body
            if isinstance(item, ast.FunctionDef)
        }
        # Declarations: self.<attr> = MatchActionTable(...)/RegisterArray(...)
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            ctor = dotted_name(node.value.func)
            if ctor is None:
                continue
            ctor = ctor.rpartition(".")[2]
            if ctor not in ("MatchActionTable", "RegisterArray"):
                continue
            for target in node.targets:
                attr = dotted_name(target)
                if attr is None:
                    continue
                attr = attr.rpartition(".")[2]
                size = None
                if len(node.value.args) >= 2:
                    size = _resolve_size(node.value.args[1], num_rus, num_phys)
                if ctor == "MatchActionTable":
                    summary.tables[attr] = size
                else:
                    summary.registers[attr] = size
        if not summary.registers and not summary.tables:
            continue
        # Per-method direct register accesses and intra-class call edges.
        direct: Dict[str, Dict[str, int]] = {}
        calls: Dict[str, Set[str]] = {}
        for name, fn in methods.items():
            counts: Dict[str, int] = {}
            edges: Set[str] = set()
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                target = dotted_name(node.func)
                if target is None:
                    continue
                parts = target.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "self"
                    and parts[1] in summary.registers
                    and parts[2] in ("read", "write")
                ):
                    counts[parts[1]] = counts.get(parts[1], 0) + 1
                elif len(parts) == 2 and parts[0] == "self" and parts[1] in methods:
                    edges.add(parts[1])
            direct[name] = counts
            calls[name] = edges
        # Expand each pass: sum direct counts over its transitive helpers,
        # never crossing into another pass method (that edge is dispatch).
        for name in methods:
            if not _is_pass_method(name):
                continue
            totals: Dict[str, int] = {}
            seen: Set[str] = set()
            stack: List[str] = [name]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                for register, count in direct[current].items():
                    totals[register] = totals.get(register, 0) + count
                for callee in calls[current]:
                    if callee != name and _is_pass_method(callee):
                        continue
                    stack.append(callee)
            summary.pass_accesses[name] = totals
    return summary


class _P4Rule(LintRule):
    """Shared machinery: only fire on files that construct pipeline state."""

    def _summary(self, ctx: LintContext) -> Optional[P4ProgramSummary]:
        summary = summarize_program(ctx.tree, ctx.p4_num_rus, ctx.p4_num_phys)
        if not summary.tables and not summary.registers:
            return None
        return summary


@register_rule
class ResourceBudgetRule(_P4Rule):
    """P4R001: the program must fit the pipeline at the verification scale.

    Evaluates :class:`PipelineResourceModel` at ``ctx.p4_num_rus`` /
    ``ctx.p4_num_phys`` (default 256/256, the paper's §8.6 configuration)
    and fails if any resource fraction reaches 100 %.
    """

    rule_id = "P4R001"
    title = "pipeline resource budget exceeded"
    severity = Severity.ERROR
    fix_hint = (
        "shrink the directory/register sizing or lower the deployment "
        "scale; see repro.net.p4.resources.PipelineResourceModel"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        summary = self._summary(ctx)
        if summary is None:
            return
        usage = PipelineResourceModel().usage(ctx.p4_num_rus, ctx.p4_num_phys)
        for resource in sorted(usage.fraction):
            if usage.fraction[resource] >= 1.0:
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"{resource} over budget at {ctx.p4_num_rus} RUs / "
                    f"{ctx.p4_num_phys} PHYs: {usage.percent(resource):.1f}% "
                    "of pipeline total",
                )


@register_rule
class TableCountRule(_P4Rule):
    """P4R002: at most MAX_TABLES_PER_PIPELINE match-action tables."""

    rule_id = "P4R002"
    title = "too many match-action tables"
    severity = Severity.ERROR
    fix_hint = "merge directories or split the program across pipelines"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        summary = self._summary(ctx)
        if summary is None:
            return
        if len(summary.tables) > MAX_TABLES_PER_PIPELINE:
            yield self.finding(
                ctx,
                ctx.tree,
                f"{len(summary.tables)} match-action tables declared, "
                f"pipeline supports {MAX_TABLES_PER_PIPELINE}",
            )


@register_rule
class RegisterAccessRule(_P4Rule):
    """P4R003: bounded register accesses per packet pass.

    A stateful register array is bound to pipeline stages; one packet
    pass can only touch it a small fixed number of times. Counts
    ``.read()``/``.write()`` over the branch-insensitive call graph of
    each ``process``/``_process_*`` pass.
    """

    rule_id = "P4R003"
    title = "register accessed too often in one pass"
    severity = Severity.ERROR
    fix_hint = (
        "cache the value in packet metadata (one read per pass) or split "
        "the logic across recirculation passes"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        summary = self._summary(ctx)
        if summary is None:
            return
        for pass_name in sorted(summary.pass_accesses):
            counts = summary.pass_accesses[pass_name]
            for register in sorted(counts):
                if counts[register] > MAX_REGISTER_ACCESSES_PER_PASS:
                    yield self.finding(
                        ctx,
                        ctx.tree,
                        f"register {register!r} accessed {counts[register]}x "
                        f"in pass {pass_name}() "
                        f"(limit {MAX_REGISTER_ACCESSES_PER_PASS})",
                    )


def resource_report(num_rus: int = 256, num_phys: int = 256) -> Dict[str, float]:
    """Paper-§8.6-style report: resource -> percent of pipeline used."""
    usage = PipelineResourceModel().usage(num_rus, num_phys)
    return {resource: usage.percent(resource) for resource in sorted(usage.fraction)}
