"""Perf-package rules (PERF0xx).

The perf subsystem is the one part of the tree that *must* read the host
wall clock — that is what a benchmark harness does — but letting each
benchmark call ``time.*`` directly would scatter ad-hoc clock choices
(``time.time`` vs ``monotonic`` vs ``perf_counter``) through measurement
code and make the DET001 allowlist unauditable. So all wall-time reads
inside ``repro/perf/`` flow through the sanctioned helper module
:mod:`repro.perf.timing` (itself carrying the DET001 suppression), and
PERF001 enforces the funnel.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule

#: The single module inside repro/perf allowed to touch ``time``.
_SANCTIONED = ("perf", "timing.py")


@register_rule
class PerfTimingFunnelRule(LintRule):
    """PERF001: perf code reads wall time only via ``repro.perf.timing``.

    Flags any ``import time`` / ``from time import ...`` and any
    ``time.<fn>()`` call in ``repro/perf/`` outside ``timing.py``.
    """

    rule_id = "PERF001"
    title = "direct time.* use in perf package"
    severity = Severity.ERROR
    fix_hint = (
        "call repro.perf.timing.wall_ns() / wall_seconds_since(); only "
        "perf/timing.py may touch the time module"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.module_parts or ctx.module_parts[0] != "perf":
            return
        if ctx.in_module(*_SANCTIONED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        yield self.finding(
                            ctx, node, "import of the time module in perf code"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    yield self.finding(
                        ctx, node, "import from the time module in perf code"
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and (
                    name == "time" or name.startswith("time.")
                ):
                    yield self.finding(
                        ctx, node, f"direct wall-clock call {name}() in perf code"
                    )
