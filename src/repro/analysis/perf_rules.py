"""Perf-package rules (PERF0xx).

The perf subsystem is the one part of the tree that *must* read the host
wall clock — that is what a benchmark harness does — but letting each
benchmark call ``time.*`` directly would scatter ad-hoc clock choices
(``time.time`` vs ``monotonic`` vs ``perf_counter``) through measurement
code and make the DET001 allowlist unauditable. So all wall-time reads
inside ``repro/perf/`` flow through the sanctioned helper module
:mod:`repro.perf.timing` (itself carrying the DET001 suppression), and
PERF001 enforces the funnel.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule

#: The single module inside repro/perf allowed to touch ``time``.
_SANCTIONED = ("perf", "timing.py")


@register_rule
class PerfTimingFunnelRule(LintRule):
    """PERF001: perf code reads wall time only via ``repro.perf.timing``.

    Flags any ``import time`` / ``from time import ...`` and any
    ``time.<fn>()`` call in ``repro/perf/`` outside ``timing.py``.
    """

    rule_id = "PERF001"
    title = "direct time.* use in perf package"
    severity = Severity.ERROR
    fix_hint = (
        "call repro.perf.timing.wall_ns() / wall_seconds_since(); only "
        "perf/timing.py may touch the time module"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.module_parts or ctx.module_parts[0] != "perf":
            return
        if ctx.in_module(*_SANCTIONED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        yield self.finding(
                            ctx, node, "import of the time module in perf code"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    yield self.finding(
                        ctx, node, "import from the time module in perf code"
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and (
                    name == "time" or name.startswith("time.")
                ):
                    yield self.finding(
                        ctx, node, f"direct wall-clock call {name}() in perf code"
                    )


#: Scheduling entry points a self-rescheduler goes through.
_SCHEDULE_METHODS = ("schedule", "at")

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_static_delay(node: ast.AST) -> bool:
    """True for the delays a periodic tick uses: a literal, a stored
    period (``self.period``, ``config.slot_duration_ns``), or a local
    name. Computed delays (``deadline - self.now``, ``clock.until(...)``)
    are deadline-driven, not periodic, and stay on the heap."""
    return isinstance(node, (ast.Constant, ast.Attribute, ast.Name))


@register_rule
class PeriodicSelfRescheduleRule(LintRule):
    """PERF002: periodic self-rescheduling outside the wheel lane.

    Flags ``<sim>.schedule(<period>, self.<method>, ...)`` (and ``.at``)
    appearing *inside* ``<method>`` itself when the delay is a static
    expression — the pre-wheel periodic idiom that pays a full heap push
    per occurrence. Such ticks belong on ``schedule_periodic`` (the slot
    wheel: O(1) re-arm, epoch cancellation, compaction accounting).
    Deadline-based re-arms whose delay is computed stay unflagged.
    """

    rule_id = "PERF002"
    title = "periodic self-reschedule through the heap"
    severity = Severity.ERROR
    fix_hint = (
        "use sim.schedule_periodic(period, callback) — the slot-wheel "
        "lane re-arms in O(1); self-rescheduling through schedule()/at() "
        "pays a heap push per occurrence"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_method(ctx, func)

    def _check_method(self, ctx: LintContext, func: _FuncDef) -> Iterator[Finding]:
        for node in ast.walk(func):
            if node is func or not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not (
                isinstance(callee, ast.Attribute)
                and callee.attr in _SCHEDULE_METHODS
                and len(node.args) >= 2
            ):
                continue
            callback = node.args[1]
            if not (
                isinstance(callback, ast.Attribute)
                and isinstance(callback.value, ast.Name)
                and callback.value.id == "self"
                and callback.attr == func.name
            ):
                continue
            if not _is_static_delay(node.args[0]):
                continue
            owner = dotted_name(callee.value) or "<sim>"
            yield self.finding(
                ctx,
                node,
                f"{owner}.{callee.attr}(..., self.{func.name}) inside "
                f"{func.name}(): periodic self-reschedule bypasses the "
                "wheel lane",
            )
