"""Event-safety rules (EVT0xx).

Complement to the dynamic tie-order race detector
(``Simulator(tie_shuffle_seed=...)``): these rules flag the two static
patterns that most often *create* tie-order races — late-binding loop
captures in scheduled callbacks, and zero-delay scheduling whose effect
depends on FIFO ordering of the current instant.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule
from repro.analysis.time_units import _SCHEDULING_METHODS


def _lambda_free_names(node: ast.Lambda) -> Set[str]:
    """Names the lambda reads that it does not itself bind."""
    bound = {arg.arg for arg in node.args.args}
    bound.update(arg.arg for arg in node.args.kwonlyargs)
    bound.update(arg.arg for arg in node.args.posonlyargs)
    if node.args.vararg:
        bound.add(node.args.vararg.arg)
    if node.args.kwarg:
        bound.add(node.args.kwarg.arg)
    free: Set[str] = set()
    for child in ast.walk(node.body):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            if child.id not in bound:
                free.add(child.id)
    return free


def _target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


@register_rule
class LoopCaptureRule(LintRule):
    """EVT001: scheduled lambdas must not capture the loop variable.

    A lambda scheduled inside a ``for`` loop that reads the loop variable
    sees its value *at fire time* (the last iteration), not at schedule
    time — the classic late-binding bug, and a silent source of
    same-timestamp callbacks that all act on one item.
    """

    rule_id = "EVT001"
    title = "loop-variable capture in scheduled callback"
    severity = Severity.ERROR
    fix_hint = (
        "bind the loop variable eagerly: pass it as a callback argument "
        "(sim.schedule(d, fn, item)) or a lambda default (lambda item=item: ...)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            loop_vars = _target_names(loop.target)
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.rpartition(".")[2] not in _SCHEDULING_METHODS:
                    continue
                values: List[ast.expr] = list(node.args)
                values.extend(k.value for k in node.keywords)
                for value in values:
                    if isinstance(value, ast.Lambda):
                        captured = _lambda_free_names(value) & loop_vars
                        if captured:
                            yield self.finding(
                                ctx,
                                value,
                                "scheduled lambda captures loop variable(s) "
                                + ", ".join(sorted(captured)),
                            )


@register_rule
class ZeroDelayRule(LintRule):
    """EVT002: zero-delay scheduling leans on FIFO tie order.

    ``schedule(0, ...)`` runs the callback at the *current* timestamp,
    after whatever else is queued there — semantics that evaporate under
    tie shuffling unless the callback is genuinely order-independent.
    Sites that are order-independent (verified by the tie-shuffle trace
    test) carry an inline suppression saying so.
    """

    rule_id = "EVT002"
    title = "zero-delay scheduling"
    severity = Severity.WARNING
    fix_hint = (
        "verify order-independence with Simulator(tie_shuffle_seed=...) and "
        "suppress, or schedule at an explicit later time"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            method = name.rpartition(".")[2]
            if method not in ("schedule", "call_after"):
                continue
            if node.args and (
                isinstance(node.args[0], ast.Constant) and node.args[0].value == 0
            ):
                yield self.finding(
                    ctx, node, f"zero-delay {method}() depends on FIFO tie order"
                )
