"""Time-unit rules (TIM0xx).

The simulator clock is integer nanoseconds (:mod:`repro.sim.units`):
float time makes event ordering inexact and breaks TTI arithmetic. These
rules watch the arguments that flow into the scheduling APIs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule

#: Methods whose first positional argument is a time/delay in ns.
_SCHEDULING_METHODS = {"schedule", "at", "call_after", "run_until", "run_for"}

#: Boundary helpers from :mod:`repro.sim.units` whose *second* positional
#: argument is the time/duration in ns (the first is the run target).
_BOUNDARY_HELPERS = {"run_for_ns": 1, "run_until_ns": 1}

#: Conversions that legitimately produce integer ns from float input.
_INT_PRODUCERS = {"int", "round", "s_to_ns", "ms_to_ns", "us_to_ns", "seconds"}


def _time_argument(node: ast.Call) -> Optional[ast.expr]:
    """The time/delay argument of a scheduling call, if this is one."""
    name = dotted_name(node.func)
    if name is None:
        return None
    method = name.rpartition(".")[2]
    if method in _BOUNDARY_HELPERS:
        index = _BOUNDARY_HELPERS[method]
        if len(node.args) > index:
            return node.args[index]
        for keyword in node.keywords:
            if keyword.arg in ("duration_ns", "time_ns"):
                return keyword.value
        return None
    if method not in _SCHEDULING_METHODS:
        return None
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("delay", "time", "end_time", "duration"):
            return keyword.value
    return None


def _contains_float_literal(node: ast.expr) -> Optional[ast.Constant]:
    """First float literal in the expression subtree, skipping subtrees
    wrapped in an integer-producing conversion."""
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func is not None and func.rpartition(".")[2] in _INT_PRODUCERS:
            return None
        for arg in node.args:
            found = _contains_float_literal(arg)
            if found is not None:
                return found
        return None
    if isinstance(node, ast.Constant):
        return node if isinstance(node.value, float) else None
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            found = _contains_float_literal(child)
            if found is not None:
                return found
    return None


@register_rule
class FloatTimeRule(LintRule):
    """TIM001: float literals must not flow into scheduling arguments."""

    rule_id = "TIM001"
    title = "float simulated time"
    severity = Severity.ERROR
    fix_hint = (
        "convert with sim.units (s_to_ns/ms_to_ns/us_to_ns) or round() so "
        "the scheduler only ever sees integer nanoseconds"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            arg = _time_argument(node)
            if arg is None:
                continue
            literal = _contains_float_literal(arg)
            if literal is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"float literal {literal.value!r} flows into "
                    f"{dotted_name(node.func)}()",
                )


#: Identifier suffixes conventionally denoting float seconds.
_SECONDS_SUFFIXES = ("_s", "_secs", "_seconds")


def _contains_seconds_name(node: ast.expr) -> Optional[str]:
    """First seconds-suffixed identifier in the expression subtree,
    skipping subtrees wrapped in an integer-producing conversion."""
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func is not None and func.rpartition(".")[2] in _INT_PRODUCERS:
            return None
        for arg in node.args:
            found = _contains_seconds_name(arg)
            if found is not None:
                return found
        for keyword in node.keywords:
            found = _contains_seconds_name(keyword.value)
            if found is not None:
                return found
        return None
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and any(
        name.endswith(suffix) for suffix in _SECONDS_SUFFIXES
    ):
        return name
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            found = _contains_seconds_name(child)
            if found is not None:
                return found
    return None


@register_rule
class SecondsAcrossBoundaryRule(LintRule):
    """TIM003: float-seconds identifiers must not cross the engine boundary.

    A variable named ``duration_s`` / ``timeout_secs`` / ``gap_seconds``
    is, by this repo's convention, float seconds; passing it into a
    scheduling call without an integer-producing conversion
    (``seconds()``, ``s_to_ns()``, ``round()``, ...) hands the integer-ns
    engine a float — the same bug class as TIM001, caught by name when
    no literal is visible.
    """

    rule_id = "TIM003"
    title = "float-seconds identifier crossing the engine boundary"
    severity = Severity.ERROR
    fix_hint = (
        "wrap the value at the boundary: run_for_ns(cell, seconds(duration_s)) "
        "or schedule(s_to_ns(delay_s), ...)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            arg = _time_argument(node)
            if arg is None:
                continue
            name = _contains_seconds_name(arg)
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"seconds-suffixed identifier {name!r} flows into "
                    f"{dotted_name(node.func)}() without conversion",
                )


@register_rule
class MagicDurationRule(LintRule):
    """TIM002: large bare integer durations should come from sim.units.

    ``schedule(500_000, ...)`` hides a unit; ``schedule(500 * US, ...)``
    does not. Integers below 10 µs pass (small offsets and literal zero
    are idiomatic).
    """

    rule_id = "TIM002"
    title = "magic-number duration"
    severity = Severity.WARNING
    fix_hint = "express the duration via repro.sim.units (US/MS/SECOND multiples)"

    threshold_ns = 10_000

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            arg = _time_argument(node)
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, int)
                and not isinstance(arg.value, bool)
                and arg.value >= self.threshold_ns
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"bare duration literal {arg.value} ns passed to "
                    f"{dotted_name(node.func)}()",
                )
