"""Checkpointability state inventory (CKPT0xx) and its report.

Slingshot's whole resilience story (paper §5) rests on knowing *what
state a component carries*: the nanoPU-attached state store can only
checkpoint state it can see. This module builds the static analogue — a
whole-program inventory of every mutable attribute on every runtime
component class, classified as:

* **checkpointable** — initialized in ``__init__``/``__post_init__`` (or
  a dataclass field) and mutated later: real evolving state a checkpoint
  must capture;
* **derived** — declared in the class's ``_checkpoint_derived_`` tuple:
  caches and cursors recomputable from checkpointable state, explicitly
  exempted by the author;
* **unregistered** — mutated outside ``__init__`` but never initialized
  there and not declared derived. This is state a checkpoint silently
  misses (CKPT001): after restore the attribute may not exist at all.

``python -m repro lint --state-inventory FILE`` writes the inventory as
deterministic JSON (``benchmarks/state_inventory.json`` in CI), so the
checkpointable surface of the system is pinned and reviewed like any
other contract.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.program import ClassInfo, Program
from repro.analysis.registry import ProgramRule, dotted_name, register_rule

#: Subsystems whose classes model runtime components (and therefore
#: carry state a checkpoint/restore cycle must reason about). Tooling
#: layers (analysis, perf harness, parallel driver, telemetry, CLI) are
#: out of scope: they never live inside a restored simulation.
RUNTIME_SUBSYSTEMS = frozenset(
    {
        "apps",
        "baselines",
        "cell",
        "core",
        "corenet",
        "fapi",
        "faults",
        "fleet",
        "fronthaul",
        "l2",
        "net",
        "phy",
        "sim",
        "transport",
        "ue",
    }
)

#: Methods that count as initialization: attributes first assigned here
#: are part of the constructed shape, not late-appearing state.
_INIT_METHODS = ("__init__", "__post_init__")

#: Class-level declaration naming attributes that are recomputable
#: caches rather than checkpointable state.
DERIVED_DECLARATION = "_checkpoint_derived_"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.rpartition(".")[2] == "dataclass":
            return True
    return False


#: Method names that mutate a container in place: calling one on a
#: ``self`` attribute evolves that attribute's state just as surely as
#: rebinding it.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "rotate",
        "setdefault",
        "update",
    }
)


def _self_attr_of(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is ``self.X`` (or ``self.X[...]``)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attr_targets(stmt: ast.stmt) -> Iterator[Tuple[str, int]]:
    """``(attr, line)`` for every ``self.X`` mutation target in ``stmt``.

    Covers rebinding (``self.x = ...``), augmented and subscript
    assignment (``self.x += 1``, ``self.x[k] = v``), loop targets, and
    deletion (``del self.x`` — the sharpest checkpoint hazard of all).
    """

    def targets_of(node: ast.expr) -> Iterator[ast.expr]:
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                yield from targets_of(element)
        elif isinstance(node, ast.Starred):
            yield from targets_of(node.value)
        else:
            yield node

    if isinstance(stmt, ast.Assign):
        candidates = [t for target in stmt.targets for t in targets_of(target)]
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        candidates = list(targets_of(stmt.target))
    elif isinstance(stmt, ast.For):
        candidates = list(targets_of(stmt.target))
    elif isinstance(stmt, ast.Delete):
        candidates = list(stmt.targets)
    else:
        return
    for node in candidates:
        attr = _self_attr_of(node)
        if attr is not None:
            yield attr, getattr(node, "lineno", 1)


def _method_self_attrs(node: ast.FunctionDef) -> Iterator[Tuple[str, int]]:
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.stmt):
            yield from _self_attr_targets(stmt)
        elif (
            isinstance(stmt, ast.Call)
            and isinstance(stmt.func, ast.Attribute)
            and stmt.func.attr in _MUTATOR_METHODS
        ):
            attr = _self_attr_of(stmt.func.value)
            if attr is not None:
                yield attr, getattr(stmt, "lineno", 1)


def _declared_derived(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for stmt in node.body:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == DERIVED_DECLARATION
                for t in stmt.targets
            ):
                value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == DERIVED_DECLARATION
            ):
                value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
    return names


def _dataclass_fields(node: ast.ClassDef) -> Set[str]:
    if not _is_dataclass(node):
        return set()
    fields: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not stmt.target.id.startswith("__"):
                fields.add(stmt.target.id)
    return fields


@dataclass
class ClassState:
    """The classified mutable-attribute surface of one class."""

    qualname: str
    subsystem: str
    path: str
    line: int
    checkpointable: Tuple[str, ...]
    derived: Tuple[str, ...]
    unregistered: Tuple[str, ...]
    #: attr -> first mutation line, for finding anchors.
    first_mutation: Dict[str, int]
    #: Derived declarations that match no initialized/mutated attribute.
    stale_derived: Tuple[str, ...]
    derived_decl_line: int

    @property
    def has_state(self) -> bool:
        return bool(self.checkpointable or self.derived or self.unregistered)


def _class_state(program: Program, klass: ClassInfo) -> ClassState:
    module = program.modules[klass.module]
    lineage = [klass, *program.base_classes(klass)]
    init_attrs: Set[str] = set()
    derived_declared: Set[str] = set()
    for ancestor in lineage:
        init_attrs |= _dataclass_fields(ancestor.node)
        derived_declared |= _declared_derived(ancestor.node)
        for method_name in _INIT_METHODS:
            method = ancestor.methods.get(method_name)
            if method is not None:
                for attr, _ in _method_self_attrs(method.node):
                    init_attrs.add(attr)
    mutated: Dict[str, int] = {}
    for method in klass.methods.values():
        if method.node.name in _INIT_METHODS:
            continue
        for attr, line in _method_self_attrs(method.node):
            if attr not in mutated or line < mutated[attr]:
                mutated[attr] = line
    touched = set(mutated) | init_attrs
    checkpointable = sorted((set(mutated) & init_attrs) - derived_declared)
    derived = sorted(derived_declared & touched)
    unregistered = sorted(set(mutated) - init_attrs - derived_declared)
    decl_line = klass.node.lineno
    for stmt in klass.node.body:
        found = False
        if isinstance(stmt, ast.Assign):
            found = any(
                isinstance(t, ast.Name) and t.id == DERIVED_DECLARATION
                for t in stmt.targets
            )
        elif isinstance(stmt, ast.AnnAssign):
            found = (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == DERIVED_DECLARATION
            )
        if found:
            decl_line = stmt.lineno
            break
    return ClassState(
        qualname=klass.qualname,
        subsystem=module.subsystem,
        path=module.context.path,
        line=klass.node.lineno,
        checkpointable=tuple(checkpointable),
        derived=tuple(derived),
        unregistered=tuple(unregistered),
        first_mutation=mutated,
        stale_derived=tuple(sorted(_declared_derived(klass.node) - touched)),
        derived_decl_line=decl_line,
    )


def class_states(program: Program) -> List[ClassState]:
    """Classified state for every runtime component class, in qualname
    order. Classes outside :data:`RUNTIME_SUBSYSTEMS` are skipped;
    memoized per Program (both CKPT rules and the report share it)."""
    cached = program.analysis_cache.get("class_states")
    if isinstance(cached, list):
        return cached
    states: List[ClassState] = []
    for klass in program.classes():
        module = program.modules.get(klass.module)
        if module is None or module.subsystem not in RUNTIME_SUBSYSTEMS:
            continue
        if not module.context.module_parts:
            continue
        states.append(_class_state(program, klass))
    program.analysis_cache["class_states"] = states
    return states


def build_inventory(program: Program) -> Dict[str, object]:
    """The JSON-able whole-program state inventory."""
    classes: Dict[str, Dict[str, object]] = {}
    totals = {"checkpointable": 0, "derived": 0, "unregistered": 0}
    for state in class_states(program):
        if not state.has_state:
            continue
        classes[state.qualname] = {
            "subsystem": state.subsystem,
            "checkpointable": list(state.checkpointable),
            "derived": list(state.derived),
            "unregistered": list(state.unregistered),
        }
        totals["checkpointable"] += len(state.checkpointable)
        totals["derived"] += len(state.derived)
        totals["unregistered"] += len(state.unregistered)
    return {
        "classes": classes,
        "totals": {**totals, "classes": len(classes)},
    }


def write_inventory(program: Program, path: Path) -> Dict[str, object]:
    """Write the inventory as deterministic JSON and return it."""
    inventory = build_inventory(program)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(inventory, indent=2, sort_keys=True) + "\n")
    return inventory


#: Module holding the checkpoint layer's generated state manifest.
MANIFEST_MODULE = "repro.checkpoint.manifest"

#: The manifest literal's name inside that module.
MANIFEST_NAME = "STATE_MANIFEST"

_MANIFEST_HEADER = '''"""Checkpointable-state manifest (GENERATED — do not edit by hand).

One entry per runtime component class that carries checkpointable
state: ``qualname -> tuple of attribute names``. The checkpoint layer
(:mod:`repro.checkpoint.snapshot`) walks every captured/restored object
graph and asserts each listed instance still carries all of its listed
attributes; lint rule CKPT003 asserts this literal matches the static
state inventory. Regenerate with::

    python -m repro lint --write-manifest

after adding or removing mutable state on any runtime class.
"""

from __future__ import annotations

from typing import Dict, Tuple

'''


def render_manifest(inventory: Dict[str, object]) -> str:
    """Render the generated ``manifest.py`` source from an inventory.

    Pure literal, deterministically ordered, so the module can be
    AST-parsed by CKPT003 and diffed by git like any other contract.
    Only classes with checkpointable attributes appear — a class whose
    state is all derived has nothing a serializer must carry.
    """
    classes = inventory["classes"]
    assert isinstance(classes, dict)
    lines = [f"{MANIFEST_NAME}: Dict[str, Tuple[str, ...]] = {{"]
    for qualname in sorted(classes):
        attrs = classes[qualname]["checkpointable"]
        if not attrs:
            continue
        rendered = ", ".join(repr(a) for a in sorted(attrs))
        if len(attrs) == 1:
            rendered += ","
        lines.append(f"    {qualname!r}: ({rendered}),")
    lines.append("}")
    return _MANIFEST_HEADER + "\n".join(lines) + "\n"


def write_manifest(program: Program, path: Path) -> None:
    """Regenerate the checkpoint manifest module from the program."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_manifest(build_inventory(program)))


def _parse_manifest_literal(
    tree: ast.Module,
) -> Optional[Tuple[Dict[str, Tuple[str, ...]], int]]:
    """``(manifest, line)`` from the module's STATE_MANIFEST assignment."""
    for stmt in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == MANIFEST_NAME
                for t in stmt.targets
            ):
                value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == MANIFEST_NAME
            ):
                value = stmt.value
        if value is None:
            continue
        try:
            literal = ast.literal_eval(value)
        except ValueError:
            return None
        if not isinstance(literal, dict):
            return None
        return (
            {str(k): tuple(str(a) for a in v) for k, v in literal.items()},
            stmt.lineno,
        )
    return None


@register_rule
class ManifestDriftRule(ProgramRule):
    """CKPT003: the checkpoint manifest must match the state inventory.

    The manifest literal in :data:`MANIFEST_MODULE` is what the
    checkpoint serializers actually verify against at capture/restore
    time; the state inventory is what the source tree actually carries.
    Any divergence — a class gaining or losing checkpointable
    attributes, a new stateful class missing entirely, a stale entry for
    a deleted class — means checkpoints are silently under- or
    over-specified. Regenerate with ``python -m repro lint
    --write-manifest``.

    Skipped when the linted file set does not include the manifest
    module (per-file invocations); the whole-package tier-1 lint always
    does.
    """

    rule_id = "CKPT003"
    title = "checkpoint manifest out of sync with state inventory"
    severity = Severity.ERROR
    fix_hint = (
        "regenerate src/repro/checkpoint/manifest.py with "
        "`python -m repro lint --write-manifest`"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        module = program.modules.get(MANIFEST_MODULE)
        if module is None:
            return
        path = module.context.path
        parsed = _parse_manifest_literal(module.context.tree)
        if parsed is None:
            yield self.finding_at(
                path,
                1,
                1,
                f"{MANIFEST_MODULE} must assign {MANIFEST_NAME} a pure "
                "dict literal of qualname -> attribute tuples",
            )
            return
        manifest, line = parsed
        classes = build_inventory(program)["classes"]
        assert isinstance(classes, dict)
        expected = {
            qualname: tuple(sorted(entry["checkpointable"]))
            for qualname, entry in classes.items()
            if entry["checkpointable"]
        }
        for qualname in sorted(set(expected) - set(manifest)):
            yield self.finding_at(
                path,
                line,
                1,
                f"manifest is missing {qualname} "
                f"(checkpointable: {', '.join(expected[qualname])})",
            )
        for qualname in sorted(set(manifest) - set(expected)):
            yield self.finding_at(
                path,
                line,
                1,
                f"manifest lists {qualname}, which has no checkpointable "
                "state in the inventory",
            )
        for qualname in sorted(set(manifest) & set(expected)):
            if tuple(sorted(manifest[qualname])) != expected[qualname]:
                yield self.finding_at(
                    path,
                    line,
                    1,
                    f"manifest attrs for {qualname} "
                    f"({', '.join(sorted(manifest[qualname]))}) != inventory "
                    f"({', '.join(expected[qualname])})",
                )


@register_rule
class UnregisteredStateRule(ProgramRule):
    """CKPT001: runtime state must exist from construction.

    An attribute first assigned outside ``__init__`` is invisible to any
    checkpoint taken before that assignment and may be absent entirely
    after a restore — ``hasattr`` guards breed, and replay diverges.
    Initialize it in ``__init__`` (checkpointable) or declare it in
    ``_checkpoint_derived_`` (recomputable cache).
    """

    rule_id = "CKPT001"
    title = "mutable attribute not initialized in __init__"
    severity = Severity.ERROR
    fix_hint = (
        "initialize the attribute in __init__ (checkpointable state) or "
        "list it in the class's _checkpoint_derived_ tuple (recomputable)"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for state in class_states(program):
            for attr in state.unregistered:
                yield self.finding_at(
                    state.path,
                    state.first_mutation.get(attr, state.line),
                    1,
                    f"{state.qualname} mutates attribute {attr!r} outside "
                    "__init__ but never initializes it; checkpoints will "
                    "miss it",
                )


@register_rule
class StaleDerivedDeclarationRule(ProgramRule):
    """CKPT002: ``_checkpoint_derived_`` entries must name real state.

    A derived declaration that matches no initialized or mutated
    attribute is dead documentation — usually a rename that forgot the
    tuple, which would silently re-expose the renamed attribute as
    checkpointable.
    """

    rule_id = "CKPT002"
    title = "stale _checkpoint_derived_ declaration"
    severity = Severity.WARNING
    fix_hint = "remove the entry or fix the attribute name it refers to"

    def check_program(self, program: Program) -> Iterator[Finding]:
        for state in class_states(program):
            for attr in state.stale_derived:
                yield self.finding_at(
                    state.path,
                    state.derived_decl_line,
                    1,
                    f"{state.qualname} declares derived attribute {attr!r} "
                    "that is never initialized or mutated",
                )
