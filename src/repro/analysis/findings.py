"""Structured lint findings.

A :class:`Finding` pins one rule violation to a file and line, carries a
severity, a human-readable message, and a fix hint. Findings sort by
location so reports are stable regardless of rule execution order.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


class Severity(enum.IntEnum):
    """Finding severity. All severities fail the lint gate; the grading
    only orders the report and signals how mechanical the fix is."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    fix_hint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = str(self.severity)
        return data


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable report order: by location, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def format_findings(findings: Iterable[Finding], fmt: str = "text") -> str:
    """Render findings as a text report or a JSON document."""
    ordered = sort_findings(findings)
    if fmt == "json":
        return json.dumps([f.to_dict() for f in ordered], indent=2)
    if fmt != "text":
        raise ValueError(f"unknown findings format: {fmt!r}")
    lines = []
    for finding in ordered:
        lines.append(
            f"{finding.location}: {finding.rule_id} [{finding.severity}] "
            f"{finding.message}"
        )
        if finding.fix_hint:
            lines.append(f"    hint: {finding.fix_hint}")
    lines.append(f"{len(ordered)} finding(s)")
    return "\n".join(lines)
