"""Interprocedural ns-taint rules (TIMX0xx).

TIM001/TIM003 are lexical: they flag a float literal or a
seconds-suffixed identifier *visible in the argument expression* of a
scheduling call. The moment the value takes one hop — assigned to an
innocently-named local, returned from a helper, passed through a
parameter — the name heuristic goes blind. This module tracks
float-seconds *dataflow* instead:

* **sources** — seconds-suffixed identifiers (``duration_s``,
  ``timeout_secs``, ``gap_seconds``), plus the known float-time
  producers ``ns_to_s``/``ns_to_ms``/``ns_to_us``;
* **propagation** — through local assignments, function returns, and
  call arguments, using the :class:`~repro.analysis.program.Program`
  call graph; per-function summaries (param reaches sink, param reaches
  return, returns seconds) are iterated to a fixpoint so taint crosses
  any number of call hops;
* **sanitizers** — the integer-producing conversions (``int``,
  ``round``, ``s_to_ns``, ``ms_to_ns``, ``us_to_ns``, ``seconds``)
  clear taint for their whole subtree;
* **sinks** — the scheduling APIs TIM001 watches (``schedule``, ``at``,
  ``call_after``, ``run_until``, ``run_for``, ``run_for_ns``,
  ``run_until_ns``).

TIMX001 fires where tainted dataflow reaches a sink that the lexical
rules cannot see; TIMX002 fires where a seconds-tainted value is bound
to a ``*_ns`` name (a unit lie that poisons every later reader).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.program import FunctionInfo, Program
from repro.analysis.registry import ProgramRule, dotted_name, register_rule
from repro.analysis.time_units import (
    _INT_PRODUCERS,
    _SECONDS_SUFFIXES,
    _contains_seconds_name,
    _time_argument,
)

#: Known float-time producers outside the seconds-suffix convention.
_SECONDS_PRODUCER_QUALNAMES = frozenset(
    {
        "repro.sim.units.ns_to_s",
        "repro.sim.units.ns_to_ms",
        "repro.sim.units.ns_to_us",
    }
)
_SECONDS_PRODUCER_TAILS = frozenset({"ns_to_s", "ns_to_ms", "ns_to_us"})


def _is_seconds_name(name: str) -> bool:
    return any(name.endswith(suffix) for suffix in _SECONDS_SUFFIXES)


#: Taint roots: ``("param", name)`` — flowed from a parameter;
#: ``("seconds", name)`` — a seconds-suffixed identifier;
#: ``("producer", qualname)`` — returned by a float-time producer.
Root = Tuple[str, str]


@dataclass
class Summary:
    """Interprocedural facts about one function, iterated to fixpoint."""

    params_to_sink: Set[str] = field(default_factory=set)
    params_to_return: Set[str] = field(default_factory=set)
    returns_seconds: bool = False

    def key(self) -> Tuple[Tuple[str, ...], Tuple[str, ...], bool]:
        return (
            tuple(sorted(self.params_to_sink)),
            tuple(sorted(self.params_to_return)),
            self.returns_seconds,
        )


@dataclass(frozen=True)
class SinkRecord:
    """One tainted value reaching a sink inside some function."""

    function: str
    call: ast.Call
    sink_name: str
    roots: Tuple[Root, ...]
    #: For interprocedural sinks: the callee and parameter the value
    #: disappears into, e.g. ``("repro.x.y.helper", "delay")``.
    via: Optional[Tuple[str, str]] = None
    path: str = ""


class _FunctionTaint:
    """One pass of taint propagation through a single function body."""

    def __init__(
        self,
        program: Program,
        function: FunctionInfo,
        summaries: Dict[str, Summary],
    ) -> None:
        self.program = program
        self.function = function
        self.module = program.modules[function.module]
        self.summaries = summaries
        self.env: Dict[str, Set[Root]] = {}
        for param in (*function.params, *function.kwonly):
            roots: Set[Root] = {("param", param)}
            if _is_seconds_name(param):
                roots.add(("seconds", param))
            self.env[param] = roots
        self.return_roots: Set[Root] = set()
        self.sinks: List[SinkRecord] = []
        self.ns_bindings: List[Tuple[ast.stmt, str, Tuple[Root, ...]]] = []

    # ------------------------------------------------------------------
    # Expression taint
    # ------------------------------------------------------------------
    def eval(self, node: ast.expr) -> Set[Root]:
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            roots = set(self.env.get(node.id, set()))
            if _is_seconds_name(node.id):
                roots.add(("seconds", node.id))
            return roots
        if isinstance(node, ast.Attribute):
            roots = self.eval(node.value)
            if _is_seconds_name(node.attr):
                roots.add(("seconds", node.attr))
            return roots
        if isinstance(node, ast.Lambda):
            return set()
        roots = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                roots |= self.eval(child)
        return roots

    def _eval_call(self, node: ast.Call) -> Set[Root]:
        func_name = dotted_name(node.func)
        tail = func_name.rpartition(".")[2] if func_name else ""
        if tail in _INT_PRODUCERS:
            # Sanitizer: the whole subtree produces integer ns.
            return set()
        resolved = self.program.resolve_call(
            node, self.module, class_name=self.function.class_name
        )
        arg_roots = [self.eval(arg) for arg in node.args]
        kw_roots = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg
        }
        if resolved is not None:
            summary = self.summaries.setdefault(resolved.qualname, Summary())
            self._record_call_sinks(node, resolved, summary, arg_roots, kw_roots)
            roots: Set[Root] = set()
            if summary.returns_seconds or (
                resolved.qualname in _SECONDS_PRODUCER_QUALNAMES
            ):
                roots.add(("producer", resolved.qualname))
            for position, taint in enumerate(arg_roots):
                if position < len(resolved.params):
                    param = resolved.params[position]
                    if param in summary.params_to_return and taint:
                        roots |= taint
            for keyword, taint in kw_roots.items():
                if keyword in summary.params_to_return and taint:
                    roots |= taint
            return roots
        if tail in _SECONDS_PRODUCER_TAILS:
            return {("producer", tail)}
        # Unresolved call: taint passes through, mirroring the lexical
        # rules' treatment of unknown function arguments.
        roots = set()
        for taint in arg_roots:
            roots |= taint
        for taint in kw_roots.values():
            roots |= taint
        return roots

    def _record_call_sinks(
        self,
        node: ast.Call,
        resolved: FunctionInfo,
        summary: Summary,
        arg_roots: List[Set[Root]],
        kw_roots: Dict[str, Set[Root]],
    ) -> None:
        """A tainted argument handed to a param that reaches a sink."""
        if _time_argument(node) is not None:
            # The call is itself a recognized scheduling sink; the
            # direct-sink pass owns it.
            return
        sink_name = dotted_name(node.func) or resolved.qualname
        for position, taint in enumerate(arg_roots):
            if not taint or position >= len(resolved.params):
                continue
            param = resolved.params[position]
            if param in summary.params_to_sink:
                self.sinks.append(
                    SinkRecord(
                        function=self.function.qualname,
                        call=node,
                        sink_name=sink_name,
                        roots=tuple(sorted(taint)),
                        via=(resolved.qualname, param),
                        path=self.module.context.path,
                    )
                )
        for keyword, taint in kw_roots.items():
            if taint and keyword in summary.params_to_sink:
                self.sinks.append(
                    SinkRecord(
                        function=self.function.qualname,
                        call=node,
                        sink_name=sink_name,
                        roots=tuple(sorted(taint)),
                        via=(resolved.qualname, keyword),
                        path=self.module.context.path,
                    )
                )

    # ------------------------------------------------------------------
    # Statement walk
    # ------------------------------------------------------------------
    def run(self) -> None:
        self._walk(self.function.node.body)

    def _walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # Nested defs get their own pass.
        self._scan_sinks(stmt)
        if isinstance(stmt, ast.Assign):
            roots = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(stmt, target, roots)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt, stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            roots = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name) and roots:
                self.env.setdefault(stmt.target.id, set()).update(roots)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self.return_roots |= self.eval(stmt.value)
        else:
            # Expression statements, conditions, with-items: evaluate so
            # calls inside them feed the interprocedural sink records.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
                elif isinstance(child, ast.withitem):
                    self.eval(child.context_expr)
        for child_body in self._inner_bodies(stmt):
            self._walk(child_body)

    @staticmethod
    def _inner_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            value = getattr(stmt, attr, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _bind(self, stmt: ast.stmt, target: ast.expr, roots: Set[Root]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(stmt, element, roots)
            return
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
            self.env[name] = set(roots)
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if (
            name is not None
            and name.endswith("_ns")
            and any(kind in ("seconds", "producer") for kind, _ in roots)
        ):
            self.ns_bindings.append((stmt, name, tuple(sorted(roots))))

    def _scan_sinks(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            time_arg = _time_argument(node)
            if time_arg is None:
                continue
            roots = self.eval(time_arg)
            if not roots:
                continue
            self.sinks.append(
                SinkRecord(
                    function=self.function.qualname,
                    call=node,
                    sink_name=dotted_name(node.func) or "<sink>",
                    roots=tuple(sorted(roots)),
                    path=self.module.context.path,
                )
            )


@dataclass
class TaintAnalysis:
    """Fixpoint result over one program."""

    summaries: Dict[str, Summary]
    sinks: List[SinkRecord]
    ns_bindings: List[Tuple[str, ast.stmt, str, Tuple[Root, ...], str]]


def analyze(program: Program, max_rounds: int = 8) -> TaintAnalysis:
    """Iterate per-function taint passes until summaries stabilize.

    Memoized per Program: TIMX001 and TIMX002 share one fixpoint run.
    """
    cached = program.analysis_cache.get("taint")
    if isinstance(cached, TaintAnalysis):
        return cached
    summaries: Dict[str, Summary] = {}
    for producer in _SECONDS_PRODUCER_QUALNAMES:
        summaries[producer] = Summary(returns_seconds=True)
    sinks: List[SinkRecord] = []
    bindings: List[Tuple[str, ast.stmt, str, Tuple[Root, ...], str]] = []
    for _ in range(max_rounds):
        sinks = []
        bindings = []
        changed = False
        for function in program.functions():
            walker = _FunctionTaint(program, function, summaries)
            walker.run()
            sinks.extend(walker.sinks)
            for stmt, name, roots in walker.ns_bindings:
                bindings.append(
                    (
                        function.qualname,
                        stmt,
                        name,
                        roots,
                        walker.module.context.path,
                    )
                )
            summary = summaries.setdefault(function.qualname, Summary())
            if function.qualname in _SECONDS_PRODUCER_QUALNAMES:
                continue
            before = summary.key()
            param_names = set(function.params) | set(function.kwonly)
            for record in walker.sinks:
                for kind, value in record.roots:
                    if kind == "param" and value in param_names:
                        summary.params_to_sink.add(value)
            for kind, value in walker.return_roots:
                if kind == "param" and value in param_names:
                    summary.params_to_return.add(value)
                elif kind in ("seconds", "producer"):
                    summary.returns_seconds = True
            if summary.key() != before:
                changed = True
        if not changed:
            break
    result = TaintAnalysis(summaries=summaries, sinks=sinks, ns_bindings=bindings)
    program.analysis_cache["taint"] = result
    return result


def _describe_roots(roots: Tuple[Root, ...]) -> str:
    names = sorted({value for kind, value in roots if kind in ("seconds", "producer")})
    return ", ".join(names) if names else "tainted value"


@register_rule
class InterproceduralSecondsRule(ProgramRule):
    """TIMX001: float-seconds dataflow reaching the scheduler.

    Catches the flows TIM003's name heuristic cannot: a seconds value
    renamed through a local, returned from a helper, or passed through a
    call chain before it hits ``schedule``/``run_until``/... . Findings
    that the lexical rules already report are skipped, so each leak is
    reported exactly once, at the hop where it becomes invisible.
    """

    rule_id = "TIMX001"
    title = "interprocedural float-seconds flow into the scheduler"
    severity = Severity.ERROR
    fix_hint = (
        "convert at the boundary with seconds()/s_to_ns()/round() before "
        "the value crosses a call or assignment on its way to the engine"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        analysis = analyze(program)
        seen: Set[Tuple[str, int, int, str]] = set()
        for record in analysis.sinks:
            flagged = [
                (kind, value)
                for kind, value in record.roots
                if kind in ("seconds", "producer")
            ]
            if not flagged:
                continue
            if record.via is None and _contains_seconds_name(
                _time_argument(record.call) or record.call
            ):
                # Lexically visible at the sink: TIM003's finding.
                continue
            line = getattr(record.call, "lineno", 1)
            col = getattr(record.call, "col_offset", 0) + 1
            key = (record.path, line, col, record.sink_name)
            if key in seen:
                continue
            seen.add(key)
            source = _describe_roots(record.roots)
            if record.via is not None:
                callee, param = record.via
                message = (
                    f"float-seconds value ({source}) passed to parameter "
                    f"{param!r} of {callee}(), which forwards it to the "
                    "scheduler"
                )
            else:
                message = (
                    f"float-seconds value ({source}) reaches "
                    f"{record.sink_name}() through assignment/return flow"
                )
            yield self.finding_at(record.path, line, col, message)


@register_rule
class SecondsBoundToNsNameRule(ProgramRule):
    """TIMX002: seconds-tainted values must not be bound to ``*_ns`` names.

    A ``timeout_ns = response_timeout_s`` assignment launders a float
    seconds value into the integer-ns naming convention; every later
    reader (and every lexical rule) will trust the suffix.
    """

    rule_id = "TIMX002"
    title = "float-seconds value bound to a *_ns name"
    severity = Severity.ERROR
    fix_hint = "convert first: timeout_ns = seconds(timeout_s) / s_to_ns(...)"

    def check_program(self, program: Program) -> Iterator[Finding]:
        analysis = analyze(program)
        seen: Set[Tuple[str, int, str]] = set()
        for function, stmt, name, roots, path in analysis.ns_bindings:
            line = getattr(stmt, "lineno", 1)
            key = (path, line, name)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding_at(
                path,
                line,
                getattr(stmt, "col_offset", 0) + 1,
                f"{name!r} in {function} is assigned a float-seconds value "
                f"({_describe_roots(roots)}) without conversion",
            )
