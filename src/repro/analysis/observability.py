"""Observability rules (OBS0xx).

The telemetry layer's whole value rests on digest neutrality: enabling
it must not change a single canonical-trace byte, at any ``--jobs``
value, on any machine. That holds only if telemetry records nothing but
deterministic counts and simulated-time integers — so inside
``src/repro/telemetry/`` there are no wall clocks (``time.*``) and no
randomness (``random``, ``numpy.random``, or RngRegistry ``.stream()``
acquisition, which would perturb every downstream draw). OBS001 turns
that contract from prose into a lint gate.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule

#: Modules whose import anywhere in the telemetry package is banned.
_BANNED_MODULES = ("time", "random", "numpy.random")


def _banned_import(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    for banned in _BANNED_MODULES:
        if name == banned or name.startswith(banned + "."):
            return banned
    return None


@register_rule
class TelemetryPurityRule(LintRule):
    """OBS001: no wall clocks or randomness in the telemetry package.

    Flags, inside ``repro/telemetry/``: imports of ``time``, ``random``,
    or ``numpy.random``; calls through those modules; ``default_rng``
    construction; and RngRegistry ``.stream()`` acquisition (telemetry
    consuming a stream would shift every later draw and break digest
    neutrality).
    """

    rule_id = "OBS001"
    title = "wall clock / randomness in telemetry code"
    severity = Severity.ERROR
    fix_hint = (
        "telemetry records only deterministic counts and integer sim-time "
        "values; take timestamps from Simulator.now at the call site and "
        "keep clocks/RNG out of repro/telemetry"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.module_parts or ctx.module_parts[0] != "telemetry":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    banned = _banned_import(alias.name)
                    if banned is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {banned} in telemetry code",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    banned = _banned_import(node.module)
                    if banned is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"import from {banned} in telemetry code",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                banned = _banned_import(name) or _banned_import(
                    name.rpartition(".")[0] or None
                )
                if name == "time" or name.startswith("time."):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock call {name}() in telemetry code",
                    )
                elif banned is not None or name.startswith("random."):
                    yield self.finding(
                        ctx,
                        node,
                        f"randomness call {name}() in telemetry code",
                    )
                elif name.rpartition(".")[2] == "default_rng":
                    yield self.finding(
                        ctx,
                        node,
                        "RNG construction (default_rng) in telemetry code",
                    )
                elif name.rpartition(".")[2] == "stream" and "." in name:
                    yield self.finding(
                        ctx,
                        node,
                        f"RNG stream acquisition {name}() in telemetry code",
                    )
