"""slinglint — repo-native static analysis for the Slingshot reproduction.

The reproduction rests on invariants that used to live only in prose:

* **Determinism** — all stochastic behaviour flows through
  :class:`repro.sim.rng.RngRegistry` named streams; no wall clocks, no
  stdlib ``random``, no ad-hoc constant-seeded generators.
* **Time units** — all simulated time is integer nanoseconds on the
  shared :class:`repro.sim.engine.Simulator` clock, expressed via
  :mod:`repro.sim.units`.
* **Event safety** — event callbacks must not rely on same-timestamp
  FIFO tie order or capture loop variables late.
* **P4 resources** — the switch program must fit a Tofino-class
  pipeline's table, register-access, and SRAM/ALU budgets (§8.6).
* **Perf timing funnel** — benchmark code in ``repro/perf`` reads wall
  time only through the sanctioned :mod:`repro.perf.timing` helper.
* **Shard-worker purity** — ``repro/parallel`` holds no fork-divergent
  module state, and shard workers (``*_shard``) draw randomness only
  from seed-derived RngRegistry streams.
* **Telemetry purity** — ``repro/telemetry`` records only deterministic
  counts and integer sim-time values: no wall clocks, no randomness, no
  RngRegistry stream acquisition (digest neutrality by construction).

``python -m repro lint`` runs every registered rule over ``src/repro``
(or explicit paths) and exits non-zero on findings. Individual findings
are suppressed in source with ``# slinglint: disable=<rule-id>`` on the
offending line, or ``# slinglint: disable-file=<rule-id>`` anywhere in
the file.
"""

from repro.analysis.findings import Finding, Severity, format_findings
from repro.analysis.registry import (
    LintContext,
    LintRule,
    all_rules,
    register_rule,
)
from repro.analysis.runner import lint_paths, lint_source

# Importing the rule modules registers their rules.
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import event_safety as _event_safety  # noqa: F401
from repro.analysis import observability as _observability  # noqa: F401
from repro.analysis import p4budget as _p4budget  # noqa: F401
from repro.analysis import parallel_rules as _parallel_rules  # noqa: F401
from repro.analysis import perf_rules as _perf_rules  # noqa: F401
from repro.analysis import state_inventory as _state_inventory  # noqa: F401
from repro.analysis import streams as _streams  # noqa: F401
from repro.analysis import taint as _taint  # noqa: F401
from repro.analysis import time_units as _time_units  # noqa: F401

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "Severity",
    "all_rules",
    "format_findings",
    "lint_paths",
    "lint_source",
    "register_rule",
]
