"""Runtime sanitizer: static STREAM map vs. actual golden-run draws.

The STREAM rules (:mod:`repro.analysis.streams`) prove stream-name
ownership *statically*; this module closes the loop at runtime. With the
:func:`repro.sim.rng.set_stream_observer` hook installed, every
``RngRegistry.stream(...)`` acquisition during the golden digest
scenarios (:data:`repro.perf.scenarios.DIGEST_SCENARIOS`) is recorded
with the module that made it, then diffed against the static map:

* a dynamic draw whose ``(name, module)`` matches no static site in that
  module is a **divergence** — the static analysis is blind to a real
  draw (an ``exec``-built name, a monkeypatched acquirer, a site the
  extractor failed to see), so every STREAM guarantee is unsound there;
* static sites the scenarios never exercised are reported as coverage,
  not divergence — the golden set is deliberately small.

The observer only records; it never draws. The scenarios are the same
functions whose trace digests tier-1 pins, so a ``--sanitize`` run is
also an end-to-end determinism check of the instrumented registry.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.program import Program
from repro.analysis.streams import StreamSite, stream_sites

#: Modules whose frames are skipped when attributing a draw to its
#: caller: the registry's own internals and this recorder.
_INFRA_MODULES = frozenset({"repro.sim.rng", "repro.analysis.sanitize"})


def _caller_module() -> str:
    """Module name of the nearest non-infrastructure frame."""
    frame = sys._getframe(1)
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name not in _INFRA_MODULES:
            return name
        frame = frame.f_back
    return "<unknown>"


@dataclass
class SanitizeResult:
    """Outcome of one static-vs-dynamic stream cross-check."""

    #: Distinct (stream name, caller module) pairs observed at runtime.
    draws: List[Tuple[str, str]] = field(default_factory=list)
    #: Observed draws with no matching static site in the caller module.
    divergences: List[str] = field(default_factory=list)
    #: Static sites matched by at least one observed draw.
    covered_sites: int = 0
    total_sites: int = 0
    scenarios: Tuple[str, ...] = ()

    def summary(self) -> str:
        status = (
            "0 divergences"
            if not self.divergences
            else f"{len(self.divergences)} DIVERGENCES"
        )
        lines = [
            f"sanitize: {len(self.draws)} distinct stream draws across "
            f"{len(self.scenarios)} golden scenarios "
            f"({', '.join(self.scenarios)}); "
            f"{self.covered_sites}/{self.total_sites} static sites "
            f"exercised; {status}"
        ]
        lines.extend(f"  divergence: {entry}" for entry in self.divergences)
        return "\n".join(lines)


def run_sanitizer(
    program: Program, scenario_names: Optional[Sequence[str]] = None
) -> SanitizeResult:
    """Run the golden scenarios with the recorder on and diff the draws.

    Imports the scenario runners lazily so a plain lint pass never pulls
    the simulation stack (or numpy) into the analyzer's import graph.
    ``scenario_names`` restricts the run to a subset of the golden set
    (tests); the default runs all of it.
    """
    from repro.perf.scenarios import DIGEST_SCENARIOS
    from repro.sim.rng import set_stream_observer

    names = sorted(DIGEST_SCENARIOS) if scenario_names is None else list(scenario_names)
    observed: Set[Tuple[str, str]] = set()

    def record(_registry, name: str) -> None:
        observed.add((name, _caller_module()))

    previous = set_stream_observer(record)
    try:
        for scenario_name in names:
            DIGEST_SCENARIOS[scenario_name]()
    finally:
        set_stream_observer(previous)

    sites = stream_sites(program)
    by_module: Dict[str, List[StreamSite]] = {}
    for site in sites:
        by_module.setdefault(site.module, []).append(site)

    matched_sites: Set[Tuple[str, int, int]] = set()
    divergences: List[str] = []
    for name, module in sorted(observed):
        candidates = by_module.get(module, [])
        hits = [site for site in candidates if site.matches(name)]
        if hits:
            for site in hits:
                matched_sites.add((site.path, site.line, site.col))
        else:
            divergences.append(
                f"stream {name!r} drawn from {module} matches no static "
                "site in that module"
            )
    return SanitizeResult(
        draws=sorted(observed),
        divergences=divergences,
        covered_sites=len(matched_sites),
        total_sites=len(sites),
        scenarios=tuple(names),
    )
