"""Parallel-execution rules (PAR0xx).

The shard runner's determinism contract — "bit-identical to serial at
any ``--jobs``" — only holds if shard workers are *pure functions of
their payload*. Two properties make that true, and PAR001 makes both
mechanical:

* **No shared mutable state.** A module-level list/dict/set (or a
  ``global`` rebind) in :mod:`repro.parallel` would be copied into each
  forked worker and silently diverge between processes — the serial run
  would see mutations that the parallel run loses. The one sanctioned
  exception is a deterministic-by-construction cache (grown values
  depend only on code, never on execution order), which must carry an
  explicit suppression comment justifying itself.
* **No RNGs outside the registry.** A shard worker that constructs its
  own generator (``np.random.default_rng``, ``random.Random``) ties its
  results to whatever ad-hoc seed it picked rather than to the shard's
  seed-derived :class:`repro.sim.rng.RngRegistry` streams, breaking
  replayability. Workers are the functions named ``*_shard`` — the
  naming convention :mod:`repro.experiments.sweep` establishes — plus
  everything inside ``repro/parallel/`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule

#: Call-name tails that construct a generator outside the registry.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "Random"}

#: Module-level value expressions that create mutable containers.
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "deque", "OrderedDict"}


def _shard_functions(tree: ast.Module) -> List[ast.AST]:
    """Every function whose name marks it as a shard worker."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name.endswith("_shard")
    ]


@register_rule
class ParallelShardPurityRule(LintRule):
    """PAR001: shard workers rebuild all state from their payload.

    In ``repro/parallel/``: flags module-level mutable containers and
    ``global`` statements (fork-divergent state). There *and* in any
    function named ``*_shard`` anywhere in the tree: flags direct RNG
    construction (``default_rng``/``Random``/``RandomState``) — shard
    randomness must come from seed-derived RngRegistry streams.
    """

    rule_id = "PAR001"
    title = "shard-worker purity violation"
    severity = Severity.ERROR
    fix_hint = (
        "shard workers must rebuild state from the payload's seed via "
        "RngRegistry streams; keep repro/parallel free of module-level "
        "mutable state"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.module_parts:
            return
        in_parallel = ctx.module_parts[0] == "parallel"
        if in_parallel:
            yield from self._check_module_state(ctx)
            yield from self._check_rng(ctx, ctx.tree)
        else:
            for function in _shard_functions(ctx.tree):
                yield from self._check_rng(ctx, function)

    def _check_module_state(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            targets: List[ast.AST]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names_list = [dotted_name(target) for target in targets]
            if all(
                name is not None and name.startswith("__") and name.endswith("__")
                for name in names_list
            ):
                # Module dunders (__all__ & co) are interpreter metadata,
                # not worker state.
                continue
            mutable = isinstance(value, _MUTABLE_LITERALS)
            if not mutable and isinstance(value, ast.Call):
                name = dotted_name(value.func)
                mutable = name is not None and (
                    name.split(".")[-1] in _MUTABLE_FACTORIES
                )
            if mutable:
                names = ", ".join(name or "<target>" for name in names_list)
                yield self.finding(
                    ctx,
                    node,
                    f"module-level mutable state {names!r} in repro.parallel "
                    "(fork-divergent between workers)",
                )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    "global-statement rebind in repro.parallel "
                    "(fork-divergent between workers)",
                )

    def _check_rng(self, ctx: LintContext, scope: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.split(".")[-1] in _RNG_CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct RNG construction {name}() in shard-worker "
                    "scope; use a seed-derived RngRegistry stream",
                )
