"""Determinism rules (DET0xx).

The simulation must be a pure function of its scenario seed: identical
runs produce identical traces. That dies the moment anything samples a
wall clock or a generator whose seed is not derived from the scenario.
All randomness flows through :class:`repro.sim.rng.RngRegistry` named
streams; all timing flows from the :class:`repro.sim.engine.Simulator`
clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import LintContext, LintRule, dotted_name, register_rule

#: Wall-clock calls that leak host time into simulation logic.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

#: datetime constructors that read the host clock.
_DATETIME_CALLS = {"now", "utcnow", "today"}

#: Legacy numpy global-state RNG functions (np.random.<fn> draws from a
#: hidden module-level generator).
_NUMPY_GLOBAL_RNG = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "uniform",
    "normal",
    "choice",
    "shuffle",
    "permutation",
}


@register_rule
class WallClockRule(LintRule):
    """DET001: no host wall clocks inside the simulation package."""

    rule_id = "DET001"
    title = "wall-clock read"
    severity = Severity.ERROR
    fix_hint = (
        "use Simulator.now (simulated ns); the only allowlisted wall-clock "
        "sites are cli.py's elapsed-time helper and repro/perf/timing.py "
        "(the benchmark harness's sanctioned clock, see PERF001)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(ctx, node, f"wall-clock call {name}()")
            else:
                head, _, tail = name.rpartition(".")
                if tail in _DATETIME_CALLS and (
                    head.endswith("datetime") or head.endswith("date")
                ):
                    yield self.finding(ctx, node, f"wall-clock call {name}()")


@register_rule
class StdlibRandomRule(LintRule):
    """DET002: the stdlib ``random`` module is banned outright."""

    rule_id = "DET002"
    title = "stdlib random import"
    severity = Severity.ERROR
    fix_hint = "draw from an RngRegistry named stream (repro.sim.rng) instead"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(ctx, node, "import of stdlib random module")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx, node, "import from stdlib random module"
                    )


@register_rule
class PrivateGeneratorRule(LintRule):
    """DET003: no unseeded or constant-seeded private numpy generators.

    ``np.random.default_rng()`` is nondeterministic; ``default_rng(0)``
    (any constant literal) creates a private stream that silently decouples
    the component from the scenario seed. Seeds must be derived — an
    RngRegistry stream, a function parameter, or content (e.g. a transport
    block id). ``repro/sim/rng.py`` itself is exempt: it is the one place
    allowed to construct generators.
    """

    rule_id = "DET003"
    title = "private numpy generator"
    severity = Severity.ERROR
    fix_hint = (
        "thread an RngRegistry stream through the deployment wiring "
        "(rng.stream(name)) instead of a private default_rng fallback"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module("sim", "rng.py"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.endswith("random.default_rng") or name == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node, "unseeded np.random.default_rng()"
                    )
                elif node.args and isinstance(node.args[0], ast.Constant):
                    yield self.finding(
                        ctx,
                        node,
                        "constant-seeded np.random.default_rng"
                        f"({node.args[0].value!r})",
                    )


@register_rule
class NumpyGlobalRngRule(LintRule):
    """DET004: no draws from numpy's hidden module-level generator."""

    rule_id = "DET004"
    title = "numpy global RNG"
    severity = Severity.ERROR
    fix_hint = "use a Generator object from an RngRegistry stream"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module("sim", "rng.py"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, tail = name.rpartition(".")
            if tail in _NUMPY_GLOBAL_RNG and (
                head == "np.random" or head == "numpy.random"
            ):
                yield self.finding(ctx, node, f"numpy global-state call {name}()")
