"""Aggregate UE population model: flow-level cohorts + tracer UEs.

Simulating ~10⁶ users at per-UE PHY/RLC/TCP fidelity is six orders of
magnitude more event work than the fleet needs to answer its question
(how much user-weighted downtime does a given standby-pool size cost?).
The population model therefore splits the user base:

* **Cohorts** — each cell carries flow-level user cohorts whose
  offered/served byte accounting advances once per *epoch* (default
  10 ms) in a single event per fleet, so per-slot work scales with the
  number of cells, not the number of users.
* **Tracer cells** — a small sample of cells (drawn from the reserved
  ``fleet.tracers`` RNG stream) is built with full per-UE fidelity;
  their canonical traces are byte-identical to a standalone single-cell
  run of the same config (pinned by ``tests/test_fleet.py``), which is
  what licenses trusting the cohort approximation for everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

#: Per-user downlink demand per cohort class, bytes per 10 ms epoch
#: (~1.2 Mb/s video + ~80 kb/s interactive — the §8 workload mix).
COHORT_CLASSES: Tuple[Tuple[str, int], ...] = (
    ("video", 1500),
    ("interactive", 100),
)


@dataclass
class UeCohort:
    """One cell's flow-level slice of the user population."""

    cell_index: int
    name: str
    users: int
    bytes_per_user_epoch: int
    offered_bytes: int = 0
    served_bytes: int = 0
    lost_bytes: int = 0


@dataclass
class FleetPopulation:
    """Fleet-wide cohort accounting, advanced one event per epoch."""

    sim: Simulator
    trace: Optional[TraceRecorder]
    num_cells: int
    users_per_cell: int
    epoch_ns: int
    cohorts: List[UeCohort] = field(default_factory=list)
    cell_down: List[bool] = field(default_factory=list)
    epochs: int = 0
    #: Σ users × epochs spent degraded (the user-weighted downtime the
    #: availability curve is made of).
    degraded_user_epochs: int = 0
    served_user_epochs: int = 0

    def __post_init__(self) -> None:
        if not self.cohorts:
            self.cohorts = self._build_cohorts()
        if not self.cell_down:
            self.cell_down = [False] * self.num_cells

    def _build_cohorts(self) -> List[UeCohort]:
        cohorts: List[UeCohort] = []
        for cell_index in range(self.num_cells):
            remaining = self.users_per_cell
            for position, (name, demand) in enumerate(COHORT_CLASSES):
                last = position == len(COHORT_CLASSES) - 1
                users = remaining if last else self.users_per_cell // 2
                remaining -= users
                cohorts.append(
                    UeCohort(
                        cell_index=cell_index,
                        name=name,
                        users=users,
                        bytes_per_user_epoch=demand,
                    )
                )
        return cohorts

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule_periodic(
            self.epoch_ns, self._epoch_tick, label="fleet.pop.epoch"
        )

    def _epoch_tick(self) -> None:
        """Advance every cohort one epoch — one event for the whole fleet."""
        self.epochs += 1
        served_users = 0
        degraded_users = 0
        for cohort in self.cohorts:
            offered = cohort.users * cohort.bytes_per_user_epoch
            cohort.offered_bytes += offered
            if self.cell_down[cohort.cell_index]:
                cohort.lost_bytes += offered
                degraded_users += cohort.users
            else:
                cohort.served_bytes += offered
                served_users += cohort.users
        self.served_user_epochs += served_users
        self.degraded_user_epochs += degraded_users
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "fleet.pop.epoch",
                epoch=self.epochs,
                served_users=served_users,
                degraded_users=degraded_users,
            )

    # ------------------------------------------------------------------
    # Degradation hooks (driven by the pool gate and failover completion)
    # ------------------------------------------------------------------
    def mark_down(self, cell_index: int) -> None:
        self.cell_down[cell_index] = True

    def mark_up(self, cell_index: int) -> None:
        self.cell_down[cell_index] = False

    def on_pool_decision(self, cell_index: int, granted: bool) -> None:
        """Gate observer: either way the cell is degraded *now* — a grant
        recovers at failover commit (``FleetFailoverHook``), a denial
        stays down until an operator intervenes."""
        self.mark_down(cell_index)

    def total_users(self) -> int:
        return sum(c.users for c in self.cohorts)

    def summary(self) -> dict:
        return {
            "epochs": self.epochs,
            "total_users": self.total_users(),
            "served_user_epochs": self.served_user_epochs,
            "degraded_user_epochs": self.degraded_user_epochs,
            "offered_bytes": sum(c.offered_bytes for c in self.cohorts),
            "served_bytes": sum(c.served_bytes for c in self.cohorts),
            "lost_bytes": sum(c.lost_bytes for c in self.cohorts),
        }


class FleetFailoverHook:
    """Per-cell ``L2SideOrion.on_failover`` adapter (closure-free)."""

    __slots__ = ("population", "cell_index")

    def __init__(self, population: FleetPopulation, cell_index: int) -> None:
        self.population = population
        self.cell_index = cell_index

    def __call__(self, cell_id: int, dest_phy: int) -> None:
        self.population.mark_up(self.cell_index)


def sample_tracer_cells(
    registry: RngRegistry, num_cells: int, count: int
) -> Tuple[int, ...]:
    """Sample which cells get full per-UE fidelity, from ``fleet.tracers``.

    The stream is reserved to the fleet subsystem (slinglint STREAM
    table), so tracer selection never perturbs any cell-local stream.
    """
    if count <= 0:
        return ()
    if count >= num_cells:
        return tuple(range(num_cells))
    stream = registry.stream("fleet.tracers")
    picks = stream.choice(num_cells, size=count, replace=False)
    return tuple(sorted(int(i) for i in picks))
