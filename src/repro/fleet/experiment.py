"""The registered ``fleet`` experiment: availability vs standby count.

A thin adapter over :mod:`repro.fleet.campaign` matching the experiment
registry's ``run``/``summarize`` protocol, so the fleet curve is
reachable both as ``python -m repro fleet`` (the harness CLI with
``--check``/``--out``/``--jobs``) and as a registered experiment
(``python -m repro all`` coverage, registry-driven docs and tests).
"""

from __future__ import annotations

from repro.fleet.campaign import FleetReport, run_fleet_campaign

name = "fleet"


def run(jobs: int = 1, quick: bool = False) -> FleetReport:
    """Run the fleet availability campaign (full or ``--quick`` matrix)."""
    return run_fleet_campaign(quick=quick, jobs=jobs)


def summarize(result: FleetReport) -> str:
    """Availability-vs-standby-count curve, one line per fault class."""
    lines = [
        "fleet availability vs pooled standby count "
        "(10 cells, 1M users, mean over seeds):"
    ]
    for fault_class, by_pool in result.curve().items():
        points = "  ".join(
            f"M={pool_size}: {availability:.6f}"
            for pool_size, availability in sorted(by_pool.items())
        )
        lines.append(f"  {fault_class:<14} {points}")
    failed = sum(1 for r in result.runs if not r.passed)
    lines.append(
        f"  {len(result.runs)} runs, {failed} accounting failures; "
        + ("curve monotone in M" if not result.curve_problems()
           else "CURVE PROBLEMS: " + "; ".join(result.curve_problems()))
    )
    return "\n".join(lines)
