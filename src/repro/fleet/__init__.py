"""Metro-scale fleet composition: O(100) cells, N:M pooled standbys.

The single-cell deployments in :mod:`repro.cell` dedicate one warm
standby PHY to every cell (1:1 redundancy).  Real metro deployments
(§2.2, §8.6 of the paper; *Designing Reliable Virtualized RANs*,
Usubütün et al.) share a much smaller pool of standby capacity across
the whole fleet — N cells backed by M << N warm seats.  This package
composes that deployment shape out of the existing cell builder:

* :mod:`repro.fleet.composer` — instantiate N island cells on one shared
  event loop, validated against the P4 pipeline's 256-RU budget;
* :mod:`repro.fleet.pool` — the shared standby-capacity pool: promotion
  claims, exhaustion (surfaced as ``failovers_impossible``), and re-warm
  of consumed seats;
* :mod:`repro.fleet.population` — the aggregate UE population model:
  flow-level cohorts billed per cell per epoch (so per-slot work scales
  with cells, not users), with sampled *tracer* cells expanded to full
  per-UE fidelity;
* :mod:`repro.fleet.campaign` — the availability-vs-standby-count
  experiment over the chaos fault classes, sharded via
  :func:`repro.parallel.run_shards` and gated by
  ``benchmarks/BENCH_fleet.json``.
"""

from repro.fleet.composer import (
    FleetBudgetError,
    FleetConfig,
    FleetHarness,
    build_fleet,
    fleet_cell_seed,
    fleet_digest,
    validate_fleet_budget,
)
from repro.fleet.pool import PoolGate, StandbyPool
from repro.fleet.population import FleetPopulation, UeCohort

__all__ = [
    "FleetBudgetError",
    "FleetConfig",
    "FleetHarness",
    "FleetPopulation",
    "PoolGate",
    "StandbyPool",
    "UeCohort",
    "build_fleet",
    "fleet_cell_seed",
    "fleet_digest",
    "validate_fleet_budget",
]
