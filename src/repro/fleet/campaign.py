"""Fleet campaign: availability vs standby-pool size + ``repro fleet`` CLI.

The headline fleet experiment (grounded in *Designing Reliable
Virtualized RANs*, Usubütün et al.): for each chaos fault class, fail a
fixed set of cells against standby pools of increasing size and measure
the fleet's **user-weighted availability** over the measurement window.
With M = 0 every failure is a full-window outage; each added warm seat
converts one more concurrent failure into a ~millisecond blip, and the
re-warm path lets the *same* seat absorb a second failure wave — the
availability-vs-standby curve the recorded ``BENCH_fleet.json`` pins.

``--jobs N`` fans the independent ``(fault class, pool size, seed)``
runs over a process pool; runs merge in canonical key order so the
report and every digest are bit-identical at any jobs value.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ProcessFaultSpec
from repro.fleet.composer import FleetConfig, FleetHarness, build_fleet, fleet_digest
from repro.parallel.pool import run_shards
from repro.telemetry.metrics import active as _telemetry_active
from repro.sim.units import MS

# ----------------------------------------------------------------------
# Fixed fleet shape + timeline. These are identical for --quick and full
# runs (quick only trims the run matrix) so every digest is comparable
# against the same recorded baseline.
# ----------------------------------------------------------------------
FLEET_NUM_CELLS = 10
FLEET_USERS_PER_CELL = 100_000  # 10 cells x 100k = the ~1M-user metro.
FLEET_REWARM_NS = 40 * MS

FLEET_MEASURE_START_NS = 40 * MS
FLEET_FAULT_NS = 60 * MS
FLEET_WAVE2_NS = 130 * MS
FLEET_MEASURE_END_NS = 190 * MS
FLEET_RUN_END_NS = 200 * MS
#: Wave-internal stagger, so pool contention resolves in failure order.
FLEET_STAGGER_NS = 1 * MS

#: Cells failed in wave 1 / wave 2 (wave 2 only in ``second_wave``).
WAVE1_CELLS = (0, 1, 2)
WAVE2_CELLS = (3, 4)

POOL_SIZES = (0, 1, 2, 4)
FAULT_CLASSES = ("crash", "crash_restart", "hang", "second_wave")
QUICK_FAULT_CLASSES = ("crash", "second_wave")
FLEET_SEEDS = (1, 2)
QUICK_SEEDS = (1,)

#: crash_restart revival delay (operator replaces the dead server).
FLEET_RESTART_NS = 50 * MS


def fault_schedule(fault_class: str) -> List[Tuple[int, ProcessFaultSpec]]:
    """(cell index, process fault) pairs for one fault class."""
    if fault_class not in FAULT_CLASSES:
        raise ValueError(f"unknown fleet fault class {fault_class!r}")
    schedule: List[Tuple[int, ProcessFaultSpec]] = []
    for position, cell_index in enumerate(WAVE1_CELLS):
        at_ns = FLEET_FAULT_NS + position * FLEET_STAGGER_NS
        if fault_class == "hang":
            spec = ProcessFaultSpec(phy_id=0, kind="hang", at_ns=at_ns)
        elif fault_class == "crash_restart":
            spec = ProcessFaultSpec(
                phy_id=0,
                kind="crash_restart",
                at_ns=at_ns,
                duration_ns=FLEET_RESTART_NS,
            )
        else:  # "crash" and the first wave of "second_wave"
            spec = ProcessFaultSpec(phy_id=0, kind="crash", at_ns=at_ns)
        schedule.append((cell_index, spec))
    if fault_class == "second_wave":
        for position, cell_index in enumerate(WAVE2_CELLS):
            schedule.append(
                (
                    cell_index,
                    ProcessFaultSpec(
                        phy_id=0,
                        kind="crash",
                        at_ns=FLEET_WAVE2_NS + position * FLEET_STAGGER_NS,
                    ),
                )
            )
    return schedule


# ----------------------------------------------------------------------
# One run
# ----------------------------------------------------------------------
@dataclass
class FleetRun:
    """One (fault class, pool size, seed) execution."""

    fault_class: str
    pool_size: int
    seed: int
    digest: str
    availability: float
    downtime_ms: List[float]
    pool: Dict[str, int]
    migrations_committed: int
    failovers_impossible: int
    source_transitions: int
    population: Dict[str, int]
    accounting: Dict[str, object]
    passed: bool
    #: Per-failed-cell FailoverTimeline.as_dict(), populated only when
    #: telemetry is enabled; excluded from :meth:`as_dict` so the report
    #: (and serial-vs-parallel equality) is identical either way.
    timelines: Optional[List[dict]] = None

    def as_dict(self) -> dict:
        return {
            "fault_class": self.fault_class,
            "pool_size": self.pool_size,
            "seed": self.seed,
            "digest": self.digest,
            "availability": self.availability,
            "downtime_ms": self.downtime_ms,
            "pool": self.pool,
            "migrations_committed": self.migrations_committed,
            "failovers_impossible": self.failovers_impossible,
            "source_transitions": self.source_transitions,
            "population": self.population,
            "accounting": self.accounting,
            "passed": self.passed,
        }


def _cell_recovery_ns(cell, fault_ns: int) -> Optional[int]:
    """When the cell's users saw service again: the fronthaul flip to the
    promoted standby, or (denied crash_restart) the primary's revival."""
    candidates = [
        e.time
        for category in ("mbox.migration_committed", "phy.restart")
        for e in cell.trace.events(category)
        if e.time >= fault_ns
    ]
    return min(candidates) if candidates else None


def _downtimes_ns(
    harness: FleetHarness, schedule: Sequence[Tuple[int, ProcessFaultSpec]]
) -> List[int]:
    downtimes: List[int] = []
    for cell_index, spec in schedule:
        recovery = _cell_recovery_ns(harness.cells[cell_index], spec.at_ns)
        end = FLEET_MEASURE_END_NS if recovery is None else min(
            recovery, FLEET_MEASURE_END_NS
        )
        start = max(spec.at_ns, FLEET_MEASURE_START_NS)
        downtimes.append(max(0, end - start))
    return downtimes


def run_fleet(fault_class: str, pool_size: int, seed: int) -> FleetRun:
    """Execute and judge one fleet run."""
    config = FleetConfig(
        seed=seed,
        num_cells=FLEET_NUM_CELLS,
        standby_pool_size=pool_size,
        users_per_cell=FLEET_USERS_PER_CELL,
        rewarm_ns=FLEET_REWARM_NS,
    )
    harness = build_fleet(config)
    schedule = fault_schedule(fault_class)
    for cell_index, spec in schedule:
        FaultInjector(
            harness.cells[cell_index],
            FaultPlan(
                name=f"fleet-{fault_class}-cell{cell_index}",
                process_faults=(spec,),
            ),
        ).arm()
    harness.run_until(FLEET_RUN_END_NS)

    commits = sum(
        cell.trace.count("mbox.migration_committed") for cell in harness.cells
    )
    impossible = sum(
        cell.trace.count("orion.failover_impossible") for cell in harness.cells
    )
    transitions = sum(
        1
        for cell in harness.cells
        for e in cell.trace.events("ru.source_changed")
        if e.get("previous") is not None
    )
    pool = harness.pool
    downtimes = _downtimes_ns(harness, schedule)
    window = FLEET_MEASURE_END_NS - FLEET_MEASURE_START_NS
    users = harness.population.total_users()
    lost_user_ns = sum(downtimes) * config.users_per_cell
    availability = 1.0 - lost_user_ns / (users * window)

    # Pool-exhaustion accounting (the satellite-4 contract): every
    # injected primary failure is accounted exactly once — promoted (and
    # committed, flipping the RU source once) or denied — even when a
    # seat is re-warmed and reclaimed within the same run.
    problems: List[str] = []
    injected = len(schedule)
    if pool.promotions + pool.exhaustions != injected:
        problems.append(
            f"{pool.promotions} promotions + {pool.exhaustions} exhaustions "
            f"!= {injected} injected failures"
        )
    if commits != pool.promotions:
        problems.append(
            f"{commits} commits != {pool.promotions} pool promotions"
        )
    if impossible != pool.exhaustions:
        problems.append(
            f"{impossible} failover_impossible != {pool.exhaustions} exhaustions"
        )
    if transitions != commits:
        problems.append(f"{transitions} RU source transitions != {commits} commits")
    per_cell_commits = [
        harness.cells[cell_index].trace.count("mbox.migration_committed")
        for cell_index, _ in schedule
    ]
    if any(count > 1 for count in per_cell_commits):
        problems.append(f"a cell committed more than once: {per_cell_commits}")
    if fault_class == "second_wave" and pool_size > 0:
        wave1_grants = min(len(WAVE1_CELLS), pool_size)
        if pool.rewarmed < 1 or pool.promotions <= wave1_grants:
            problems.append(
                "re-warmed seat was never reclaimed by the second wave "
                f"(promotions={pool.promotions}, rewarmed={pool.rewarmed})"
            )
    accounting = {
        "injected_failures": injected,
        "consistent": not problems,
        "problems": problems,
    }

    run = FleetRun(
        fault_class=fault_class,
        pool_size=pool_size,
        seed=seed,
        digest=fleet_digest(harness),
        availability=round(availability, 6),
        downtime_ms=[round(d / 1e6, 3) for d in downtimes],
        pool=pool.stats_dict(),
        migrations_committed=commits,
        failovers_impossible=impossible,
        source_transitions=transitions,
        population=harness.population.summary(),
        accounting=accounting,
        passed=not problems,
    )
    metrics = _telemetry_active()
    if metrics is not None:
        from repro.telemetry.timeline import FailoverTimeline

        run.timelines = []
        for cell_index, spec in schedule:
            timeline = FailoverTimeline.from_events(
                harness.cells[cell_index].trace.canonical_events(),
                window_start_ns=FLEET_MEASURE_START_NS,
                window_end_ns=FLEET_MEASURE_END_NS,
            )
            metrics.span(
                "fleet.recovery",
                spec.at_ns,
                FLEET_MEASURE_END_NS
                if timeline.committed_ns is None
                else timeline.committed_ns,
                fault_class=fault_class,
                pool_size=pool_size,
                cell=cell_index,
                seed=seed,
            )
            run.timelines.append(dict(timeline.as_dict(), cell=cell_index))
        metrics.gauge("fleet.pool.size").set(pool_size)
    return run


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class FleetReport:
    runs: List[FleetRun] = field(default_factory=list)
    #: Shard-runner wall/RSS accounting; machine facts, excluded from
    #: :meth:`as_dict` (see the chaos campaign's identical convention).
    execution: Optional[dict] = None

    @property
    def passed(self) -> bool:
        return all(run.passed for run in self.runs) and not self.curve_problems()

    def curve(self) -> Dict[str, Dict[int, float]]:
        """fault class -> pool size -> mean availability over seeds."""
        sums: Dict[str, Dict[int, List[float]]] = {}
        for run in self.runs:
            sums.setdefault(run.fault_class, {}).setdefault(
                run.pool_size, []
            ).append(run.availability)
        return {
            fault_class: {
                pool_size: round(sum(values) / len(values), 6)
                for pool_size, values in sorted(by_pool.items())
            }
            for fault_class, by_pool in sorted(sums.items())
        }

    def curve_problems(self) -> List[str]:
        """Availability must be non-decreasing in pool size, per class."""
        problems: List[str] = []
        for fault_class, by_pool in self.curve().items():
            values = [by_pool[size] for size in sorted(by_pool)]
            if any(b < a for a, b in zip(values, values[1:])):
                problems.append(
                    f"{fault_class}: availability not monotone in pool size: "
                    f"{values}"
                )
        return problems

    def as_dict(self) -> dict:
        return {
            "benchmark": "fleet",
            "fleet": {
                "num_cells": FLEET_NUM_CELLS,
                "users_per_cell": FLEET_USERS_PER_CELL,
                "rewarm_ms": FLEET_REWARM_NS // MS,
                "wave1_cells": list(WAVE1_CELLS),
                "wave2_cells": list(WAVE2_CELLS),
            },
            "fault_classes": sorted({r.fault_class for r in self.runs}),
            "pool_sizes": sorted({r.pool_size for r in self.runs}),
            "seeds": sorted({r.seed for r in self.runs}),
            "runs_total": len(self.runs),
            "runs_failed": sum(1 for r in self.runs if not r.passed),
            "curve": {
                fault_class: {str(k): v for k, v in by_pool.items()}
                for fault_class, by_pool in self.curve().items()
            },
            "curve_problems": self.curve_problems(),
            "passed": self.passed,
            "runs": [r.as_dict() for r in self.runs],
        }

    def bench_dict(self) -> dict:
        data = self.as_dict()
        if self.execution is not None:
            data["execution"] = self.execution
        return data


def run_fleet_campaign(
    fault_classes: Optional[Sequence[str]] = None,
    pool_sizes: Sequence[int] = POOL_SIZES,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
    progress=None,
    jobs: int = 1,
) -> FleetReport:
    """Run the (fault class x pool size x seed) matrix on ``jobs`` workers.

    The shard key is the canonical ``(fault_class, pool_size, seed)``
    triple; results merge — and ``progress`` streams — in that order at
    every jobs value, so the report is identical to a serial run.
    """
    from repro.parallel.workers import run_fleet_shard

    if fault_classes is None:
        fault_classes = QUICK_FAULT_CLASSES if quick else FAULT_CLASSES
    if seeds is None:
        seeds = QUICK_SEEDS if quick else FLEET_SEEDS
    shards = [
        (
            (fault_class, pool_size, seed),
            (fault_class, pool_size, seed),
        )
        for fault_class in fault_classes
        for pool_size in pool_sizes
        for seed in seeds
    ]
    outcome = run_shards(
        run_fleet_shard,
        shards,
        jobs=jobs,
        progress=None if progress is None else (lambda key, run: progress(run)),
    )
    return FleetReport(runs=outcome.values(), execution=outcome.accounting())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _format_run(run: FleetRun) -> str:
    verdict = "PASS" if run.passed else "FAIL"
    suffix = ""
    if not run.passed:
        suffix = "  !" + "; ".join(run.accounting.get("problems", []))
    return (
        f"{run.fault_class:<14} pool={run.pool_size:<2} seed={run.seed:<3} "
        f"{verdict:<5} avail={run.availability:.6f}  "
        f"promoted={run.pool['promotions']} denied={run.pool['exhaustions']} "
        f"rewarmed={run.pool['rewarmed']}{suffix}"
    )


def default_bench_path() -> Path:
    """Repo-local baseline location: ``benchmarks/BENCH_fleet.json``."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_fleet.json"


def check_against_baseline(report: FleetReport, baseline_path: Path) -> List[str]:
    """Compare a fresh campaign's digests/curve points to the baseline.

    Only executed runs are compared (``--check`` composes with
    ``--quick`` subsets); a run missing from the baseline is a failure.
    """
    failures: List[str] = []
    if not baseline_path.exists():
        return [f"baseline {baseline_path} does not exist (record it first)"]
    recorded = json.loads(baseline_path.read_text())
    by_key = {
        (entry["fault_class"], entry["pool_size"], entry["seed"]): entry
        for entry in recorded.get("runs", [])
    }
    for run in report.runs:
        key = (run.fault_class, run.pool_size, run.seed)
        label = f"{run.fault_class}/pool={run.pool_size}/seed={run.seed}"
        entry = by_key.get(key)
        if entry is None:
            failures.append(f"{label}: not in baseline")
            continue
        if entry["digest"] != run.digest:
            failures.append(
                f"{label}: digest {run.digest[:12]}... != recorded "
                f"{entry['digest'][:12]}..."
            )
        if entry["availability"] != run.availability:
            failures.append(
                f"{label}: availability {run.availability} != recorded "
                f"{entry['availability']}"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cliopts import harness_options, resolve_jobs

    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Metro-scale fleet campaign: availability vs pooled "
        "standby count across the chaos fault classes.",
        parents=[harness_options()],
    )
    parser.add_argument(
        "--class",
        action="append",
        dest="fault_classes",
        metavar="NAME",
        choices=FAULT_CLASSES,
        help="run only this fault class (repeatable; default: all)",
    )
    parser.add_argument(
        "--pool-sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"standby pool sizes to sweep (default: {list(POOL_SIZES)})",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="fleet seeds (default: 1 2; --quick: 1)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    jobs = resolve_jobs(args.jobs, "repro fleet")
    if jobs is None:
        return 2

    def progress(run: FleetRun) -> None:
        if args.format == "text":
            print(_format_run(run), flush=True)

    report = run_fleet_campaign(
        fault_classes=args.fault_classes,
        pool_sizes=tuple(args.pool_sizes) if args.pool_sizes else POOL_SIZES,
        seeds=args.seeds,
        quick=args.quick,
        progress=progress,
        jobs=jobs,
    )
    if args.format == "json":
        print(json.dumps(report.bench_dict(), indent=2))
    else:
        failed = sum(1 for r in report.runs if not r.passed)
        summary = f"\n{len(report.runs)} runs, {failed} failed"
        for problem in report.curve_problems():
            summary += f"\n  curve problem: {problem}"
        if report.execution is not None:
            speedup = report.execution.get("parallel_speedup")
            summary += (
                f"  [jobs={report.execution['effective_jobs']}"
                + (f", speedup {speedup:.2f}x" if speedup else "")
                + "]"
            )
        print(summary)
    if args.check:
        failures = check_against_baseline(
            report, args.out if args.out is not None else default_bench_path()
        )
        if failures:
            print(f"\nfleet check FAILED ({len(failures)} mismatch(es)):")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"\nfleet check passed ({len(report.runs)} run(s))")
    elif args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report.bench_dict(), indent=2) + "\n")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
