"""The shared N:M standby-capacity pool.

Every fleet cell keeps a warm null-FAPI standby *seat* (the §2.2
co-location — near-free by the §8.5 overhead measurement), but promoting
that seat on a failover consumes one unit of the fleet's shared standby
*capacity*: the CPU/fronthaul headroom provisioned for full-rate PHY
processing.  The pool models that capacity as ``size`` tokens.  A claim
at promotion time either grants (token consumed, re-warm scheduled) or
denies — and a denied cell degrades exactly like a cell with no standby,
surfacing ``orion.failover_impossible``.

Re-warm restores the *capacity* after ``rewarm_ns`` (a replacement
server is provisioned into the pool); it does not resurrect the failed
cell's own redundancy — that still takes an operator reviving the dead
server (``initialize_secondary``).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry.metrics import active as _telemetry_active


class StandbyPool:
    """Fleet-wide pool of warm standby capacity tokens."""

    def __init__(
        self,
        sim: Simulator,
        size: int,
        rewarm_ns: int,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"pool size must be >= 0, got {size}")
        self.sim = sim
        self.size = size
        self.rewarm_ns = rewarm_ns
        self.trace = trace
        self.available = size
        self.promotions = 0
        self.exhaustions = 0
        self.rewarmed = 0
        # Telemetry registry captured at construction (None = disabled).
        self._metrics = _telemetry_active()

    # ------------------------------------------------------------------
    def claim(self, cell_index: int, cell_id: int, phy_id: int) -> bool:
        """Claim one capacity token for promoting ``cell_index``'s seat.

        Claims execute inside ordinary simulator events, so concurrent
        failures contend in event order and each token is granted exactly
        once — there is no double-assign window.
        """
        if self.available <= 0:
            self.exhaustions += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "fleet.pool.exhausted",
                    cell=cell_index,
                    phy=phy_id,
                )
            if self._metrics is not None:
                self._metrics.counter("fleet.pool.exhaustions").inc()
            return False
        self.available -= 1
        self.promotions += 1
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "fleet.pool.promoted",
                cell=cell_index,
                phy=phy_id,
                available=self.available,
            )
        self._update_gauges()
        if self._metrics is not None:
            self._metrics.counter("fleet.pool.promotions").inc()
        self.sim.schedule(self.rewarm_ns, self._rewarm, label="fleet.pool.rewarm")
        return True

    def _rewarm(self) -> None:
        """A replacement standby finished provisioning: restore capacity."""
        if self.available >= self.size:
            return  # Capacity already at the provisioned ceiling.
        self.available += 1
        self.rewarmed += 1
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "fleet.pool.rewarmed", available=self.available
            )
        self._update_gauges()
        if self._metrics is not None:
            self._metrics.counter("fleet.pool.rewarms").inc()

    def _update_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("fleet.pool.available").set(self.available)

    # ------------------------------------------------------------------
    def stats_dict(self) -> dict:
        return {
            "size": self.size,
            "available": self.available,
            "promotions": self.promotions,
            "exhaustions": self.exhaustions,
            "rewarmed": self.rewarmed,
        }


class PoolGate:
    """Per-cell adapter plugged into ``L2SideOrion.standby_gate``.

    A plain callable class (no closures) so fleet harnesses stay
    picklable for checkpoint capture.
    """

    __slots__ = ("pool", "cell_index", "on_decision")

    def __init__(self, pool: StandbyPool, cell_index: int, on_decision=None) -> None:
        self.pool = pool
        self.cell_index = cell_index
        #: Optional observer called with (cell_index, granted) — the
        #: population model marks the cell degraded/recovering from here.
        self.on_decision = on_decision

    def __call__(self, assignment) -> bool:
        granted = self.pool.claim(
            self.cell_index, assignment.cell_id, assignment.secondary_phy
        )
        if self.on_decision is not None:
            self.on_decision(self.cell_index, granted)
        return granted
