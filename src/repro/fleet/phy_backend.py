"""Vectorized fleet-PHY backend: one encode kernel call per timestamp.

In a composed fleet every cell's PHY finishes its uplink pipeline at the
same slot-relative deadline, so at any completion timestamp there are
O(cells) transport blocks waiting for the same RNG-free transmit chain
(CRC attach -> LDPC encode -> modulate). The per-cell path pays one
batched-kernel invocation *per cell*; this backend pays one *per fleet*:

* At slot-processing time each PHY **registers** its planned uplink work
  (completion time, cell, slot, scheduled PDUs) — captures have not
  arrived yet at that point, so registration records only the plan.
* When the first ``_finish_uplink`` at a timestamp asks for symbols, the
  backend **gathers** every registered plan at that instant, peeks each
  cell's captured blocks read-only (the owning PHY still pops them
  itself), dedupes by encode key, and runs **one** batched encode per
  LDPC code object across all cells. Results are **scattered** back
  through a per-timestamp symbol cache keyed by content.

Byte-identity is structural, not incidental: the transmit chain is a
pure function of ``(code, tb_id, modulation)`` (the batch kernels in
:mod:`repro.phy.batch` are fuzz-pinned bit-identical to the per-block
references, and ``representative_bits`` derives from ``tb_id`` alone),
so cross-cell batching cannot change any symbol regardless of gather
order. All RNG draws — channel noise, SNR measurement error — stay in
each cell's own decode loop, in unchanged serial per-cell order, so
trace digests are bit-identical to the per-cell path by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

#: Symbol-cache key: the full input domain of the RNG-free encode chain.
_EncodeKey = Tuple[int, int, Any]


def _encode_key(codec: Any, block: Any) -> _EncodeKey:
    return (id(codec.code), block.tb_id, block.modulation)


@dataclass
class FleetPhyBackendStats:
    """Kernel-level accounting for the vectorized backend."""

    #: Batched encode kernel invocations (gather passes x code groups).
    kernel_invocations: int = 0
    #: Blocks encoded inside gather passes (deduped across cells).
    blocks_encoded: int = 0
    #: Blocks served straight from the per-timestamp symbol cache.
    cache_hits: int = 0
    #: Blocks that missed the gathered batch (e.g. a capture landing in
    #: the same instant after the gather) and were encoded supplementary.
    supplementary_blocks: int = 0
    #: Gather passes performed (at most one per completion timestamp).
    gather_passes: int = 0


class FleetPhyBackend:
    """Cross-cell batched encode, byte-identical to the per-cell path.

    Attach one instance to every PHY of a fleet (``phy.phy_backend =
    backend``); PHYs without a backend keep the per-cell
    ``codec.encode_blocks`` path.
    """

    def __init__(self) -> None:
        #: Planned uplink completions: done_at -> [(phy, cell, abs_slot, pdus)].
        self._planned: Dict[int, List[Tuple[Any, Any, int, List[Any]]]] = {}
        #: Per-timestamp symbol cache; flushed when the clock moves on.
        self._cache: Dict[_EncodeKey, np.ndarray] = {}
        self._cache_time: int = -1
        self.stats = FleetPhyBackendStats()

    # ------------------------------------------------------------------
    # Registration (from PhyProcess._process_cell_slot)
    # ------------------------------------------------------------------
    def register(
        self, done_at: int, phy: Any, cell: Any, abs_slot: int, ul_pdus: Sequence[Any]
    ) -> None:
        """Record that ``phy`` will finish ``cell``'s slot at ``done_at``."""
        self._planned.setdefault(done_at, []).append(
            (phy, cell, abs_slot, list(ul_pdus))
        )

    # ------------------------------------------------------------------
    # Demand (from PhyProcess._finish_uplink, replacing codec.encode_blocks)
    # ------------------------------------------------------------------
    def encode_blocks(
        self, phy: Any, blocks: Sequence[Any]
    ) -> List[np.ndarray]:
        """Symbols for ``blocks``, element-for-element identical to
        ``phy.codec.encode_blocks(blocks)``.

        The first demand at a timestamp triggers the fleet-wide gather;
        later demands at the same instant are cache hits.
        """
        now = phy.sim.now
        if now != self._cache_time:
            self._cache.clear()
            self._cache_time = now
            self._gather(now)
        cache = self._cache
        misses = [
            block for block in blocks if _encode_key(phy.codec, block) not in cache
        ]
        if misses:
            # A capture that landed in this same instant after the gather
            # (or a PHY that never registered): encode it in one
            # supplementary batch so the demand is still a single call.
            for block, symbols in zip(misses, phy.codec.encode_blocks(misses)):
                cache[_encode_key(phy.codec, block)] = symbols
            self.stats.kernel_invocations += 1
            self.stats.supplementary_blocks += len(misses)
        self.stats.cache_hits += len(blocks) - len(misses)
        return [cache[_encode_key(phy.codec, block)] for block in blocks]

    # ------------------------------------------------------------------
    # Gather -> batched kernels -> scatter (into the cache)
    # ------------------------------------------------------------------
    def _gather(self, now: int) -> None:
        """Batch-encode every block planned fleet-wide for this instant."""
        plans = self._planned.pop(now, None)
        # Plans whose completion event never fired (the PHY crashed after
        # registering) would otherwise accumulate forever.
        if len(self._planned) > 8:
            for stale in [t for t in self._planned if t < now]:
                del self._planned[stale]
        if not plans:
            return
        self.stats.gather_passes += 1
        cache = self._cache
        # One batch per LDPC code object: encode output depends only on
        # (code, tb_id, modulation), so PHYs sharing the cached default
        # code batch together no matter which cell they serve.
        groups: Dict[int, Tuple[Any, List[Any], List[_EncodeKey]]] = {}
        seen: set = set()
        for phy, cell, abs_slot, ul_pdus in plans:
            codec = phy.codec
            for pdu in ul_pdus:
                # Read-only peek: the owning PHY pops the capture itself
                # when its _finish_uplink runs.
                capture = cell.captures.get((abs_slot, pdu.ue_id))
                if capture is None:
                    continue
                block = capture.block
                key = _encode_key(codec, block)
                if key in cache or key in seen:
                    continue
                seen.add(key)
                group = groups.get(key[0])
                if group is None:
                    group = (codec, [], [])
                    groups[key[0]] = group
                group[1].append(block)
                group[2].append(key)
        for codec, group_blocks, keys in groups.values():
            symbols = codec.encode_blocks(group_blocks)
            for key, row in zip(keys, symbols):
                cache[key] = row
            self.stats.kernel_invocations += 1
            self.stats.blocks_encoded += len(group_blocks)
