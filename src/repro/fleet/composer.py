"""Fleet composer: N island cells on one event loop, pool-gated failover.

Each fleet cell is built by the standard single-cell builder
(:func:`repro.cell.deployment.build_slingshot_cell`) with its own RNG
registry, trace recorder, switch, middlebox, RU, and L2 — an *island*
sharing only the simulator's event loop with its siblings.  Because no
state crosses island boundaries and canonical traces factor out
same-timestamp serialization, every cell's trace is byte-identical to a
standalone run of the same config — the property the tracer-UE
differential test pins.

The composer's own additions sit beside the islands: the shared
:class:`~repro.fleet.pool.StandbyPool` gating failover promotions, and
the :class:`~repro.fleet.population.FleetPopulation` cohort model
advancing the ~10⁶-user byte accounting one event per epoch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import SlingshotCell, build_slingshot_cell
from repro.core.fh_middlebox import MiddleboxConfig
from repro.fleet.phy_backend import FleetPhyBackend
from repro.fleet.pool import PoolGate, StandbyPool
from repro.fleet.population import (
    FleetFailoverHook,
    FleetPopulation,
    sample_tracer_cells,
)
from repro.net.p4.resources import PipelineResourceModel, ResourceUsage
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS

#: Deterministic per-cell seed derivation: cells of one fleet draw from
#: disjoint seed points, and cell ``i`` of fleet seed ``s`` always gets
#: the same value (tests rebuild standalone cells from it).
FLEET_CELL_SEED_STRIDE = 10_007


def fleet_cell_seed(fleet_seed: int, cell_index: int) -> int:
    return fleet_seed + FLEET_CELL_SEED_STRIDE * (cell_index + 1)


class FleetBudgetError(ValueError):
    """The requested fleet exceeds the P4 pipeline's §8.6 envelope."""


def validate_fleet_budget(
    num_cells: int, phys_per_cell: int = 2
) -> ResourceUsage:
    """Check a fleet against the switch's 256-RU/256-PHY directories and
    the Tofino pipeline resource model; raise with every overflow listed."""
    mbox = MiddleboxConfig()
    num_rus = num_cells
    num_phys = num_cells * phys_per_cell
    problems: List[str] = []
    if num_rus > mbox.max_rus:
        problems.append(f"{num_rus} RUs > ru_id_directory capacity {mbox.max_rus}")
    if num_phys > mbox.max_phys:
        problems.append(
            f"{num_phys} PHYs > phy_id_directory capacity {mbox.max_phys}"
        )
    usage = PipelineResourceModel().usage(
        min(num_rus, mbox.max_rus), min(num_phys, mbox.max_phys)
    )
    for resource in sorted(usage.fraction):
        if usage.fraction[resource] >= 1.0:
            problems.append(
                f"pipeline resource {resource} at "
                f"{usage.percent(resource):.1f}% of the Tofino budget"
            )
    if problems:
        raise FleetBudgetError(
            f"fleet of {num_cells} cells x {phys_per_cell} PHYs does not fit "
            f"the P4 envelope: " + "; ".join(problems)
        )
    return usage


@dataclass
class FleetConfig:
    """Shape of one composed fleet."""

    seed: int = 0
    num_cells: int = 12
    #: M in N:M — warm standby capacity tokens shared by all cells.
    standby_pool_size: int = 2
    #: Aggregate (cohort-modelled) users per cell.
    users_per_cell: int = 10_000
    #: Cells expanded to full per-UE fidelity (sampled from ``fleet.tracers``).
    tracer_cells: int = 0
    #: UE profiles given to each tracer cell (None: the single-cell default).
    tracer_ue_profiles: Optional[List[UeProfile]] = None
    #: Replacement-standby provisioning time after a pool claim.
    rewarm_ns: int = 40 * MS
    #: Cohort accounting period.
    epoch_ns: int = 10 * MS
    tie_shuffle_seed: Optional[int] = None
    phys_per_cell: int = 2
    #: Encode backend: "per-cell" (each PHY batches its own slot) or
    #: "vectorized" (one fleet-wide kernel invocation per completion
    #: instant — byte-identical, see :mod:`repro.fleet.phy_backend`).
    phy_backend: str = "per-cell"

    def cell_config(self, cell_index: int, tracer: bool) -> CellConfig:
        """The standalone-equivalent config of one island cell."""
        if tracer:
            profiles = self.tracer_ue_profiles
            if profiles is None:
                return CellConfig(
                    seed=fleet_cell_seed(self.seed, cell_index),
                    num_phy_servers=self.phys_per_cell,
                )
            return CellConfig(
                seed=fleet_cell_seed(self.seed, cell_index),
                ue_profiles=list(profiles),
                num_phy_servers=self.phys_per_cell,
            )
        return CellConfig(
            seed=fleet_cell_seed(self.seed, cell_index),
            ue_profiles=[],
            num_phy_servers=self.phys_per_cell,
        )


@dataclass
class FleetHarness:
    """One composed fleet: islands + pool + population on one sim."""

    config: FleetConfig
    sim: Simulator
    #: Fleet-level recorder: pool and population events only — island
    #: cells keep their own recorders (see :func:`fleet_digest`).
    trace: TraceRecorder
    rng: RngRegistry
    pool: StandbyPool
    population: FleetPopulation
    cells: List[SlingshotCell]
    tracer_indices: Tuple[int, ...] = ()
    gates: List[PoolGate] = field(default_factory=list)
    #: The shared vectorized encode backend (None on the per-cell path).
    phy_backend: Optional[FleetPhyBackend] = None

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def run_until(self, time_ns: int) -> None:
        self.sim.run_until(time_ns)

    def kill_cell_primary_at(self, cell_index: int, time_ns: int) -> None:
        self.cells[cell_index].kill_phy_at(0, time_ns)


def build_fleet(
    config: Optional[FleetConfig] = None, sim: Optional[Simulator] = None
) -> FleetHarness:
    """Compose, validate, and start a fleet (built at sim time zero).

    ``sim`` lets a caller supply the event engine (the perf harness runs
    the same fleet on the frozen legacy engine for its baseline pair);
    default is a fresh :class:`Simulator`.
    """
    config = config or FleetConfig()
    if config.phy_backend not in ("per-cell", "vectorized"):
        raise ValueError(
            f"unknown phy_backend {config.phy_backend!r}; "
            "expected 'per-cell' or 'vectorized'"
        )
    validate_fleet_budget(config.num_cells, config.phys_per_cell)
    if sim is None:
        sim = Simulator(tie_shuffle_seed=config.tie_shuffle_seed)
    trace = TraceRecorder()
    rng = RngRegistry(seed=config.seed)
    tracer_indices = sample_tracer_cells(
        rng, config.num_cells, config.tracer_cells
    )
    pool = StandbyPool(
        sim, size=config.standby_pool_size, rewarm_ns=config.rewarm_ns, trace=trace
    )
    population = FleetPopulation(
        sim=sim,
        trace=trace,
        num_cells=config.num_cells,
        users_per_cell=config.users_per_cell,
        epoch_ns=config.epoch_ns,
    )
    backend = FleetPhyBackend() if config.phy_backend == "vectorized" else None
    cells: List[SlingshotCell] = []
    gates: List[PoolGate] = []
    for cell_index in range(config.num_cells):
        cell_cfg = config.cell_config(
            cell_index, tracer=cell_index in tracer_indices
        )
        cell = build_slingshot_cell(cell_cfg, sim=sim)
        gate = PoolGate(pool, cell_index, on_decision=population.on_pool_decision)
        cell.l2_orion.standby_gate = gate
        cell.l2_orion.on_failover = FleetFailoverHook(population, cell_index)
        if backend is not None:
            for server in cell.phy_servers:
                server.phy.phy_backend = backend
        cells.append(cell)
        gates.append(gate)
    population.start()
    return FleetHarness(
        config=config,
        sim=sim,
        trace=trace,
        rng=rng,
        pool=pool,
        population=population,
        cells=cells,
        tracer_indices=tracer_indices,
        gates=gates,
        phy_backend=backend,
    )


def fleet_digest(harness: FleetHarness) -> str:
    """Canonical fleet digest: fold of the fleet trace and every island's
    trace, in cell order — bit-identical iff every component run is."""
    hasher = hashlib.sha256()
    hasher.update(harness.trace.digest().encode("ascii"))
    for cell in harness.cells:
        hasher.update(cell.trace.digest().encode("ascii"))
    return hasher.hexdigest()
