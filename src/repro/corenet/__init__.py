"""5G core network + application server substrate.

The core has no realtime deadlines (paper §2.2); it anchors user-plane
traffic between the L2 and the application server and runs the UE attach
procedure. The attach procedure's duration is what turns a vRAN failure
into a ~6.2 s outage in the no-Slingshot baseline (§8.1): re-establishing
a broken connection with the core dominates the downtime.
"""

from repro.corenet.core import CoreNetwork, CoreConfig
from repro.corenet.server import AppServer

__all__ = ["CoreNetwork", "CoreConfig", "AppServer"]
