"""Application server.

Hosts the server side of every experiment flow (video sender, iperf
endpoints, ping client) behind the core network. The server-to-core
path models the internet/transport segment of the paper's testbed; its
latency is the dominant share of the ~22.8 ms median UE ping (§8.7).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.corenet.core import CoreNetwork
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.units import MS
from repro.transport.packet import Packet


class AppServer(Process):
    """The experiment application server, reachable through the core."""

    def __init__(
        self,
        sim: Simulator,
        core: CoreNetwork,
        latency_to_core_ns: int = 6 * MS,
        name: str = "appserver",
    ) -> None:
        super().__init__(sim, name)
        self.core = core
        self.latency_to_core_ns = latency_to_core_ns
        #: Per-flow uplink packet handlers.
        self._handlers: Dict[str, Callable[[Packet], None]] = {}
        core.uplink_handler = self._dispatch_uplink
        self.packets_sent = 0
        self.packets_received = 0

    def register_flow(self, flow_id: str, handler: Callable[[Packet], None]) -> None:
        """Route uplink packets of ``flow_id`` to ``handler``."""
        self._handlers[flow_id] = handler

    def unregister_flow(self, flow_id: str) -> None:
        self._handlers.pop(flow_id, None)

    def send_to_ue(self, packet: Packet) -> None:
        """Send one downlink packet toward its UE via the core."""
        self.packets_sent += 1
        self.call_after(self.latency_to_core_ns, self.core.send_downlink, packet)

    def _dispatch_uplink(self, packet: Packet) -> None:
        self.call_after(self.latency_to_core_ns, self._deliver_local, packet)

    def _deliver_local(self, packet: Packet) -> None:
        self.packets_received += 1
        handler = self._handlers.get(packet.flow_id)
        if handler is not None:
            handler(packet)
