"""Core network model.

Routes user-plane packets between the application server and the L2
(GTP-tunnel latency folded into a configurable one-way delay), and runs
the control-plane attach procedure.

The attach duration default reproduces the paper's measured baseline:
when a vRAN fails without Slingshot, the UE's RLF leads to a full
re-establishment with the core that keeps it offline for ~6.2 s (§8.1;
consistent with Qualcomm's ~5 s field reports cited there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.l2.mac import L2Process
from repro.l2.rlc import RlcBearerConfig
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS, s_to_ns
from repro.transport.packet import FlowDirection, Packet
from repro.ue.ue import UserEquipment


@dataclass
class CoreConfig:
    """Core-network tunables."""

    #: One-way user-plane latency between L2 and the core's N6 interface.
    backhaul_latency_ns: int = 4 * MS
    #: Mean duration of the full UE attach procedure (RRC + NAS + bearers).
    attach_duration_ns: int = s_to_ns(6.2)
    #: Jitter applied to each attach (uniform +/-).
    attach_jitter_ns: int = s_to_ns(0.3)


class CoreNetwork(Process):
    """User-plane anchor + attach procedure for one cell's UEs."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[CoreConfig] = None,
        registry: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "core",
    ) -> None:
        super().__init__(sim, name)
        self.config = config or CoreConfig()
        #: Named-stream registry. Attach jitter is drawn from a per-UE
        #: stream so that concurrent RLFs (same-timestamp events) get the
        #: same durations regardless of the order their events fire in.
        self.registry = registry if registry is not None else RngRegistry(seed=0)
        self.trace = trace
        self.l2: Optional[L2Process] = None
        #: UEs known to the core, with their bearer profiles.
        self._ues: Dict[int, UserEquipment] = {}
        self._bearer_profiles: Dict[int, List[RlcBearerConfig]] = {}
        self._ue_snr_hint: Dict[int, float] = {}
        #: Serving L2 per UE (multi-cell deployments; falls back to l2).
        self._l2_for_ue: Dict[int, L2Process] = {}
        #: Downlink handler on the server side of the core (set by AppServer).
        self.uplink_handler: Optional[Callable[[Packet], None]] = None
        self.packets_ul = 0
        self.packets_dl = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_l2(self, l2: L2Process) -> None:
        """Attach the (current) serving L2 and hook its uplink output.

        Re-binding (e.g. the baseline's switch to a backup vRAN stack)
        moves every UE that was served by the previous primary binding
        onto the new one; per-UE bindings made explicitly via
        :meth:`admit_ue` with another L2 are left alone.
        """
        previous = self.l2
        self.l2 = l2
        l2.uplink_sink = self._on_uplink_sdu
        if previous is not None and previous is not l2:
            for ue_id, serving in list(self._l2_for_ue.items()):
                if serving is previous:
                    self._l2_for_ue[ue_id] = l2

    def admit_ue(
        self,
        ue: UserEquipment,
        bearers: List[RlcBearerConfig],
        snr_hint_db: float = 10.0,
        l2: Optional[L2Process] = None,
    ) -> None:
        """Register a UE as attached (initial bring-up, no delay).

        ``l2`` selects the serving L2 in multi-cell deployments; the
        default is the core's primary binding.
        """
        serving = l2 if l2 is not None else self.l2
        self._ues[ue.ue_id] = ue
        self._bearer_profiles[ue.ue_id] = list(bearers)
        self._ue_snr_hint[ue.ue_id] = snr_hint_db
        if serving is not None:
            self._l2_for_ue[ue.ue_id] = serving
        ue.on_rlf = self._on_ue_rlf
        if serving is not None:
            serving.register_ue(ue.ue_id, bearers, snr_db=snr_hint_db)

    def _serving_l2(self, ue_id: int) -> Optional[L2Process]:
        return self._l2_for_ue.get(ue_id, self.l2)

    # ------------------------------------------------------------------
    # User plane
    # ------------------------------------------------------------------
    def send_downlink(self, packet: Packet) -> None:
        """Server -> core -> L2: deliver after backhaul latency."""
        self.packets_dl += 1
        self.call_after(self.config.backhaul_latency_ns, self._deliver_dl, packet)

    def _deliver_dl(self, packet: Packet) -> None:
        serving = self._serving_l2(packet.ue_id)
        if serving is not None:
            serving.send_downlink(
                packet.ue_id, packet.bearer_id, packet, packet.size_bytes
            )

    def _on_uplink_sdu(self, ue_id: int, bearer_id: int, sdu: Any) -> None:
        """L2 -> core -> server: deliver after backhaul latency."""
        self.packets_ul += 1
        self.call_after(self.config.backhaul_latency_ns, self._deliver_ul, sdu)

    def _deliver_ul(self, sdu: Any) -> None:
        if self.uplink_handler is not None and isinstance(sdu, Packet):
            self.uplink_handler(sdu)

    # ------------------------------------------------------------------
    # Control plane: RLF -> reattach
    # ------------------------------------------------------------------
    def _on_ue_rlf(self, ue: UserEquipment) -> None:
        """A UE lost the radio link: purge its context and begin reattach."""
        serving = self._serving_l2(ue.ue_id)
        if serving is not None:
            serving.deregister_ue(ue.ue_id)
        rng = self.registry.stream(f"core.attach.ue{ue.ue_id}")
        jitter = int(rng.uniform(-1.0, 1.0) * self.config.attach_jitter_ns)
        duration = max(self.config.attach_duration_ns + jitter, 0)
        if self.trace is not None:
            self.trace.record(
                self.now, "core.attach_started", ue=ue.ue_id, expected_ns=duration
            )
        self.call_after(duration, self._finish_attach, ue)

    def _finish_attach(self, ue: UserEquipment) -> None:
        bearers = self._bearer_profiles.get(ue.ue_id, [])
        serving = self._serving_l2(ue.ue_id)
        if serving is not None:
            serving.register_ue(
                ue.ue_id, bearers, snr_db=self._ue_snr_hint.get(ue.ue_id, 10.0)
            )
        ue.complete_reattach()
        if self.trace is not None:
            self.trace.record(self.now, "core.attach_done", ue=ue.ue_id)
