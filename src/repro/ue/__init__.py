"""User equipment (UE) substrate.

Models the phones/devices of the paper's testbed: a modem with its own
signal-processing codec (downlink decode with UE-side HARQ combining),
RLC bearer endpoints, an uplink transmitter driven by grants broadcast in
downlink control, and the radio-link-failure (RLF) machinery whose 50 ms
timer and ~6.2 s reattach define the *baseline* outage when a vRAN fails
without Slingshot (§2.1, §8.1).
"""

from repro.ue.ue import UserEquipment, UeConfig, UeStats

__all__ = ["UserEquipment", "UeConfig", "UeStats"]
