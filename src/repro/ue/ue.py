"""The UE model.

A :class:`UserEquipment` is attached to one cell's air interface and:

* receives downlink control each slot (its synchronization heartbeat —
  the RLF timer resets on it) and downlink data TBs, which it decodes
  with a real codec including UE-side HARQ chase combining;
* transmits on uplink grants, keeping per-HARQ-process copies so that
  retransmission grants resend the same transport block;
* queues HARQ ACK/NACK feedback for downlink TBs and RLC status reports,
  piggybacking them on uplink transmissions (PUCCH-style control-only
  transmissions happen in uplink slots even without a data grant);
* runs the radio-link-failure state machine: if downlink control goes
  silent for ``rlf_timeout_ns`` (50 ms in the paper's setup), the UE
  declares RLF, detaches, and begins the full reattach procedure through
  the core network — the ~6.2 s outage that Slingshot eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.fronthaul.air import AirInterface, UeRadioPort
from repro.fronthaul.oran import UlGrant
from repro.l2.rlc import (
    RlcBearerConfig,
    RlcMode,
    RlcPdu,
    RlcReceiver,
    RlcStatus,
    RlcTransmitter,
)
from repro.phy.channel import ChannelRealization, UeChannelModel
from repro.phy.codec import PhyCodec
from repro.phy.numerology import SlotClock, SlotType, TddPattern
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.engine import SimClock, Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS, US


@dataclass
class UeConfig:
    """UE tunables."""

    #: Radio link failure timer (paper setup: 50 ms).
    rlf_timeout_ns: int = 50 * MS
    #: Downlink decoder iterations in the UE modem.
    decoder_iterations: int = 8
    #: Interval between UE-generated RLC status reports for DL bearers.
    status_interval_ns: int = 5 * MS
    #: Offset into a slot at which control-only uplink is staged.
    pucch_stage_offset_ns: int = 250 * US


@dataclass
class UeStats:
    dl_tbs_received: int = 0
    dl_crc_ok: int = 0
    dl_crc_fail: int = 0
    ul_transmissions: int = 0
    control_only_transmissions: int = 0
    rlf_events: int = 0
    reattach_completions: int = 0


class UserEquipment(Process):
    """One UE: modem, RLC endpoints, RLF state machine, app dispatch."""

    def __init__(
        self,
        sim: Simulator,
        ue_id: int,
        slot_clock: SlotClock,
        tdd: TddPattern,
        air: AirInterface,
        channel: UeChannelModel,
        rng: np.random.Generator,
        bearers: List[RlcBearerConfig],
        config: Optional[UeConfig] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"ue{ue_id}")
        self.ue_id = ue_id
        self.slot_clock = slot_clock
        self.tdd = tdd
        self.config = config or UeConfig()
        self.trace = trace
        self.bearer_configs = list(bearers)
        self.codec = PhyCodec(rng, decoder_iterations=self.config.decoder_iterations)
        self.stats = UeStats()
        self.attached = True
        #: Radio port registered on the air interface.
        self.port = UeRadioPort(ue_id=ue_id, channel=channel, listener=self)
        air.attach(self.port)
        #: UL transmitters and DL receivers per bearer (UE side).
        self.ul_tx: Dict[int, RlcTransmitter] = {}
        self.dl_rx: Dict[int, RlcReceiver] = {}
        self._build_bearers()
        #: HARQ feedback queued for the next uplink opportunity.
        self._pending_feedback: List[Tuple[int, int, int, bool]] = []
        #: RLC status reports queued for uplink.
        self._pending_ul_status: List[RlcStatus] = []
        #: Sent UL blocks per tb_id (for HARQ retransmission grants).
        self._sent_blocks: Dict[int, TransportBlock] = {}
        #: Slots already staged (avoid double-staging data + control).
        self._staged_slots: set = set()
        self._last_dl_control_ns = sim.now
        self._last_status_ns = sim.now
        #: The vRAN stack identity this UE's RRC context lives in.
        self._vran_instance_id: Optional[int] = None
        self._out_of_sync = False
        #: Called when RLF fires: callable(ue) — wired to the core network.
        self.on_rlf: Optional[Callable[["UserEquipment"], None]] = None
        #: Downlink SDU dispatch: callable(bearer_id, sdu).
        self.dl_sink: Optional[Callable[[int, Any], None]] = None
        self._schedule_tick()

    def _build_bearers(self) -> None:
        self.ul_tx = {b.bearer_id: RlcTransmitter(b) for b in self.bearer_configs}
        self.dl_rx = {
            b.bearer_id: RlcReceiver(b, now_fn=SimClock(self.sim))
            for b in self.bearer_configs
        }

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_uplink(self, bearer_id: int, sdu: Any, size_bytes: int) -> bool:
        """Queue one uplink SDU; False when detached or queue overflows."""
        if not self.attached:
            return False
        tx = self.ul_tx.get(bearer_id)
        if tx is None:
            return False
        return tx.enqueue(sdu, size_bytes)

    @property
    def uplink_backlog_bytes(self) -> int:
        """Bytes awaiting an uplink grant (drives the BSR).

        RLC status reports count too: they can only travel inside a
        granted transport block, so they must attract a grant.
        """
        data = sum(tx.backlog_bytes for tx in self.ul_tx.values())
        status = sum(s.wire_bytes for s in self._pending_ul_status)
        return data + status

    # ------------------------------------------------------------------
    # Air interface listener (UeAirListener protocol)
    # ------------------------------------------------------------------
    def on_dl_control(
        self, abs_slot: int, grants: List[UlGrant], vran_instance_id: int = 1
    ) -> None:
        if not self.attached:
            return
        if self._vran_instance_id is None:
            self._vran_instance_id = vran_instance_id
        elif vran_instance_id != self._vran_instance_id:
            # A *different* vRAN stack took over the cell: this UE's RRC
            # context does not exist there, so service cannot resume until
            # re-establishment. The UE stops treating control as sync and
            # lets its RLF timer expire (then reattaches through the core).
            self._out_of_sync = True
        if self._out_of_sync:
            return
        self._last_dl_control_ns = self.now
        my_grants = [g for g in grants if g.ue_id == self.ue_id]
        for grant in my_grants:
            self._transmit_on_grant(abs_slot, grant)

    def on_dl_data(
        self, abs_slot: int, block: TransportBlock, realization: ChannelRealization
    ) -> None:
        if not self.attached or block.ue_id != self.ue_id:
            return
        self.stats.dl_tbs_received += 1
        outcome = self.codec.decode_block(block, realization)
        self._pending_feedback.append(
            (self.ue_id, block.harq_process, block.tb_id, outcome.crc_ok)
        )
        if not outcome.crc_ok:
            self.stats.dl_crc_fail += 1
            return
        self.stats.dl_crc_ok += 1
        if outcome.data is None:
            return
        for item in outcome.data:
            self._consume_dl_item(item)

    def _consume_dl_item(self, item: Any) -> None:
        if isinstance(item, RlcStatus):
            tx = self.ul_tx.get(item.bearer_id)
            if tx is not None:
                tx.on_status(item)
            return
        if isinstance(item, RlcPdu):
            receiver = self.dl_rx.get(item.bearer_id)
            if receiver is None:
                return
            for sdu in receiver.on_pdu(item):
                if self.dl_sink is not None:
                    self.dl_sink(item.bearer_id, sdu)

    # ------------------------------------------------------------------
    # Uplink transmission
    # ------------------------------------------------------------------
    def _transmit_on_grant(self, abs_slot: int, grant: UlGrant) -> None:
        if grant.new_data:
            items: List[Any] = []
            used = 0
            capacity = grant.tb_bytes
            while self._pending_ul_status and used < capacity:
                status = self._pending_ul_status.pop(0)
                items.append(status)
                used += status.wire_bytes
            for tx in self.ul_tx.values():
                if used >= capacity:
                    break
                pulled = tx.pull(capacity - used)
                items.extend(pulled)
                used += sum(p.wire_bytes for p in pulled)
            block = TransportBlock(
                ue_id=self.ue_id,
                direction=LinkDirection.UPLINK,
                harq_process=grant.harq_process,
                modulation=grant.modulation,
                prbs=grant.prbs,
                data=items,
                size_bytes=max(used, 1),
                new_data=True,
                retx_index=0,
                slot=abs_slot,
                tb_id=grant.tb_id,
            )
            self._sent_blocks[grant.tb_id] = block
            if len(self._sent_blocks) > 64:
                oldest = sorted(self._sent_blocks)[: len(self._sent_blocks) - 64]
                for tb_id in oldest:
                    del self._sent_blocks[tb_id]
        else:
            original = self._sent_blocks.get(grant.tb_id)
            if original is None:
                # The original was never built (e.g. grant lost during a
                # blackout): transmit padding so the PHY sees *something*.
                original = TransportBlock(
                    ue_id=self.ue_id,
                    direction=LinkDirection.UPLINK,
                    harq_process=grant.harq_process,
                    modulation=grant.modulation,
                    prbs=grant.prbs,
                    data=[],
                    size_bytes=1,
                    slot=abs_slot,
                    tb_id=grant.tb_id,
                )
                self._sent_blocks[grant.tb_id] = original
            block = original.retransmission(abs_slot)
        feedback = self._take_feedback()
        self.port.stage_uplink(
            abs_slot, block, feedback, bsr_bytes=self.uplink_backlog_bytes
        )
        self._staged_slots.add(abs_slot)
        self.stats.ul_transmissions += 1

    def _take_feedback(self) -> List[Tuple[int, int, int, bool]]:
        feedback = self._pending_feedback
        self._pending_feedback = []
        return feedback

    # ------------------------------------------------------------------
    # Per-slot tick: PUCCH staging, status generation, RLF supervision
    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        next_slot = self.slot_clock.slot_at(self.now) + 1
        self.sim.schedule_periodic(
            self.slot_clock.slot_duration_ns,
            self._tick,
            first_at=self.slot_clock.slot_start(next_slot)
            + self.config.pucch_stage_offset_ns,
            label=f"{self.name}.tick",
        )

    def _tick(self) -> None:
        # Fires pucch_stage_offset_ns into each slot.
        abs_slot = self.slot_clock.slot_at(self.now)
        self._staged_slots = {s for s in self._staged_slots if s >= abs_slot - 4}
        if not self.attached:
            return
        # Radio link supervision.
        if self.now - self._last_dl_control_ns > self.config.rlf_timeout_ns:
            self._radio_link_failure()
            return
        # Periodic RLC status generation for DL AM bearers.
        if self.now - self._last_status_ns >= self.config.status_interval_ns:
            self._last_status_ns = self.now
            for bearer_id, receiver in self.dl_rx.items():
                if receiver.config.mode is RlcMode.AM and receiver.status_due:
                    self._pending_ul_status.append(receiver.build_status())
        # Control-only (PUCCH) transmission in uplink slots without a
        # grant: HARQ feedback, RLC status prompts, and scheduling
        # requests (BSR) all ride here.
        backlog = self.uplink_backlog_bytes
        if (
            self.tdd.slot_type(abs_slot) is SlotType.UPLINK
            and abs_slot not in self._staged_slots
            and (self._pending_feedback or self._pending_ul_status or backlog)
        ):
            self.port.stage_uplink(
                abs_slot, None, self._take_feedback(), bsr_bytes=backlog
            )
            self._staged_slots.add(abs_slot)
            self.stats.control_only_transmissions += 1

    # ------------------------------------------------------------------
    # RLF / reattach
    # ------------------------------------------------------------------
    def _radio_link_failure(self) -> None:
        self.attached = False
        self.port.attached = False
        self.stats.rlf_events += 1
        # All radio-layer state is lost.
        self._build_bearers()
        self._pending_feedback.clear()
        self._pending_ul_status.clear()
        self._sent_blocks.clear()
        self.codec.harq.discard_all()
        if self.trace is not None:
            self.trace.record(self.now, "ue.rlf", ue=self.ue_id)
        if self.on_rlf is not None:
            self.on_rlf(self)

    def complete_reattach(self) -> None:
        """Called by the core once the attach procedure finishes."""
        self.attached = True
        self.port.attached = True
        self._last_dl_control_ns = self.now
        # A fresh RRC context is established with whichever stack now
        # serves the cell.
        self._vran_instance_id = None
        self._out_of_sync = False
        self.stats.reattach_completions += 1
        if self.trace is not None:
            self.trace.record(self.now, "ue.reattached", ue=self.ue_id)
