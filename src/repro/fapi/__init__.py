"""FAPI — the L2/PHY "functional API" (Small Cell Forum 5G FAPI).

FAPI is the narrow-waist interface between the MAC (L2) and the PHY that
Slingshot's Orion middlebox interposes on (paper §6). This package
provides:

* the message set (:mod:`repro.fapi.messages`): per-slot UL/DL config
  ("TTI") requests, data requests/indications, CRC and UCI indications,
  and cell configuration — including the **null** UL/DL config requests
  Orion fabricates to keep a secondary PHY alive,
* a binary codec (:mod:`repro.fapi.codec`) used by the inter-Orion UDP
  transport,
* channel models (:mod:`repro.fapi.channels`): the shared-memory channel
  used when L2/Orion/PHY are co-located, and the lean stateless UDP
  transport Orion uses across the datacenter network (§6.1).
"""

from repro.fapi.messages import (
    FapiMessage,
    MessageType,
    ConfigRequest,
    StartRequest,
    StopRequest,
    SlotIndication,
    UlTtiRequest,
    DlTtiRequest,
    PuschPdu,
    PdschPdu,
    TxDataRequest,
    RxDataIndication,
    CrcIndication,
    CrcResult,
    UciIndication,
    HarqFeedback,
    ErrorIndication,
    null_ul_tti,
    null_dl_tti,
    is_null_request,
)
from repro.fapi.codec import encode_message, decode_message, encoded_size
from repro.fapi.channels import ShmChannel, FapiEndpoint

__all__ = [
    "FapiMessage",
    "MessageType",
    "ConfigRequest",
    "StartRequest",
    "StopRequest",
    "SlotIndication",
    "UlTtiRequest",
    "DlTtiRequest",
    "PuschPdu",
    "PdschPdu",
    "TxDataRequest",
    "RxDataIndication",
    "CrcIndication",
    "CrcResult",
    "UciIndication",
    "HarqFeedback",
    "ErrorIndication",
    "null_ul_tti",
    "null_dl_tti",
    "is_null_request",
    "encode_message",
    "decode_message",
    "encoded_size",
    "ShmChannel",
    "FapiEndpoint",
]
