"""FAPI channel models.

In tightly-coupled deployments the L2 and PHY exchange FAPI messages over
shared memory (SHM); Slingshot's Orion interposes on that channel and can
extend it across the datacenter with a lean UDP transport. The SHM model
here is a latency-stamped in-process queue: ~1 µs delivery, preserving
message order.

Orion's design is agnostic to the physical channel (paper §6.1): anything
implementing :class:`FapiEndpoint` can peer over a :class:`ShmChannel`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol

from repro.fapi.messages import FapiMessage
from repro.sim.engine import Simulator
from repro.sim.units import US


class FapiEndpoint(Protocol):
    """Anything that consumes FAPI messages from a channel."""

    def receive_fapi(self, message: FapiMessage, channel: "ShmChannel") -> None:
        """Handle one delivered FAPI message."""


class ShmChannel:
    """One direction of a shared-memory FAPI channel.

    Delivery latency models the cost of the ring-buffer handoff between
    two pinned processes (around a microsecond); order is preserved.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: Optional[FapiEndpoint] = None,
        latency_ns: int = 1 * US,
        name: str = "shm",
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.latency_ns = latency_ns
        self.name = name
        self.messages_sent = 0
        self._pending: Deque[FapiMessage] = deque()

    def connect(self, endpoint: FapiEndpoint) -> None:
        """Attach the consumer (two-phase wiring)."""
        self.endpoint = endpoint

    def send(self, message: FapiMessage) -> None:
        """Deliver a message after the channel latency.

        Messages wait in an internal FIFO and each delivery event pops the
        head, so the ring buffer's ordering holds even when two deliveries
        share a timestamp and the engine permutes tie order (the
        ``tie_shuffle_seed`` race-detector mode).
        """
        if self.endpoint is None:
            raise RuntimeError(f"SHM channel {self.name} has no endpoint")
        self.messages_sent += 1
        self._pending.append(message)
        self.sim.schedule(self.latency_ns, self._deliver, label=f"{self.name}.deliver")

    def _deliver(self) -> None:
        assert self.endpoint is not None
        self.endpoint.receive_fapi(self._pending.popleft(), channel=self)


class DuplexShmChannel:
    """A pair of SHM channels wiring two FAPI endpoints together."""

    def __init__(self, sim: Simulator, latency_ns: int = 1 * US, name: str = "shm") -> None:
        self.a_to_b = ShmChannel(sim, None, latency_ns, f"{name}.a2b")
        self.b_to_a = ShmChannel(sim, None, latency_ns, f"{name}.b2a")

    def connect(self, a: FapiEndpoint, b: FapiEndpoint) -> None:
        self.a_to_b.connect(b)
        self.b_to_a.connect(a)
