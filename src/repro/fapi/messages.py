"""FAPI message set.

Message shapes follow the Small Cell Forum 5G FAPI PHY API at the level
of detail the simulation needs: per-slot UL_TTI/DL_TTI work requests with
per-UE PDUs, TX data requests, and the uplink indications (RX data, CRC,
UCI) the PHY returns.

The FAPI contract that matters most to Slingshot (paper §6.2): a running
PHY **must** receive valid UL_TTI and DL_TTI requests in *every* slot —
FlexRAN crashes otherwise. A request whose PDU list is empty ("null
FAPI") is a valid input that schedules no signal-processing work, which
is how Orion keeps the hot-standby secondary PHY alive at negligible CPU
cost.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

from repro.phy.modulation import Modulation


class MessageType(enum.IntEnum):
    """FAPI message type ids (values follow the SCF numbering style)."""

    CONFIG_REQUEST = 0x02
    START_REQUEST = 0x04
    STOP_REQUEST = 0x05
    SLOT_INDICATION = 0x82
    DL_TTI_REQUEST = 0x80
    UL_TTI_REQUEST = 0x81
    TX_DATA_REQUEST = 0x84
    RX_DATA_INDICATION = 0x85
    CRC_INDICATION = 0x86
    UCI_INDICATION = 0x87
    ERROR_INDICATION = 0x03


_message_ids = itertools.count(1)


@dataclass
class FapiMessage:
    """Common header: every FAPI message names its cell and slot."""

    #: Cell (RU) the message concerns; one PHY process can serve many.
    cell_id: int = 0
    #: Absolute slot counter (the simulation's TTI index).
    slot: int = -1
    message_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def message_type(self) -> MessageType:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Control-path messages
# ----------------------------------------------------------------------
@dataclass
class ConfigRequest(FapiMessage):
    """Cell/carrier configuration — the 'initialization request' that the
    L2 sends when onboarding an RU, which L2-side Orion intercepts and
    duplicates toward the chosen primary and secondary PHYs (§6.3)."""

    num_prbs: int = 273
    numerology_mu: int = 1
    tdd_pattern: str = "DDDSU"
    ru_id: int = 0

    @property
    def message_type(self) -> MessageType:
        return MessageType.CONFIG_REQUEST


@dataclass
class StartRequest(FapiMessage):
    """Start per-slot operation for a configured cell."""

    @property
    def message_type(self) -> MessageType:
        return MessageType.START_REQUEST


@dataclass
class StopRequest(FapiMessage):
    """Stop per-slot operation (used at teardown)."""

    @property
    def message_type(self) -> MessageType:
        return MessageType.STOP_REQUEST


@dataclass
class SlotIndication(FapiMessage):
    """PHY -> L2 per-slot tick announcing readiness for slot ``slot``."""

    @property
    def message_type(self) -> MessageType:
        return MessageType.SLOT_INDICATION


@dataclass
class ErrorIndication(FapiMessage):
    """PHY -> L2 error report (e.g. missing TTI request)."""

    error_code: int = 0
    detail: str = ""

    @property
    def message_type(self) -> MessageType:
        return MessageType.ERROR_INDICATION


# ----------------------------------------------------------------------
# Per-slot work requests (the TTI requests)
# ----------------------------------------------------------------------
@dataclass
class PuschPdu:
    """One UE's uplink shared-channel allocation in a UL_TTI request."""

    ue_id: int
    harq_process: int
    modulation: Modulation
    prbs: int
    #: New-data indicator: False = HARQ retransmission expected.
    new_data: bool
    #: TB id (RNTI+HARQ bookkeeping stand-in; stable across retx).
    tb_id: int
    #: Expected payload size in bytes (sizing/accounting).
    tb_bytes: int = 0
    retx_index: int = 0


@dataclass
class PdschPdu:
    """One UE's downlink shared-channel allocation in a DL_TTI request."""

    ue_id: int
    harq_process: int
    modulation: Modulation
    prbs: int
    new_data: bool
    tb_id: int
    tb_bytes: int = 0
    retx_index: int = 0


@dataclass
class UlTtiRequest(FapiMessage):
    """UL_CONFIG: the uplink signal-processing work for one slot.

    An empty ``pdus`` list is the *null* request (valid, zero work).
    """

    pdus: List[PuschPdu] = field(default_factory=list)

    @property
    def message_type(self) -> MessageType:
        return MessageType.UL_TTI_REQUEST

    @property
    def is_null(self) -> bool:
        return not self.pdus


@dataclass
class DlTtiRequest(FapiMessage):
    """DL_CONFIG: the downlink signal-processing work for one slot."""

    pdus: List[PdschPdu] = field(default_factory=list)

    @property
    def message_type(self) -> MessageType:
        return MessageType.DL_TTI_REQUEST

    @property
    def is_null(self) -> bool:
        return not self.pdus


@dataclass
class TxDataRequest(FapiMessage):
    """MAC payloads for the PDSCH PDUs of a DL_TTI request.

    Payloads are typed objects on the simulation's hot path (RLC PDU
    lists) and raw bytes when round-tripped through the binary codec;
    wire sizing uses the PDU's declared ``tb_bytes``.
    """

    #: (tb_id, payload) pairs matching the slot's PdschPdus.
    payloads: List[Tuple[int, Any]] = field(default_factory=list)

    @property
    def message_type(self) -> MessageType:
        return MessageType.TX_DATA_REQUEST


# ----------------------------------------------------------------------
# Uplink indications (PHY -> L2 responses)
# ----------------------------------------------------------------------
@dataclass
class RxDataIndication(FapiMessage):
    """Successfully decoded uplink payloads for one slot."""

    #: (ue_id, harq_process, tb_id, payload) per decoded TB.
    payloads: List[Tuple[int, int, int, Any]] = field(default_factory=list)

    @property
    def message_type(self) -> MessageType:
        return MessageType.RX_DATA_INDICATION


@dataclass(frozen=True)
class CrcResult:
    """Decode outcome for one uplink TB."""

    ue_id: int
    harq_process: int
    tb_id: int
    crc_ok: bool
    measured_snr_db: float
    retx_index: int = 0


@dataclass
class CrcIndication(FapiMessage):
    """Per-TB CRC pass/fail results for one uplink slot.

    The L2 uses these to drive HARQ retransmissions and, via the SNR
    field, link adaptation.
    """

    results: List[CrcResult] = field(default_factory=list)

    @property
    def message_type(self) -> MessageType:
        return MessageType.CRC_INDICATION


@dataclass(frozen=True)
class HarqFeedback:
    """One UE's HARQ ACK/NACK for a downlink TB (carried on uplink)."""

    ue_id: int
    harq_process: int
    tb_id: int
    ack: bool


@dataclass
class UciIndication(FapiMessage):
    """Uplink control information decoded by the PHY: DL HARQ feedback
    plus buffer status / scheduling requests."""

    feedback: List[HarqFeedback] = field(default_factory=list)
    #: (ue_id, pending uplink bytes) buffer status reports.
    bsr_reports: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def message_type(self) -> MessageType:
        return MessageType.UCI_INDICATION


AnyFapiMessage = Union[
    ConfigRequest,
    StartRequest,
    StopRequest,
    SlotIndication,
    ErrorIndication,
    UlTtiRequest,
    DlTtiRequest,
    TxDataRequest,
    RxDataIndication,
    CrcIndication,
    UciIndication,
]


# ----------------------------------------------------------------------
# Null FAPI helpers (the heart of §6.2)
# ----------------------------------------------------------------------
def null_ul_tti(cell_id: int, slot: int) -> UlTtiRequest:
    """A valid UL_TTI request scheduling no work (keeps a PHY alive)."""
    return UlTtiRequest(cell_id=cell_id, slot=slot, pdus=[])


def null_dl_tti(cell_id: int, slot: int) -> DlTtiRequest:
    """A valid DL_TTI request scheduling no work."""
    return DlTtiRequest(cell_id=cell_id, slot=slot, pdus=[])


def is_null_request(message: FapiMessage) -> bool:
    """True for UL/DL TTI requests with empty PDU lists."""
    if isinstance(message, (UlTtiRequest, DlTtiRequest)):
        return message.is_null
    return False
