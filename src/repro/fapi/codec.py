"""Binary FAPI codec.

The inter-Orion transport carries FAPI messages over UDP across the edge
datacenter (paper §6.1), so messages need a wire format. The codec here
is a compact struct-based TLV encoding: a fixed header (type, cell, slot)
followed by message-specific fields and repeated PDU records.

Round-tripping through the codec is property-tested; the encoded size
feeds the link-level serialization-delay model, which is how the "L2-PHY
traffic is ~100 Mbps vs 4.5 Gbps fronthaul" comparison (§5) shows up.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.fapi import messages as m
from repro.phy.modulation import Modulation

#: Header: magic (2), type (1), cell_id (2), slot (8 signed), body length (4).
_HEADER = struct.Struct(">HBHqI")
_MAGIC = 0x5FA9

_PDU = struct.Struct(">HBBHBqIB")  # ue, harq, modulation, prbs, ndi, tb_id, bytes, retx
_CRC = struct.Struct(">HBqBfB")  # ue, harq, tb_id, ok, snr, retx
_UCI = struct.Struct(">HBqB")  # ue, harq, tb_id, ack


class FapiCodecError(ValueError):
    """Raised for malformed wire data."""


def _encode_pdus(pdus) -> bytes:
    parts = [struct.pack(">H", len(pdus))]
    for pdu in pdus:
        parts.append(
            _PDU.pack(
                pdu.ue_id,
                pdu.harq_process,
                int(pdu.modulation),
                pdu.prbs,
                1 if pdu.new_data else 0,
                pdu.tb_id,
                pdu.tb_bytes,
                pdu.retx_index,
            )
        )
    return b"".join(parts)


def _decode_pdus(data: bytes, offset: int, cls) -> Tuple[List, int]:
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    pdus = []
    for _ in range(count):
        ue, harq, mod, prbs, ndi, tb_id, tb_bytes, retx = _PDU.unpack_from(data, offset)
        offset += _PDU.size
        pdus.append(
            cls(
                ue_id=ue,
                harq_process=harq,
                modulation=Modulation(mod),
                prbs=prbs,
                new_data=bool(ndi),
                tb_id=tb_id,
                tb_bytes=tb_bytes,
                retx_index=retx,
            )
        )
    return pdus, offset


def _encode_blob_list(items: List[Tuple[int, bytes]]) -> bytes:
    parts = [struct.pack(">H", len(items))]
    for tb_id, payload in items:
        parts.append(struct.pack(">qI", tb_id, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _decode_blob_list(data: bytes, offset: int) -> Tuple[List[Tuple[int, bytes]], int]:
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    items = []
    for _ in range(count):
        tb_id, length = struct.unpack_from(">qI", data, offset)
        offset += 12
        items.append((tb_id, bytes(data[offset : offset + length])))
        offset += length
    return items, offset


def _encode_body(message: m.FapiMessage) -> bytes:
    if isinstance(message, m.ConfigRequest):
        pattern = message.tdd_pattern.encode("ascii")
        return struct.pack(
            ">HBH", message.num_prbs, message.numerology_mu, message.ru_id
        ) + struct.pack(">B", len(pattern)) + pattern
    if isinstance(message, (m.StartRequest, m.StopRequest, m.SlotIndication)):
        return b""
    if isinstance(message, m.ErrorIndication):
        detail = message.detail.encode("utf-8")
        return struct.pack(">HH", message.error_code, len(detail)) + detail
    if isinstance(message, m.UlTtiRequest):
        return _encode_pdus(message.pdus)
    if isinstance(message, m.DlTtiRequest):
        return _encode_pdus(message.pdus)
    if isinstance(message, m.TxDataRequest):
        return _encode_blob_list(message.payloads)
    if isinstance(message, m.RxDataIndication):
        parts = [struct.pack(">H", len(message.payloads))]
        for ue, harq, tb_id, payload in message.payloads:
            parts.append(struct.pack(">HBqI", ue, harq, tb_id, len(payload)))
            parts.append(payload)
        return b"".join(parts)
    if isinstance(message, m.CrcIndication):
        parts = [struct.pack(">H", len(message.results))]
        for result in message.results:
            parts.append(
                _CRC.pack(
                    result.ue_id,
                    result.harq_process,
                    result.tb_id,
                    1 if result.crc_ok else 0,
                    result.measured_snr_db,
                    result.retx_index,
                )
            )
        return b"".join(parts)
    if isinstance(message, m.UciIndication):
        parts = [struct.pack(">H", len(message.feedback))]
        for fb in message.feedback:
            parts.append(_UCI.pack(fb.ue_id, fb.harq_process, fb.tb_id, 1 if fb.ack else 0))
        parts.append(struct.pack(">H", len(message.bsr_reports)))
        for ue_id, pending in message.bsr_reports:
            parts.append(struct.pack(">HI", ue_id, pending))
        return b"".join(parts)
    raise FapiCodecError(f"cannot encode message type {type(message).__name__}")


def encode_message(message: m.FapiMessage) -> bytes:
    """Serialize a FAPI message to its wire representation."""
    body = _encode_body(message)
    header = _HEADER.pack(
        _MAGIC, int(message.message_type), message.cell_id, message.slot, len(body)
    )
    return header + body


def encoded_size(message: m.FapiMessage) -> int:
    """Wire size in bytes without materializing the buffer twice."""
    return len(encode_message(message))


def wire_size(message: m.FapiMessage) -> int:
    """Analytic wire size in bytes for link accounting.

    Unlike :func:`encoded_size`, this never serializes the message, so it
    also works for data messages whose hot-path payloads are typed
    objects; declared TB sizes stand in for blob lengths.
    """
    size = _HEADER.size
    if isinstance(message, m.ConfigRequest):
        return size + 6 + len(message.tdd_pattern)
    if isinstance(message, (m.UlTtiRequest, m.DlTtiRequest)):
        return size + 2 + _PDU.size * len(message.pdus)
    if isinstance(message, m.TxDataRequest):
        size += 2
        for tb_id, payload in message.payloads:
            declared = len(payload) if isinstance(payload, (bytes, bytearray)) else 0
            size += 12 + declared
        return size
    if isinstance(message, m.RxDataIndication):
        size += 2
        for _ue, _harq, _tb, payload in message.payloads:
            declared = len(payload) if isinstance(payload, (bytes, bytearray)) else 0
            size += 15 + declared
        return size
    if isinstance(message, m.CrcIndication):
        return size + 2 + _CRC.size * len(message.results)
    if isinstance(message, m.UciIndication):
        return size + 4 + _UCI.size * len(message.feedback) + 6 * len(message.bsr_reports)
    if isinstance(message, m.ErrorIndication):
        return size + 4 + len(message.detail.encode("utf-8"))
    return size


def data_message_wire_size(message: m.FapiMessage, payload_bytes: int) -> int:
    """Wire size for a data message whose payloads total ``payload_bytes``."""
    return wire_size(message) + payload_bytes


def decode_message(data: bytes) -> m.AnyFapiMessage:
    """Parse wire bytes back into a typed FAPI message."""
    if len(data) < _HEADER.size:
        raise FapiCodecError("truncated FAPI header")
    magic, mtype, cell_id, slot, body_len = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise FapiCodecError(f"bad magic {magic:#x}")
    body = data[_HEADER.size : _HEADER.size + body_len]
    if len(body) != body_len:
        raise FapiCodecError("truncated FAPI body")
    mtype = m.MessageType(mtype)
    if mtype == m.MessageType.CONFIG_REQUEST:
        num_prbs, mu, ru_id = struct.unpack_from(">HBH", body, 0)
        (plen,) = struct.unpack_from(">B", body, 5)
        pattern = body[6 : 6 + plen].decode("ascii")
        return m.ConfigRequest(
            cell_id=cell_id, slot=slot, num_prbs=num_prbs,
            numerology_mu=mu, tdd_pattern=pattern, ru_id=ru_id,
        )
    if mtype == m.MessageType.START_REQUEST:
        return m.StartRequest(cell_id=cell_id, slot=slot)
    if mtype == m.MessageType.STOP_REQUEST:
        return m.StopRequest(cell_id=cell_id, slot=slot)
    if mtype == m.MessageType.SLOT_INDICATION:
        return m.SlotIndication(cell_id=cell_id, slot=slot)
    if mtype == m.MessageType.ERROR_INDICATION:
        code, dlen = struct.unpack_from(">HH", body, 0)
        detail = body[4 : 4 + dlen].decode("utf-8")
        return m.ErrorIndication(cell_id=cell_id, slot=slot, error_code=code, detail=detail)
    if mtype == m.MessageType.UL_TTI_REQUEST:
        pdus, _ = _decode_pdus(body, 0, m.PuschPdu)
        return m.UlTtiRequest(cell_id=cell_id, slot=slot, pdus=pdus)
    if mtype == m.MessageType.DL_TTI_REQUEST:
        pdus, _ = _decode_pdus(body, 0, m.PdschPdu)
        return m.DlTtiRequest(cell_id=cell_id, slot=slot, pdus=pdus)
    if mtype == m.MessageType.TX_DATA_REQUEST:
        payloads, _ = _decode_blob_list(body, 0)
        return m.TxDataRequest(cell_id=cell_id, slot=slot, payloads=payloads)
    if mtype == m.MessageType.RX_DATA_INDICATION:
        (count,) = struct.unpack_from(">H", body, 0)
        offset = 2
        payloads = []
        for _ in range(count):
            ue, harq, tb_id, length = struct.unpack_from(">HBqI", body, offset)
            offset += 15
            payloads.append((ue, harq, tb_id, bytes(body[offset : offset + length])))
            offset += length
        return m.RxDataIndication(cell_id=cell_id, slot=slot, payloads=payloads)
    if mtype == m.MessageType.CRC_INDICATION:
        (count,) = struct.unpack_from(">H", body, 0)
        offset = 2
        results = []
        for _ in range(count):
            ue, harq, tb_id, ok, snr, retx = _CRC.unpack_from(body, offset)
            offset += _CRC.size
            results.append(
                m.CrcResult(
                    ue_id=ue, harq_process=harq, tb_id=tb_id,
                    crc_ok=bool(ok), measured_snr_db=snr, retx_index=retx,
                )
            )
        return m.CrcIndication(cell_id=cell_id, slot=slot, results=results)
    if mtype == m.MessageType.UCI_INDICATION:
        (count,) = struct.unpack_from(">H", body, 0)
        offset = 2
        feedback = []
        for _ in range(count):
            ue, harq, tb_id, ack = _UCI.unpack_from(body, offset)
            offset += _UCI.size
            feedback.append(
                m.HarqFeedback(ue_id=ue, harq_process=harq, tb_id=tb_id, ack=bool(ack))
            )
        (bsr_count,) = struct.unpack_from(">H", body, offset)
        offset += 2
        bsr_reports = []
        for _ in range(bsr_count):
            ue, pending = struct.unpack_from(">HI", body, offset)
            offset += 6
            bsr_reports.append((ue, pending))
        return m.UciIndication(
            cell_id=cell_id, slot=slot, feedback=feedback, bsr_reports=bsr_reports
        )
    raise FapiCodecError(f"unknown message type {mtype}")
