"""Binary FAPI codec.

The inter-Orion transport carries FAPI messages over UDP across the edge
datacenter (paper §6.1), so messages need a wire format. The codec here
is a compact struct-based TLV encoding: a fixed header (type, cell, slot)
followed by message-specific fields and repeated PDU records.

Round-tripping through the codec is property-tested; the encoded size
feeds the link-level serialization-delay model, which is how the "L2-PHY
traffic is ~100 Mbps vs 4.5 Gbps fronthaul" comparison (§5) shows up.

Two implementations coexist deliberately:

* the **fast path** (:func:`encode_message` / :func:`decode_message`):
  type-keyed dispatch tables instead of ``isinstance`` chains, positional
  PDU construction, and ``__new__``-based message construction that skips
  the per-message keyword-dict round-trip through dataclass ``__init__``;
* the **reference path** (:func:`encode_message_reference` /
  :func:`decode_message_reference`): the original straight-line chains,
  kept as the normative definition of the wire format.

``tests/test_perf_fuzz.py`` drives ~1k randomized messages through both
and asserts byte-identity, so the fast path can never drift from the
reference.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Tuple, Type

from repro.fapi import messages as m
from repro.phy.modulation import Modulation

#: Header: magic (2), type (1), cell_id (2), slot (8 signed), body length (4).
_HEADER = struct.Struct(">HBHqI")
_MAGIC = 0x5FA9

_PDU = struct.Struct(">HBBHBqIB")  # ue, harq, modulation, prbs, ndi, tb_id, bytes, retx
_CRC = struct.Struct(">HBqBfB")  # ue, harq, tb_id, ok, snr, retx
_UCI = struct.Struct(">HBqB")  # ue, harq, tb_id, ack

_COUNT = struct.Struct(">H")

#: int -> Modulation without the Enum.__call__ overhead on the PDU path.
_MODULATION_BY_VALUE: Dict[int, Modulation] = {int(mod): mod for mod in Modulation}


class FapiCodecError(ValueError):
    """Raised for malformed wire data."""


def _encode_pdus(pdus) -> bytes:
    pack = _PDU.pack
    parts = [_COUNT.pack(len(pdus))]
    for pdu in pdus:
        parts.append(
            pack(
                pdu.ue_id,
                pdu.harq_process,
                int(pdu.modulation),
                pdu.prbs,
                1 if pdu.new_data else 0,
                pdu.tb_id,
                pdu.tb_bytes,
                pdu.retx_index,
            )
        )
    return b"".join(parts)


def _decode_pdus(data: bytes, offset: int, cls) -> Tuple[List, int]:
    (count,) = _COUNT.unpack_from(data, offset)
    offset += 2
    pdus = []
    unpack_from = _PDU.unpack_from
    size = _PDU.size
    modulations = _MODULATION_BY_VALUE
    for _ in range(count):
        ue, harq, mod, prbs, ndi, tb_id, tb_bytes, retx = unpack_from(data, offset)
        offset += size
        # Positional construction: PDU field order is part of the class
        # contract (ue_id, harq_process, modulation, prbs, new_data,
        # tb_id, tb_bytes, retx_index).
        pdus.append(
            cls(ue, harq, modulations[mod], prbs, ndi == 1, tb_id, tb_bytes, retx)
        )
    return pdus, offset


def _decode_pdus_reference(data: bytes, offset: int, cls) -> Tuple[List, int]:
    """Keyword-constructed PDU decode; normative counterpart of _decode_pdus."""
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    pdus = []
    for _ in range(count):
        ue, harq, mod, prbs, ndi, tb_id, tb_bytes, retx = _PDU.unpack_from(data, offset)
        offset += _PDU.size
        pdus.append(
            cls(
                ue_id=ue,
                harq_process=harq,
                modulation=Modulation(mod),
                prbs=prbs,
                new_data=bool(ndi),
                tb_id=tb_id,
                tb_bytes=tb_bytes,
                retx_index=retx,
            )
        )
    return pdus, offset


def _encode_blob_list(items: List[Tuple[int, bytes]]) -> bytes:
    parts = [_COUNT.pack(len(items))]
    for tb_id, payload in items:
        parts.append(struct.pack(">qI", tb_id, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _decode_blob_list(data: bytes, offset: int) -> Tuple[List[Tuple[int, bytes]], int]:
    (count,) = _COUNT.unpack_from(data, offset)
    offset += 2
    items = []
    for _ in range(count):
        tb_id, length = struct.unpack_from(">qI", data, offset)
        offset += 12
        items.append((tb_id, bytes(data[offset : offset + length])))
        offset += length
    return items, offset


# ----------------------------------------------------------------------
# Body encoders (shared by the fast dispatch table and the reference path)
# ----------------------------------------------------------------------
def _encode_config(message: "m.ConfigRequest") -> bytes:
    pattern = message.tdd_pattern.encode("ascii")
    return struct.pack(
        ">HBH", message.num_prbs, message.numerology_mu, message.ru_id
    ) + struct.pack(">B", len(pattern)) + pattern


def _encode_empty(message: m.FapiMessage) -> bytes:
    return b""


def _encode_error(message: "m.ErrorIndication") -> bytes:
    detail = message.detail.encode("utf-8")
    return struct.pack(">HH", message.error_code, len(detail)) + detail


def _encode_tti(message) -> bytes:
    return _encode_pdus(message.pdus)


def _encode_tx_data(message: "m.TxDataRequest") -> bytes:
    return _encode_blob_list(message.payloads)


def _encode_rx_data(message: "m.RxDataIndication") -> bytes:
    parts = [_COUNT.pack(len(message.payloads))]
    for ue, harq, tb_id, payload in message.payloads:
        parts.append(struct.pack(">HBqI", ue, harq, tb_id, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _encode_crc(message: "m.CrcIndication") -> bytes:
    pack = _CRC.pack
    parts = [_COUNT.pack(len(message.results))]
    for result in message.results:
        parts.append(
            pack(
                result.ue_id,
                result.harq_process,
                result.tb_id,
                1 if result.crc_ok else 0,
                result.measured_snr_db,
                result.retx_index,
            )
        )
    return b"".join(parts)


def _encode_uci(message: "m.UciIndication") -> bytes:
    pack = _UCI.pack
    parts = [_COUNT.pack(len(message.feedback))]
    for fb in message.feedback:
        parts.append(pack(fb.ue_id, fb.harq_process, fb.tb_id, 1 if fb.ack else 0))
    parts.append(_COUNT.pack(len(message.bsr_reports)))
    for ue_id, pending in message.bsr_reports:
        parts.append(struct.pack(">HI", ue_id, pending))
    return b"".join(parts)


#: Fast-path dispatch: concrete message type -> (wire type id, body encoder).
_BODY_ENCODERS: Dict[Type[m.FapiMessage], Tuple[int, Callable[..., bytes]]] = {
    m.ConfigRequest: (int(m.MessageType.CONFIG_REQUEST), _encode_config),
    m.StartRequest: (int(m.MessageType.START_REQUEST), _encode_empty),
    m.StopRequest: (int(m.MessageType.STOP_REQUEST), _encode_empty),
    m.SlotIndication: (int(m.MessageType.SLOT_INDICATION), _encode_empty),
    m.ErrorIndication: (int(m.MessageType.ERROR_INDICATION), _encode_error),
    m.UlTtiRequest: (int(m.MessageType.UL_TTI_REQUEST), _encode_tti),
    m.DlTtiRequest: (int(m.MessageType.DL_TTI_REQUEST), _encode_tti),
    m.TxDataRequest: (int(m.MessageType.TX_DATA_REQUEST), _encode_tx_data),
    m.RxDataIndication: (int(m.MessageType.RX_DATA_INDICATION), _encode_rx_data),
    m.CrcIndication: (int(m.MessageType.CRC_INDICATION), _encode_crc),
    m.UciIndication: (int(m.MessageType.UCI_INDICATION), _encode_uci),
}


def encode_message(message: m.FapiMessage) -> bytes:
    """Serialize a FAPI message to its wire representation (fast path)."""
    entry = _BODY_ENCODERS.get(type(message))
    if entry is None:
        # Subclass or unknown type: fall back to the reference chain.
        return encode_message_reference(message)
    mtype, encode_body = entry
    body = encode_body(message)
    return (
        _HEADER.pack(_MAGIC, mtype, message.cell_id, message.slot, len(body)) + body
    )


def _encode_body_reference(message: m.FapiMessage) -> bytes:
    if isinstance(message, m.ConfigRequest):
        return _encode_config(message)
    if isinstance(message, (m.StartRequest, m.StopRequest, m.SlotIndication)):
        return b""
    if isinstance(message, m.ErrorIndication):
        return _encode_error(message)
    if isinstance(message, m.UlTtiRequest):
        return _encode_pdus(message.pdus)
    if isinstance(message, m.DlTtiRequest):
        return _encode_pdus(message.pdus)
    if isinstance(message, m.TxDataRequest):
        return _encode_blob_list(message.payloads)
    if isinstance(message, m.RxDataIndication):
        return _encode_rx_data(message)
    if isinstance(message, m.CrcIndication):
        return _encode_crc(message)
    if isinstance(message, m.UciIndication):
        return _encode_uci(message)
    raise FapiCodecError(f"cannot encode message type {type(message).__name__}")


def encode_message_reference(message: m.FapiMessage) -> bytes:
    """Reference (straight-line) encoder; normative for the wire format."""
    body = _encode_body_reference(message)
    header = _HEADER.pack(
        _MAGIC, int(message.message_type), message.cell_id, message.slot, len(body)
    )
    return header + body


def encoded_size(message: m.FapiMessage) -> int:
    """Wire size in bytes without materializing the buffer twice."""
    return len(encode_message(message))


def _wire_size_config(message, size: int) -> int:
    return size + 6 + len(message.tdd_pattern)


def _wire_size_tti(message, size: int) -> int:
    return size + 2 + _PDU.size * len(message.pdus)


def _wire_size_tx_data(message, size: int) -> int:
    size += 2
    for tb_id, payload in message.payloads:
        declared = len(payload) if isinstance(payload, (bytes, bytearray)) else 0
        size += 12 + declared
    return size


def _wire_size_rx_data(message, size: int) -> int:
    size += 2
    for _ue, _harq, _tb, payload in message.payloads:
        declared = len(payload) if isinstance(payload, (bytes, bytearray)) else 0
        size += 15 + declared
    return size


def _wire_size_crc(message, size: int) -> int:
    return size + 2 + _CRC.size * len(message.results)


def _wire_size_uci(message, size: int) -> int:
    return size + 4 + _UCI.size * len(message.feedback) + 6 * len(message.bsr_reports)


def _wire_size_error(message, size: int) -> int:
    return size + 4 + len(message.detail.encode("utf-8"))


def _wire_size_header_only(message, size: int) -> int:
    return size


#: Fast-path dispatch for the analytic size (the hot link-accounting call).
_WIRE_SIZERS: Dict[Type[m.FapiMessage], Callable[..., int]] = {
    m.ConfigRequest: _wire_size_config,
    m.StartRequest: _wire_size_header_only,
    m.StopRequest: _wire_size_header_only,
    m.SlotIndication: _wire_size_header_only,
    m.ErrorIndication: _wire_size_error,
    m.UlTtiRequest: _wire_size_tti,
    m.DlTtiRequest: _wire_size_tti,
    m.TxDataRequest: _wire_size_tx_data,
    m.RxDataIndication: _wire_size_rx_data,
    m.CrcIndication: _wire_size_crc,
    m.UciIndication: _wire_size_uci,
}


def wire_size(message: m.FapiMessage) -> int:
    """Analytic wire size in bytes for link accounting.

    Unlike :func:`encoded_size`, this never serializes the message, so it
    also works for data messages whose hot-path payloads are typed
    objects; declared TB sizes stand in for blob lengths.
    """
    sizer = _WIRE_SIZERS.get(type(message), _wire_size_header_only)
    return sizer(message, _HEADER.size)


def data_message_wire_size(message: m.FapiMessage, payload_bytes: int) -> int:
    """Wire size for a data message whose payloads total ``payload_bytes``."""
    return wire_size(message) + payload_bytes


# ----------------------------------------------------------------------
# Decoders
# ----------------------------------------------------------------------
def _new_message(cls, cell_id: int, slot: int):
    """Construct a message skeleton without the dataclass kwargs round-trip."""
    msg = cls.__new__(cls)
    msg.cell_id = cell_id
    msg.slot = slot
    msg.message_id = next(m._message_ids)
    return msg


def _decode_config(cell_id: int, slot: int, body: bytes):
    num_prbs, mu, ru_id = struct.unpack_from(">HBH", body, 0)
    (plen,) = struct.unpack_from(">B", body, 5)
    pattern = body[6 : 6 + plen].decode("ascii")
    msg = _new_message(m.ConfigRequest, cell_id, slot)
    msg.num_prbs = num_prbs
    msg.numerology_mu = mu
    msg.tdd_pattern = pattern
    msg.ru_id = ru_id
    return msg


def _decode_start(cell_id: int, slot: int, body: bytes):
    return _new_message(m.StartRequest, cell_id, slot)


def _decode_stop(cell_id: int, slot: int, body: bytes):
    return _new_message(m.StopRequest, cell_id, slot)


def _decode_slot_indication(cell_id: int, slot: int, body: bytes):
    return _new_message(m.SlotIndication, cell_id, slot)


def _decode_error(cell_id: int, slot: int, body: bytes):
    code, dlen = struct.unpack_from(">HH", body, 0)
    msg = _new_message(m.ErrorIndication, cell_id, slot)
    msg.error_code = code
    msg.detail = body[4 : 4 + dlen].decode("utf-8")
    return msg


def _decode_ul_tti(cell_id: int, slot: int, body: bytes):
    pdus, _ = _decode_pdus(body, 0, m.PuschPdu)
    msg = _new_message(m.UlTtiRequest, cell_id, slot)
    msg.pdus = pdus
    return msg


def _decode_dl_tti(cell_id: int, slot: int, body: bytes):
    pdus, _ = _decode_pdus(body, 0, m.PdschPdu)
    msg = _new_message(m.DlTtiRequest, cell_id, slot)
    msg.pdus = pdus
    return msg


def _decode_tx_data(cell_id: int, slot: int, body: bytes):
    payloads, _ = _decode_blob_list(body, 0)
    msg = _new_message(m.TxDataRequest, cell_id, slot)
    msg.payloads = payloads
    return msg


def _decode_rx_data(cell_id: int, slot: int, body: bytes):
    (count,) = _COUNT.unpack_from(body, 0)
    offset = 2
    payloads = []
    for _ in range(count):
        ue, harq, tb_id, length = struct.unpack_from(">HBqI", body, offset)
        offset += 15
        payloads.append((ue, harq, tb_id, bytes(body[offset : offset + length])))
        offset += length
    msg = _new_message(m.RxDataIndication, cell_id, slot)
    msg.payloads = payloads
    return msg


def _decode_crc(cell_id: int, slot: int, body: bytes):
    (count,) = _COUNT.unpack_from(body, 0)
    offset = 2
    results = []
    unpack_from = _CRC.unpack_from
    size = _CRC.size
    for _ in range(count):
        ue, harq, tb_id, ok, snr, retx = unpack_from(body, offset)
        offset += size
        results.append(m.CrcResult(ue, harq, tb_id, ok == 1, snr, retx))
    msg = _new_message(m.CrcIndication, cell_id, slot)
    msg.results = results
    return msg


def _decode_uci(cell_id: int, slot: int, body: bytes):
    (count,) = _COUNT.unpack_from(body, 0)
    offset = 2
    feedback = []
    unpack_from = _UCI.unpack_from
    size = _UCI.size
    for _ in range(count):
        ue, harq, tb_id, ack = unpack_from(body, offset)
        offset += size
        feedback.append(m.HarqFeedback(ue, harq, tb_id, ack == 1))
    (bsr_count,) = _COUNT.unpack_from(body, offset)
    offset += 2
    bsr_reports = []
    for _ in range(bsr_count):
        ue, pending = struct.unpack_from(">HI", body, offset)
        offset += 6
        bsr_reports.append((ue, pending))
    msg = _new_message(m.UciIndication, cell_id, slot)
    msg.feedback = feedback
    msg.bsr_reports = bsr_reports
    return msg


#: Fast-path dispatch: wire type id -> body decoder.
_BODY_DECODERS: Dict[int, Callable[[int, int, bytes], m.AnyFapiMessage]] = {
    int(m.MessageType.CONFIG_REQUEST): _decode_config,
    int(m.MessageType.START_REQUEST): _decode_start,
    int(m.MessageType.STOP_REQUEST): _decode_stop,
    int(m.MessageType.SLOT_INDICATION): _decode_slot_indication,
    int(m.MessageType.ERROR_INDICATION): _decode_error,
    int(m.MessageType.UL_TTI_REQUEST): _decode_ul_tti,
    int(m.MessageType.DL_TTI_REQUEST): _decode_dl_tti,
    int(m.MessageType.TX_DATA_REQUEST): _decode_tx_data,
    int(m.MessageType.RX_DATA_INDICATION): _decode_rx_data,
    int(m.MessageType.CRC_INDICATION): _decode_crc,
    int(m.MessageType.UCI_INDICATION): _decode_uci,
}


def _parse_header(data: bytes) -> Tuple[int, int, int, bytes]:
    if len(data) < _HEADER.size:
        raise FapiCodecError("truncated FAPI header")
    magic, mtype, cell_id, slot, body_len = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise FapiCodecError(f"bad magic {magic:#x}")
    body = data[_HEADER.size : _HEADER.size + body_len]
    if len(body) != body_len:
        raise FapiCodecError("truncated FAPI body")
    return mtype, cell_id, slot, body


def decode_message(data: bytes) -> m.AnyFapiMessage:
    """Parse wire bytes back into a typed FAPI message (fast path)."""
    mtype, cell_id, slot, body = _parse_header(data)
    decoder = _BODY_DECODERS.get(mtype)
    if decoder is None:
        raise FapiCodecError(f"unknown message type {mtype}")
    return decoder(cell_id, slot, body)


def decode_message_reference(data: bytes) -> m.AnyFapiMessage:
    """Reference decoder: keyword-constructed dataclasses, if/elif chain."""
    raw_mtype, cell_id, slot, body = _parse_header(data)
    try:
        mtype = m.MessageType(raw_mtype)
    except ValueError as exc:
        raise FapiCodecError(f"unknown message type {raw_mtype}") from exc
    if mtype == m.MessageType.CONFIG_REQUEST:
        num_prbs, mu, ru_id = struct.unpack_from(">HBH", body, 0)
        (plen,) = struct.unpack_from(">B", body, 5)
        pattern = body[6 : 6 + plen].decode("ascii")
        return m.ConfigRequest(
            cell_id=cell_id, slot=slot, num_prbs=num_prbs,
            numerology_mu=mu, tdd_pattern=pattern, ru_id=ru_id,
        )
    if mtype == m.MessageType.START_REQUEST:
        return m.StartRequest(cell_id=cell_id, slot=slot)
    if mtype == m.MessageType.STOP_REQUEST:
        return m.StopRequest(cell_id=cell_id, slot=slot)
    if mtype == m.MessageType.SLOT_INDICATION:
        return m.SlotIndication(cell_id=cell_id, slot=slot)
    if mtype == m.MessageType.ERROR_INDICATION:
        code, dlen = struct.unpack_from(">HH", body, 0)
        detail = body[4 : 4 + dlen].decode("utf-8")
        return m.ErrorIndication(cell_id=cell_id, slot=slot, error_code=code, detail=detail)
    if mtype == m.MessageType.UL_TTI_REQUEST:
        pdus, _ = _decode_pdus_reference(body, 0, m.PuschPdu)
        return m.UlTtiRequest(cell_id=cell_id, slot=slot, pdus=pdus)
    if mtype == m.MessageType.DL_TTI_REQUEST:
        pdus, _ = _decode_pdus_reference(body, 0, m.PdschPdu)
        return m.DlTtiRequest(cell_id=cell_id, slot=slot, pdus=pdus)
    if mtype == m.MessageType.TX_DATA_REQUEST:
        payloads, _ = _decode_blob_list(body, 0)
        return m.TxDataRequest(cell_id=cell_id, slot=slot, payloads=payloads)
    if mtype == m.MessageType.RX_DATA_INDICATION:
        (count,) = _COUNT.unpack_from(body, 0)
        offset = 2
        payloads = []
        for _ in range(count):
            ue, harq, tb_id, length = struct.unpack_from(">HBqI", body, offset)
            offset += 15
            payloads.append((ue, harq, tb_id, bytes(body[offset : offset + length])))
            offset += length
        return m.RxDataIndication(cell_id=cell_id, slot=slot, payloads=payloads)
    if mtype == m.MessageType.CRC_INDICATION:
        (count,) = _COUNT.unpack_from(body, 0)
        offset = 2
        results = []
        for _ in range(count):
            ue, harq, tb_id, ok, snr, retx = _CRC.unpack_from(body, offset)
            offset += _CRC.size
            results.append(
                m.CrcResult(
                    ue_id=ue, harq_process=harq, tb_id=tb_id,
                    crc_ok=bool(ok), measured_snr_db=snr, retx_index=retx,
                )
            )
        return m.CrcIndication(cell_id=cell_id, slot=slot, results=results)
    if mtype == m.MessageType.UCI_INDICATION:
        (count,) = _COUNT.unpack_from(body, 0)
        offset = 2
        feedback = []
        for _ in range(count):
            ue, harq, tb_id, ack = _UCI.unpack_from(body, offset)
            offset += _UCI.size
            feedback.append(
                m.HarqFeedback(ue_id=ue, harq_process=harq, tb_id=tb_id, ack=bool(ack))
            )
        (bsr_count,) = _COUNT.unpack_from(body, offset)
        offset += 2
        bsr_reports = []
        for _ in range(bsr_count):
            ue, pending = struct.unpack_from(">HI", body, offset)
            offset += 6
            bsr_reports.append((ue, pending))
        return m.UciIndication(
            cell_id=cell_id, slot=slot, feedback=feedback, bsr_reports=bsr_reports
        )
    raise FapiCodecError(f"unknown message type {mtype}")
