"""Baselines the paper compares Slingshot against.

* :mod:`repro.baselines.vm_migration` — QEMU/KVM pre-copy live migration
  of a FlexRAN VM over TCP or RDMA (paper §2.4, Fig 3): the approach
  Slingshot's PHY migration replaces.
* :mod:`repro.baselines.software_mbox` — a DPDK software implementation
  of the fronthaul middlebox (the alternative §5 argues against): extra
  fronthaul latency, halved coverage-radius headroom, dedicated cores,
  and doubled NIC bandwidth.
* The no-Slingshot full-stack failover baseline of §8.1 lives in
  :func:`repro.cell.deployment.build_baseline_cell`.
"""

from repro.baselines.vm_migration import (
    PrecopyMigrationModel,
    VmMigrationConfig,
    MigrationRun,
    TransportKind,
)
from repro.baselines.software_mbox import SoftwareMiddleboxModel, SoftwareMboxConfig

__all__ = [
    "PrecopyMigrationModel",
    "VmMigrationConfig",
    "MigrationRun",
    "TransportKind",
    "SoftwareMiddleboxModel",
    "SoftwareMboxConfig",
]
