"""Software (DPDK) fronthaul middlebox — the design §5 argues against.

A server-based middlebox can implement the same steering/filtering logic
as the in-switch pipeline, but it (1) adds fronthaul latency — the
paper's DPDK prototype added ~10 µs at the 99.999th percentile, eating
~10 % of the sub-100 µs one-way fronthaul budget and thus ~10 % of the
datacenter's serviceable radius; (2) doubles per-server NIC bandwidth by
adding a hop to every fronthaul packet; and (3) burns dedicated CPU
cores (~10 % of the PHY's core count).

This model quantifies those three costs so the ablation bench can put
numbers beside the in-switch design's ~0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.rng import RngRegistry
from repro.sim.units import US

#: Propagation speed in fiber, ~5 µs per km one way.
FIBER_NS_PER_KM = 5_000.0


@dataclass
class SoftwareMboxConfig:
    """Latency/cost model of the DPDK middlebox."""

    #: Median added one-way latency per fronthaul packet.
    median_latency_ns: int = 4_500
    #: Lognormal sigma of the added latency (tail from bursty batching).
    sigma: float = 0.18
    #: Rare scheduling hiccup: probability and added delay (beyond the
    #: p99.999 the paper quotes, but present).
    hiccup_probability: float = 3e-6
    hiccup_extra_ns: int = 25_000
    #: One-way fronthaul delay budget (O-RAN split 7.2x).
    fronthaul_budget_ns: int = 100 * US
    #: Dedicated cores per PHY server the software middlebox needs.
    cores_per_server: float = 1.6
    #: PHY cores per server (FlexRAN-class deployment).
    phy_cores_per_server: float = 16.0


class SoftwareMiddleboxModel:
    """Samples the software middlebox's added latency and derives costs."""

    def __init__(
        self,
        config: Optional[SoftwareMboxConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config or SoftwareMboxConfig()
        self.rng = (
            rng if rng is not None else RngRegistry(seed=0).stream("baseline.swmbox")
        )

    def sample_added_latency_ns(self, count: int) -> np.ndarray:
        """Draw per-packet added one-way latencies."""
        cfg = self.config
        base = self.rng.lognormal(np.log(cfg.median_latency_ns), cfg.sigma, size=count)
        hiccups = self.rng.random(count) < cfg.hiccup_probability
        base[hiccups] += self.rng.uniform(0.3, 1.0, hiccups.sum()) * cfg.hiccup_extra_ns
        return base

    def added_latency_percentile_ns(self, percentile: float, count: int = 400_000) -> float:
        """Added latency at a percentile (the paper quotes p99.999 ≈ 10 µs)."""
        samples = self.sample_added_latency_ns(count)
        return float(np.percentile(samples, percentile))

    def radius_km(self, added_latency_ns: float = 0.0) -> float:
        """Max RU-to-datacenter distance under the fronthaul budget."""
        usable = self.config.fronthaul_budget_ns - added_latency_ns
        return max(usable, 0.0) / FIBER_NS_PER_KM

    def radius_reduction_fraction(self, percentile: float = 99.999) -> float:
        """Coverage-radius loss caused by the middlebox's tail latency."""
        baseline = self.radius_km(0.0)
        with_mbox = self.radius_km(self.added_latency_percentile_ns(percentile))
        return (baseline - with_mbox) / baseline

    def cpu_overhead_fraction(self) -> float:
        """Middlebox cores as a fraction of PHY cores (§5: ~10 %)."""
        return self.config.cores_per_server / self.config.phy_cores_per_server

    def nic_bandwidth_multiplier(self) -> float:
        """Per-server NIC bandwidth factor (every packet takes 2 hops)."""
        return 2.0
