"""Pre-copy VM live migration of a FlexRAN VM (paper §2.4, Fig 3).

The paper measured 80 live migrations of a (PCIe-less, already
charitable) FlexRAN VM under QEMU/KVM, over TCP and over RDMA on
100 GbE: the median VM pause was 244 ms — nearly three orders of
magnitude beyond the sub-10 µs interruption tolerance of a realtime
PHY — and FlexRAN crashed in **every** run.

This module models the pre-copy algorithm mechanistically:

1. The full guest RAM is copied while the VM runs (round 0).
2. Signal processing keeps dirtying pages at a high rate, so each
   subsequent round copies the pages dirtied during the previous round.
3. Rounds shrink only while bandwidth exceeds the dirty rate; when the
   remaining set stops shrinking (or a round cap is hit), the VM is
   **paused** and the residual dirty set plus device state is copied —
   that pause is the blackout Fig 3 plots.

FlexRAN's hot working set (IQ buffers, FEC scratch, DPDK rings) is
re-dirtied continuously, which bounds how small the residual set can
get — the mechanism behind the paper's observation that "signal
processing continuously generates dirty memory pages".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sim.rng import RngRegistry
from repro.sim.units import MS, SECOND, US, ns_to_ms


class TransportKind(enum.Enum):
    """Migration transport (Fig 3 compares the two)."""

    TCP = "TCP"
    RDMA = "RDMA"


@dataclass
class VmMigrationConfig:
    """Pre-copy model parameters (calibrated to the paper's testbed)."""

    #: Guest RAM of the FlexRAN VM.
    guest_ram_bytes: float = 16e9
    #: Page size used for dirty tracking.
    page_bytes: int = 4096
    #: Mean rate at which FlexRAN dirties memory while processing slots.
    dirty_rate_bytes_per_s: float = 2.8e9
    #: Hot working set that is re-dirtied every slot regardless of round
    #: length (IQ buffers, FEC scratch, DPDK rings).
    hot_set_bytes: float = 1.2e9
    #: Run-to-run variation of the hot set (lognormal sigma).
    hot_set_sigma: float = 0.18
    #: Effective migration bandwidth by transport. TCP on 100 GbE lands
    #: well below line rate (single-stream, copies through the kernel);
    #: RDMA gets closer but pays per-round registration overheads.
    tcp_bandwidth_bytes_per_s: float = 4.2e9
    rdma_bandwidth_bytes_per_s: float = 7.0e9
    #: Pre-copy gives up when a round fails to shrink by this factor.
    min_shrink_factor: float = 0.9
    #: Maximum pre-copy rounds before forcing stop-and-copy.
    max_rounds: int = 12
    #: Fixed stop-and-copy overhead (device state, CPU state, switchover).
    stop_copy_overhead_ns: int = 18 * MS
    #: Jitter of the overhead term.
    overhead_sigma_ns: int = 5 * MS
    #: Thread-interruption tolerance of the realtime PHY (§2.4: vRAN
    #: platforms must keep interruptions under ~10 µs).
    phy_jitter_tolerance_ns: int = 10 * US


@dataclass
class MigrationRun:
    """Result of one simulated live migration."""

    transport: TransportKind
    pause_time_ns: int
    total_time_ns: int
    rounds: int
    bytes_transferred: float
    #: True when the pause exceeded the PHY's interruption tolerance —
    #: i.e. FlexRAN crashed (it did in all 80 of the paper's runs).
    phy_crashed: bool

    @property
    def pause_time_ms(self) -> float:
        return ns_to_ms(self.pause_time_ns)


class PrecopyMigrationModel:
    """Monte-Carlo pre-copy migration simulator."""

    def __init__(
        self,
        config: Optional[VmMigrationConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config or VmMigrationConfig()
        self.rng = (
            rng if rng is not None else RngRegistry(seed=0).stream("baseline.vm_mig")
        )

    def _bandwidth(self, transport: TransportKind) -> float:
        cfg = self.config
        base = (
            cfg.tcp_bandwidth_bytes_per_s
            if transport is TransportKind.TCP
            else cfg.rdma_bandwidth_bytes_per_s
        )
        # Run-to-run variation (co-scheduled traffic, NUMA placement).
        return base * float(self.rng.uniform(0.85, 1.1))

    def migrate_once(self, transport: TransportKind) -> MigrationRun:
        """Simulate one live migration; returns its timing breakdown."""
        cfg = self.config
        bandwidth = self._bandwidth(transport)
        hot_set = float(
            cfg.hot_set_bytes * self.rng.lognormal(0.0, cfg.hot_set_sigma)
        )
        dirty_rate = cfg.dirty_rate_bytes_per_s * float(self.rng.uniform(0.9, 1.1))
        remaining = cfg.guest_ram_bytes
        total_time = 0.0
        total_bytes = 0.0
        rounds = 0
        previous = float("inf")
        while rounds < cfg.max_rounds:
            round_time = remaining / bandwidth
            total_time += round_time
            total_bytes += remaining
            rounds += 1
            # Pages dirtied during this round; the hot set is always
            # re-dirtied, and it caps how low pre-copy can drive the
            # residual (you cannot copy the hot set faster than FlexRAN
            # re-touches it).
            dirtied = min(dirty_rate * round_time, cfg.guest_ram_bytes)
            next_remaining = max(dirtied, hot_set)
            if next_remaining >= previous * cfg.min_shrink_factor:
                remaining = next_remaining
                break
            previous = next_remaining
            remaining = next_remaining
        # Stop-and-copy: the VM is paused while the residual set moves.
        overhead = max(
            0.0, float(self.rng.normal(cfg.stop_copy_overhead_ns, cfg.overhead_sigma_ns))
        )
        pause_ns = int(remaining / bandwidth * SECOND + overhead)
        total_bytes += remaining
        total_ns = int(total_time * SECOND) + pause_ns
        return MigrationRun(
            transport=transport,
            pause_time_ns=pause_ns,
            total_time_ns=total_ns,
            rounds=rounds,
            bytes_transferred=total_bytes,
            phy_crashed=pause_ns > cfg.phy_jitter_tolerance_ns,
        )

    def run_campaign(
        self, transport: TransportKind, runs: int = 40
    ) -> List[MigrationRun]:
        """Repeat migrations, as the paper's 80-run campaign does."""
        return [self.migrate_once(transport) for _ in range(runs)]

    @staticmethod
    def pause_cdf(runs: List[MigrationRun]) -> List[tuple]:
        """(pause ms, cumulative fraction) points, sorted."""
        pauses = sorted(run.pause_time_ms for run in runs)
        count = len(pauses)
        return [(pause, (i + 1) / count) for i, pause in enumerate(pauses)]
