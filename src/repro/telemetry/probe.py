"""Per-subsystem event counting on the ``Simulator._pop`` seam.

Every fired event leaves the queue through :meth:`Simulator._pop`, the
same single hook point the perf profiler uses. Where
:class:`repro.perf.sampler.PopSampler` times every N-th callback,
:class:`EventCountProbe` merely *counts* every popped event into the
active :class:`~repro.telemetry.metrics.MetricsRegistry` under
``engine.events.<subsystem>`` — attribution reuses
:func:`repro.perf.sampler.subsystem_of` so perf shares and telemetry
counts bucket identically.

The probe also keeps the slot-wheel lane's accounting observable: it
samples wheel occupancy at every pop (tracking the peak) and, on exit,
publishes the engines' compaction and cancel-no-op totals — counters the
engine maintains anyway, surfaced here as ``engine.wheel.*`` metrics.

Counting never touches the handle's callback, never reads a clock, and
never writes a trace record, so a probed run's canonical digest is
bit-identical to an unprobed one. The patch is class-level and
process-global for the duration of the ``with`` block, exactly like
``PopSampler`` (and like it, not reentrant).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.perf.sampler import subsystem_of
from repro.sim.engine import Simulator
from repro.telemetry.metrics import MetricsRegistry, active

#: Counter-name prefix for per-subsystem fired-event counts.
EVENT_COUNTER_PREFIX = "engine.events."

#: Metric-name prefix for the wheel lane's occupancy/compaction stats.
WHEEL_METRIC_PREFIX = "engine.wheel."


class EventCountProbe:
    """Context manager counting every fired event by subsystem.

    Usage::

        registry = MetricsRegistry()
        with enabled(registry), EventCountProbe() as probe:
            run_scenario(...)
        registry.snapshot()["counters"]["engine.events.repro.phy"]

    With no explicit registry the probe records into the active one at
    entry time; with neither, counts accumulate only in :attr:`counts`.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry
        #: Fired-event count per subsystem (always populated).
        self.counts: Dict[str, int] = {}
        #: Wheel-lane accounting, filled in on exit: peak occupancy seen
        #: at any pop, plus the engines' compaction / cancel-no-op /
        #: residual-entry totals.
        self.wheel_stats: Dict[str, int] = {}
        self._saved_pop: Optional[Callable[..., Any]] = None
        self._entered_registry: Optional[MetricsRegistry] = None
        self._sims: List[Simulator] = []
        self._peak: List[int] = [0]

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Class-level _pop patch (PopSampler pattern: save, wrap, restore)
    # ------------------------------------------------------------------
    def __enter__(self) -> "EventCountProbe":
        if self._saved_pop is not None:
            raise RuntimeError("EventCountProbe is not reentrant")
        registry = self._registry if self._registry is not None else active()
        self._entered_registry = registry
        counts = self.counts
        sims = self._sims
        last_sim: List[Optional[Simulator]] = [None]
        peak = self._peak
        inner_pop = Simulator._pop
        self._saved_pop = inner_pop

        if registry is not None:
            counters = registry._counters
            counter_for = registry.counter

            def counting_pop(sim: Simulator, limit: Optional[int] = None):
                entry = inner_pop(sim, limit)
                if entry is not None:
                    if sim is not last_sim[0]:
                        last_sim[0] = sim
                        if sim not in sims:
                            sims.append(sim)
                    if sim._wheel_size > peak[0]:
                        peak[0] = sim._wheel_size
                    bucket = subsystem_of(entry[3].callback)
                    counts[bucket] = counts.get(bucket, 0) + 1
                    name = EVENT_COUNTER_PREFIX + bucket
                    counter = counters.get(name)
                    if counter is None:
                        counter = counter_for(name)
                    counter.value += 1
                return entry

        else:

            def counting_pop(sim: Simulator, limit: Optional[int] = None):
                entry = inner_pop(sim, limit)
                if entry is not None:
                    if sim is not last_sim[0]:
                        last_sim[0] = sim
                        if sim not in sims:
                            sims.append(sim)
                    if sim._wheel_size > peak[0]:
                        peak[0] = sim._wheel_size
                    bucket = subsystem_of(entry[3].callback)
                    counts[bucket] = counts.get(bucket, 0) + 1
                return entry

        Simulator._pop = counting_pop
        return self

    def __exit__(self, *exc_info: Any) -> None:
        Simulator._pop = self._saved_pop
        self._saved_pop = None
        sims = self._sims
        self.wheel_stats = {
            "peak_pending": self._peak[0],
            "compactions": sum(sim.wheel_compactions for sim in sims),
            "cancel_noops": sum(sim.cancel_noops for sim in sims),
            "entries_final": sum(sim.wheel_entries for sim in sims),
        }
        registry = self._entered_registry
        self._entered_registry = None
        if registry is not None:
            for name in ("compactions", "cancel_noops"):
                registry.counter(WHEEL_METRIC_PREFIX + name).inc(
                    self.wheel_stats[name]
                )
            for name in ("peak_pending", "entries_final"):
                registry.gauge(WHEEL_METRIC_PREFIX + name).set(
                    self.wheel_stats[name]
                )
