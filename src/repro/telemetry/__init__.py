"""Telemetry: zero-cost-when-disabled metrics + failover timelines.

``python -m repro telemetry`` runs instrumented chaos scenarios,
reconstructs per-run :class:`~repro.telemetry.timeline.FailoverTimeline`
records, and writes ``benchmarks/BENCH_telemetry.json`` with a
``--check`` regression gate (see :mod:`repro.telemetry.runner`).

The package-level API is the instrumentation surface components import:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` / ``span(name, t_start_ns, t_end_ns, **attrs)``;
* :func:`active` / :func:`enable` / :func:`disable` / :func:`enabled`
  controlling which registry (if any) newly built components record to;
* :class:`EventCountProbe` counting fired events per subsystem on the
  ``Simulator._pop`` seam;
* :class:`FailoverTimeline` folding canonical trace events into the
  paper's failure→detect→notify→commit→first-good decomposition.

Determinism contract: telemetry records only deterministic counts and
integer simulated-time values — never wall clocks, never RNG draws
(slinglint OBS001) — and never writes trace records, so enabling it is
digest-neutral by construction. ``repro.telemetry.runner`` is imported
lazily by the CLI so importing this package stays cheap for the
instrumented components.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    active,
    disable,
    enable,
    enabled,
    merge_snapshots,
)
from repro.telemetry.probe import EVENT_COUNTER_PREFIX, EventCountProbe
from repro.telemetry.timeline import FailoverTimeline

__all__ = [
    "Counter",
    "EVENT_COUNTER_PREFIX",
    "EventCountProbe",
    "FailoverTimeline",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "active",
    "disable",
    "enable",
    "enabled",
    "merge_snapshots",
]
