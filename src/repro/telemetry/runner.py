"""Telemetry CLI: ``python -m repro telemetry``.

Runs instrumented chaos scenarios — a fresh
:class:`~repro.telemetry.metrics.MetricsRegistry` enabled around each
cell build, plus an :class:`~repro.telemetry.probe.EventCountProbe` on
the engine — and reports, per ``(scenario, seed)`` run:

* the canonical trace **digest**, compared against the recorded chaos
  baseline (``benchmarks/BENCH_chaos.json``): the run with telemetry ON
  must produce the digest recorded with telemetry OFF, which is the
  digest-neutrality contract made mechanical;
* the reconstructed :class:`~repro.telemetry.timeline.FailoverTimeline`
  (failure → detect → notify → commit → first good delivery, plus the
  probe-gap downtime that exactly matches the chaos invariant bound);
* the full **metrics snapshot** (counters, histograms, spans).

Usage::

    python -m repro telemetry                   # full 13x3 matrix -> BENCH_telemetry.json
    python -m repro telemetry --quick           # 3-scenario x seed-1 smoke
    python -m repro telemetry --check --quick   # the tier-1 gate
    python -m repro telemetry --scenario crash --seeds 1 2 --jobs 2
    python -m repro telemetry --format csv      # timeline table

Exit codes: 0 (ran / gate passed), 1 (neutrality or gate failure),
2 (usage error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.pool import run_shards
from repro.parallel.workers import run_telemetry_shard
from repro.telemetry.metrics import MetricsRegistry, enabled, merge_snapshots
from repro.telemetry.probe import EventCountProbe

#: Reduced matrix for ``--quick``: one process-fault failover, one
#: command-loss failover, one degraded-mode scenario — each exercising a
#: different timeline shape — at a single seed.
QUICK_SCENARIOS = ("cmd_drop", "crash", "no_secondary")
QUICK_SEEDS = (1,)

#: Timeline columns for the CSV export (and the text row summary).
CSV_COLUMNS = (
    "scenario",
    "seed",
    "fault_ns",
    "detected_ns",
    "notified_ns",
    "committed_ns",
    "first_good_ns",
    "detect_latency_ns",
    "notify_latency_ns",
    "commit_latency_ns",
    "resume_latency_ns",
    "downtime_ns",
)


def run_instrumented_scenario(scenario_name: str, seed: int) -> Dict[str, Any]:
    """One fully instrumented chaos run; returns a JSON-ready dict.

    The registry is enabled *before* the cell is built (component
    construction is when instrumentation handles are captured) and the
    engine probe wraps the whole run.
    """
    from repro.faults.campaign import run_scenario
    from repro.faults.scenarios import scenario_by_name

    scenario = scenario_by_name()[scenario_name]
    registry = MetricsRegistry()
    with enabled(registry), EventCountProbe():
        run = run_scenario(scenario, seed, replay=False)
    return {
        "scenario": scenario_name,
        "seed": seed,
        "digest": run.digest,
        "invariants_passed": run.passed,
        "timeline": run.timeline,
        "metrics": registry.snapshot(),
    }


def _chaos_reference_digests(path: Path) -> Dict[tuple, str]:
    """Recorded telemetry-off digests keyed by (scenario, seed)."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    return {
        (entry["scenario"], entry["seed"]): entry["digest"]
        for entry in data.get("runs", [])
    }


def run_telemetry(
    scenario_names: Sequence[str],
    seeds: Sequence[int],
    jobs: int = 1,
    progress=None,
) -> Dict[str, Any]:
    """Run the instrumented matrix and assemble the telemetry report.

    Shards fan out exactly like the chaos campaign (canonical
    ``(scenario, seed)`` keys); each worker enables its own registry, so
    per-shard snapshots come back independent and are merged here in
    canonical key order — making the merged snapshot identical at any
    ``jobs`` value.
    """
    from repro.faults.campaign import default_bench_path as chaos_bench_path

    shards = [
        ((name, seed), (name, seed))
        for name in scenario_names
        for seed in seeds
    ]
    reference = _chaos_reference_digests(chaos_bench_path())

    def annotate(run: Dict[str, Any]) -> Dict[str, Any]:
        recorded = reference.get((run["scenario"], run["seed"]))
        run["digest_neutral"] = (
            None if recorded is None else run["digest"] == recorded
        )
        return run

    outcome = run_shards(
        run_telemetry_shard,
        shards,
        jobs=jobs,
        progress=None
        if progress is None
        else (lambda key, run: progress(annotate(run))),
    )
    runs = [annotate(run) for run in outcome.values()]
    merged = merge_snapshots([run["metrics"] for run in runs])
    return {
        "benchmark": "telemetry",
        "scenarios": sorted({run["scenario"] for run in runs}),
        "seeds": sorted({run["seed"] for run in runs}),
        "runs_total": len(runs),
        "neutrality_failures": sum(
            1 for run in runs if run["digest_neutral"] is False
        ),
        "passed": all(run["digest_neutral"] is not False for run in runs),
        "runs": runs,
        "merged_metrics": merged,
        "execution": outcome.accounting(),
    }


# ----------------------------------------------------------------------
# Report comparison (--check) and formatting
# ----------------------------------------------------------------------
def _comparable_run(run: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of one run (drops nothing today;
    exists so future machine-fact fields stay out of the gate)."""
    return {
        key: run[key]
        for key in (
            "scenario", "seed", "digest", "invariants_passed",
            "timeline", "metrics",
        )
    }


def check_report(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Exact comparison of fresh runs against the recorded baseline.

    Composes with subsets: only the freshly executed (scenario, seed)
    pairs are compared. The ``execution`` block (machine facts) is never
    part of the gate.
    """
    failures: List[str] = []
    recorded = {
        (entry["scenario"], entry["seed"]): entry
        for entry in baseline.get("runs", [])
    }
    for run in current.get("runs", []):
        key = (run["scenario"], run["seed"])
        entry = recorded.get(key)
        label = f"{run['scenario']}/seed={run['seed']}"
        if entry is None:
            failures.append(f"{label}: not in baseline (re-record it)")
            continue
        if run["digest_neutral"] is False:
            failures.append(f"{label}: telemetry changed the trace digest")
        fresh, old = _comparable_run(run), _comparable_run(entry)
        for field in fresh:
            if fresh[field] != old[field]:
                failures.append(f"{label}: {field} differs from baseline")
    return failures


def default_bench_path() -> Path:
    """Repo-local baseline: ``benchmarks/BENCH_telemetry.json``."""
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "BENCH_telemetry.json"
    )


def _format_run(run: Dict[str, Any]) -> str:
    timeline = run.get("timeline") or {}

    def us(key: str) -> str:
        value = timeline.get(key)
        return "-" if value is None else f"{value / 1e3:.1f}"

    downtime = timeline.get("downtime_ns")
    downtime_ms = "-" if downtime is None else f"{downtime / 1e6:.2f}"
    neutral = {True: "neutral", False: "DIGEST-CHANGED", None: "no-ref"}[
        run["digest_neutral"]
    ]
    return (
        f"{run['scenario']:<18} seed={run['seed']:<3} {neutral:<14} "
        f"downtime_ms={downtime_ms:>7} detect_us={us('detect_latency_ns'):>7} "
        f"commit_us={us('commit_latency_ns'):>7} "
        f"resume_us={us('resume_latency_ns'):>7}"
    )


def _format_csv(report: Dict[str, Any]) -> str:
    lines = [",".join(CSV_COLUMNS)]
    for run in report["runs"]:
        timeline = run.get("timeline") or {}
        row = {**timeline, "scenario": run["scenario"], "seed": run["seed"]}
        lines.append(
            ",".join(
                "" if row.get(column) is None else str(row[column])
                for column in CSV_COLUMNS
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cliopts import harness_options, resolve_jobs
    from repro.faults.scenarios import scenario_by_name

    parser = argparse.ArgumentParser(
        prog="repro telemetry",
        description="Instrumented failover runs: metrics, timelines, and "
        "the digest-neutrality gate.",
        parents=[harness_options()],
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="scenario seeds (default: 1 2 3; --quick: 1)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "csv"), default="text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    catalog = scenario_by_name()
    if args.list:
        for name, scenario in catalog.items():
            print(f"{name:<18} {scenario.description}")
        return 0
    if args.scenarios:
        unknown = [n for n in args.scenarios if n not in catalog]
        if unknown:
            print(
                f"repro telemetry: unknown scenario(s): {unknown}",
                file=sys.stderr,
            )
            return 2
        names: Sequence[str] = args.scenarios
    elif args.quick:
        names = QUICK_SCENARIOS
    else:
        names = list(catalog)
    seeds = (
        args.seeds
        if args.seeds is not None
        else (list(QUICK_SEEDS) if args.quick else [1, 2, 3])
    )
    jobs = resolve_jobs(args.jobs, "repro telemetry")
    if jobs is None:
        return 2

    def progress(run: Dict[str, Any]) -> None:
        if args.format == "text":
            print(_format_run(run), flush=True)

    report = run_telemetry(names, seeds, jobs=jobs, progress=progress)

    if args.format == "json":
        print(json.dumps(report, indent=2))
    elif args.format == "csv":
        print(_format_csv(report))
    else:
        summary = (
            f"\n{report['runs_total']} runs, "
            f"{report['neutrality_failures']} digest-neutrality failures"
        )
        execution = report.get("execution")
        if execution is not None:
            speedup = execution.get("parallel_speedup")
            summary += (
                f"  [jobs={execution['effective_jobs']}"
                + (f", speedup {speedup:.2f}x" if speedup else "")
                + "]"
            )
        print(summary)

    bench_path = args.out if args.out is not None else default_bench_path()
    if args.check:
        if not bench_path.exists():
            print(
                f"repro telemetry: cannot load baseline {bench_path}",
                file=sys.stderr,
            )
            return 2
        baseline = json.loads(bench_path.read_text())
        failures = check_report(report, baseline)
        if failures:
            print(f"\ntelemetry check FAILED ({len(failures)} failure(s)):")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\ntelemetry check passed ({report['runs_total']} run(s))")
        return 0

    bench_path.parent.mkdir(parents=True, exist_ok=True)
    bench_path.write_text(json.dumps(report, indent=2) + "\n")
    if args.format == "text":
        print(f"wrote {bench_path}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
