"""Failover timeline reconstruction from canonical trace events.

Slingshot's headline numbers are timeline claims (PAPER.md §5, §8):
failure → in-switch detection within T = 450 µs → Orion notified →
migration armed on a TTI boundary → traffic resumes, with user-visible
downtime under ~10 ms. :class:`FailoverTimeline` folds one run's
canonical trace into exactly that decomposition.

The anchor events, in causal order:

===============================  ==========================================
phase                            trace categories
===============================  ==========================================
fault injected                   ``phy.crash`` / ``phy.hang``
failure detected                 ``mbox.failure_detected`` (switch
                                 detector) or
                                 ``orion.response_watchdog_fired``
                                 (L2-side backstop) — whichever first
L2 notified                      ``orion.failure_notified`` (or the
                                 watchdog fire itself: the backstop *is*
                                 the notification)
migration armed                  ``orion.migration_started``
boundary committed               ``mbox.migrate_on_slot`` /
                                 ``mbox.migration_committed``
first good delivery              first ``chaos.rx`` at/after the commit
===============================  ==========================================

Total downtime is **not** recomputed here: it delegates to
:meth:`repro.faults.invariants.RecoveryInvariants.max_probe_gap_ns` over
the same events and window, so the number a timeline reports is the
number the chaos recovery invariant bounds — by construction, never
"close to" it.

Link-noise scenarios (fh_loss, orion_dup, ...) inject no process fault
and commit no migration; their timelines have ``None`` phases and only
the probe-gap downtime is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.faults.invariants import PROBE_RX, RecoveryInvariants
from repro.sim.trace import TraceEvent

#: Categories marking the injected process fault (earliest wins).
FAULT_CATEGORIES = ("phy.crash", "phy.hang")

#: Categories marking failure detection (switch detector or L2 backstop).
DETECT_CATEGORIES = ("mbox.failure_detected", "orion.response_watchdog_fired")


def _first_time(
    events: Sequence[TraceEvent], *categories: str
) -> Optional[int]:
    times = [e.time for e in events if e.category in categories]
    return min(times) if times else None


@dataclass(frozen=True)
class FailoverTimeline:
    """One run's failure→recovery decomposition, all times in sim ns."""

    window_start_ns: int
    window_end_ns: int
    fault_ns: Optional[int]
    detected_ns: Optional[int]
    notified_ns: Optional[int]
    migrate_armed_ns: Optional[int]
    committed_ns: Optional[int]
    first_good_ns: Optional[int]
    #: RecoveryInvariants.max_probe_gap_ns() over the same events/window.
    downtime_ns: Optional[int]

    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Sequence[TraceEvent],
        *,
        window_start_ns: int,
        window_end_ns: int,
    ) -> "FailoverTimeline":
        fault_ns = _first_time(events, *FAULT_CATEGORIES)
        detected_ns = _first_time(events, *DETECT_CATEGORIES)
        notified_ns = _first_time(
            events, "orion.failure_notified", "orion.response_watchdog_fired"
        )
        migrate_armed_ns = _first_time(events, "orion.migration_started")
        committed_ns = _first_time(
            events, "mbox.migrate_on_slot", "mbox.migration_committed"
        )
        # Boundary actually flipped (vs armed) — prefer the commit record.
        commit_times = [
            e.time for e in events if e.category == "mbox.migration_committed"
        ]
        if commit_times:
            committed_ns = min(commit_times)
        first_good_ns: Optional[int] = None
        if committed_ns is not None:
            good = [
                e.time
                for e in events
                if e.category == PROBE_RX and e.time >= committed_ns
            ]
            first_good_ns = min(good) if good else None
        downtime_ns = RecoveryInvariants(
            events,
            window_start_ns=window_start_ns,
            window_end_ns=window_end_ns,
            downtime_budget_ns=None,
            expected_migrations=0,
        ).max_probe_gap_ns()
        return cls(
            window_start_ns=window_start_ns,
            window_end_ns=window_end_ns,
            fault_ns=fault_ns,
            detected_ns=detected_ns,
            notified_ns=notified_ns,
            migrate_armed_ns=migrate_armed_ns,
            committed_ns=committed_ns,
            first_good_ns=first_good_ns,
            downtime_ns=downtime_ns,
        )

    # ------------------------------------------------------------------
    # Downtime decomposition (None whenever either endpoint is missing)
    # ------------------------------------------------------------------
    @staticmethod
    def _delta(start: Optional[int], end: Optional[int]) -> Optional[int]:
        if start is None or end is None:
            return None
        return end - start

    @property
    def detect_latency_ns(self) -> Optional[int]:
        """Fault injection → detection (switch detector or L2 backstop)."""
        return self._delta(self.fault_ns, self.detected_ns)

    @property
    def notify_latency_ns(self) -> Optional[int]:
        """Detection → L2 Orion learning of the failure."""
        return self._delta(self.detected_ns, self.notified_ns)

    @property
    def commit_latency_ns(self) -> Optional[int]:
        """Notification → fronthaul boundary flipped at the switch."""
        return self._delta(self.notified_ns, self.committed_ns)

    @property
    def resume_latency_ns(self) -> Optional[int]:
        """Boundary commit → first probe delivery from the new PHY."""
        return self._delta(self.committed_ns, self.first_good_ns)

    @property
    def fault_to_first_good_ns(self) -> Optional[int]:
        """End-to-end fault → first good delivery."""
        return self._delta(self.fault_ns, self.first_good_ns)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "window_start_ns": self.window_start_ns,
            "window_end_ns": self.window_end_ns,
            "fault_ns": self.fault_ns,
            "detected_ns": self.detected_ns,
            "notified_ns": self.notified_ns,
            "migrate_armed_ns": self.migrate_armed_ns,
            "committed_ns": self.committed_ns,
            "first_good_ns": self.first_good_ns,
            "downtime_ns": self.downtime_ns,
            "detect_latency_ns": self.detect_latency_ns,
            "notify_latency_ns": self.notify_latency_ns,
            "commit_latency_ns": self.commit_latency_ns,
            "resume_latency_ns": self.resume_latency_ns,
            "fault_to_first_good_ns": self.fault_to_first_good_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailoverTimeline":
        return cls(
            window_start_ns=data["window_start_ns"],
            window_end_ns=data["window_end_ns"],
            fault_ns=data.get("fault_ns"),
            detected_ns=data.get("detected_ns"),
            notified_ns=data.get("notified_ns"),
            migrate_armed_ns=data.get("migrate_armed_ns"),
            committed_ns=data.get("committed_ns"),
            first_good_ns=data.get("first_good_ns"),
            downtime_ns=data.get("downtime_ns"),
        )
