"""Zero-cost-when-disabled metrics primitives.

The instrumentation contract has three legs:

* **Zero cost when disabled.** Components capture the *active* registry
  once, at construction (``active()`` returns ``None`` unless a registry
  was enabled first), and guard every instrumentation site with a plain
  ``is not None`` check. A cell built outside ``enabled(...)`` carries
  no telemetry objects at all, so the hot paths the perf harness gates
  are untouched.

* **Sim time only.** Every recorded value is either a deterministic
  count or an integer-nanosecond simulated timestamp/duration. Nothing
  in this package may read a wall clock or draw randomness — the OBS001
  lint rule enforces it — which is what makes telemetry output
  bit-reproducible across machines and ``--jobs`` values.

* **Digest neutrality.** A registry never writes to the
  :class:`~repro.sim.trace.TraceRecorder` and never consumes RNG
  stream draws, so enabling telemetry cannot perturb a run's canonical
  trace digest. The telemetry CLI and tests pin this against the
  recorded chaos/perf baselines.

Snapshots are canonical: every mapping is emitted in sorted-key order
and histogram observations in observation order, so per-shard snapshots
merged in canonical shard-key order (:func:`merge_snapshots`) are
bit-identical however the shards were scheduled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value (queue depth, map size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[int] = None

    def set(self, value: int) -> None:
        self.value = value


class Histogram:
    """Raw integer observations (latencies in ns, sizes in bytes).

    Observations are kept verbatim rather than pre-bucketed: the sim is
    deterministic, runs are short, and raw values merge across shards
    without any binning policy baked into the snapshot format.
    """

    __slots__ = ("name", "observations")

    def __init__(self, name: str) -> None:
        self.name = name
        self.observations: List[int] = []

    def observe(self, value: int) -> None:
        self.observations.append(value)

    def summary(self) -> Dict[str, int]:
        obs = self.observations
        if not obs:
            return {"count": 0}
        return {
            "count": len(obs),
            "min": min(obs),
            "max": max(obs),
            "sum": sum(obs),
        }


class Span:
    """One named simulated-time interval with sorted, hashable attrs."""

    __slots__ = ("name", "t_start_ns", "t_end_ns", "attrs")

    def __init__(
        self,
        name: str,
        t_start_ns: int,
        t_end_ns: int,
        attrs: Tuple[Tuple[str, Any], ...],
    ) -> None:
        self.name = name
        self.t_start_ns = t_start_ns
        self.t_end_ns = t_end_ns
        self.attrs = attrs

    @property
    def duration_ns(self) -> int:
        return self.t_end_ns - self.t_start_ns

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "t_start_ns": self.t_start_ns,
            "t_end_ns": self.t_end_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
        }


class MetricsRegistry:
    """Holds every metric of one instrumented run.

    Metric objects are created on first use and identified by name;
    components may share a name (the counts accumulate). ``span`` records
    are append-only in emission order — which, because the simulator is
    deterministic, is itself deterministic.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[Span] = []

    # ------------------------------------------------------------------
    # Metric accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def span(self, name: str, t_start_ns: int, t_end_ns: int, **attrs: Any) -> Span:
        """Record a simulated-time interval (both endpoints in sim ns)."""
        record = Span(name, t_start_ns, t_end_ns, tuple(sorted(attrs.items())))
        self._spans.append(record)
        return record

    @property
    def spans(self) -> Sequence[Span]:
        return tuple(self._spans)

    # ------------------------------------------------------------------
    # Canonical export / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Canonical JSON-ready dump: sorted keys, raw observations."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    **self._histograms[name].summary(),
                    "observations": list(self._histograms[name].observations),
                }
                for name in sorted(self._histograms)
            },
            "spans": [span.as_dict() for span in self._spans],
        }


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard snapshots, **in canonical shard-key order**, into one.

    Counters add; histograms concatenate observations (shard order, then
    observation order); gauges are last-write-wins in merge order; spans
    concatenate. Because the caller supplies snapshots in canonical
    ``(scenario, seed)`` order, the merged snapshot is independent of
    how many workers produced them.
    """
    merged: Dict[str, Any] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, data in snapshot.get("histograms", {}).items():
            observations = merged["histograms"].setdefault(name, [])
            observations.extend(data.get("observations", []))
        merged["spans"].extend(snapshot.get("spans", []))
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = {
        name: {
            "count": len(obs),
            **({"min": min(obs), "max": max(obs), "sum": sum(obs)} if obs else {}),
            "observations": obs,
        }
        for name, obs in sorted(merged["histograms"].items())
    }
    return merged


# ----------------------------------------------------------------------
# The active registry
# ----------------------------------------------------------------------
# Components capture `active()` at construction time, so a registry must
# be enabled *before* the cell is built. Holding the handle (instead of
# re-reading module state per packet) keeps the disabled path to a single
# attribute test and makes the capture explicit in each component.
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The registry instrumented components should record into, or None."""
    return _ACTIVE


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    return registry


def disable() -> None:
    """Deactivate telemetry; components built afterwards carry none."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def enabled(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scope within which newly built components are instrumented."""
    global _ACTIVE
    previous = _ACTIVE
    installed = enable(registry)
    try:
        yield installed
    finally:
        _ACTIVE = previous
