"""Per-UE SNR moving average.

The PHY maintains an exponentially-weighted moving average of each UE's
measured SNR (paper §4.2); the L2 uses the reported value for MCS
selection and to detect UE disconnection. Slingshot discards this filter
state on migration, so the destination PHY reports a default/stale value
until the filter reconverges (~25 ms in the paper), briefly biasing MCS
choice — another impairment the RAN absorbs naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


#: Default SNR a fresh PHY assumes for a UE before any measurement.
DEFAULT_SNR_DB = 10.0


@dataclass
class _FilterState:
    value_db: float
    samples: int


class SnrMovingAverage:
    """EWMA SNR tracker for all UEs served by one PHY process.

    ``alpha`` is the weight of each new sample. With one UL measurement
    per 2.5 ms (one UL slot per DDDSU period) and alpha = 0.1, the filter
    converges to within 1 dB of a step change in roughly 25 ms, matching
    the paper's reconvergence remark.
    """

    def __init__(self, alpha: float = 0.1, default_snr_db: float = DEFAULT_SNR_DB) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.default_snr_db = default_snr_db
        self._state: Dict[int, _FilterState] = {}

    def update(self, ue_id: int, measured_snr_db: float) -> float:
        """Fold one measurement into the UE's average; returns the new value."""
        state = self._state.get(ue_id)
        if state is None:
            state = _FilterState(value_db=measured_snr_db, samples=1)
            self._state[ue_id] = state
        else:
            state.value_db += self.alpha * (measured_snr_db - state.value_db)
            state.samples += 1
        return state.value_db

    def report(self, ue_id: int) -> float:
        """Current average for a UE (default if never measured)."""
        state = self._state.get(ue_id)
        return state.value_db if state is not None else self.default_snr_db

    def samples(self, ue_id: int) -> int:
        """Number of measurements folded in for a UE since last reset."""
        state = self._state.get(ue_id)
        return state.samples if state is not None else 0

    def converged(self, ue_id: int, min_samples: int = 10) -> bool:
        """True once the filter has seen enough samples to be trusted."""
        return self.samples(ue_id) >= min_samples

    def discard_all(self) -> None:
        """Drop all filter state (what PHY migration does)."""
        self._state.clear()

    def tracked_ues(self) -> int:
        return len(self._state)
