"""CRC-24A transport-block checksums.

5G NR attaches a 24-bit CRC to each transport block before LDPC encoding
(3GPP TS 38.212 uses the CRC24A polynomial for this). The CRC is what lets
the PHY declare a decode success/failure — the signal the whole HARQ
machinery, and therefore Slingshot's state-discarding argument, hinges on.
"""

from __future__ import annotations

import numpy as np

#: CRC24A generator polynomial (x^24 + x^23 + x^18 + x^17 + x^14 + x^11 +
#: x^10 + x^7 + x^6 + x^5 + x^4 + x^3 + x + 1), 3GPP TS 38.212 §5.1.
CRC24A_POLY = 0x1864CFB

#: Number of CRC bits appended.
CRC24_BITS = 24

# Precomputed byte-at-a-time table for speed.
_TABLE = np.zeros(256, dtype=np.uint32)
for _byte in range(256):
    _reg = _byte << 16
    for _ in range(8):
        _reg <<= 1
        if _reg & 0x1000000:
            _reg ^= CRC24A_POLY
    _TABLE[_byte] = _reg & 0xFFFFFF


def _bits_to_bytes_padded(bits: np.ndarray) -> np.ndarray:
    """Pack a bit array (MSB-first) into bytes, zero-padding the tail."""
    pad = (-len(bits)) % 8
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=bits.dtype)])
    return np.packbits(bits.astype(np.uint8))


def crc24a(bits: np.ndarray) -> int:
    """Compute the CRC24A of a bit array (MSB-first bit order).

    Bit arrays whose length is not a byte multiple are processed
    bit-serially for exactness.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if len(bits) % 8 == 0:
        register = 0
        for byte in _bits_to_bytes_padded(bits):
            index = ((register >> 16) ^ int(byte)) & 0xFF
            register = ((register << 8) ^ int(_TABLE[index])) & 0xFFFFFF
        return register
    register = 0
    for bit in bits:
        register ^= int(bit) << 23
        register <<= 1
        if register & 0x1000000:
            register ^= CRC24A_POLY
        register &= 0xFFFFFF
    return register


def attach_crc(payload_bits: np.ndarray) -> np.ndarray:
    """Append the 24 CRC bits (MSB-first) to a payload bit array."""
    payload_bits = np.asarray(payload_bits, dtype=np.uint8)
    crc = crc24a(payload_bits)
    crc_bits = np.array(
        [(crc >> shift) & 1 for shift in range(CRC24_BITS - 1, -1, -1)],
        dtype=np.uint8,
    )
    return np.concatenate([payload_bits, crc_bits])


def check_crc(block_bits: np.ndarray) -> bool:
    """True if the trailing 24 bits are a valid CRC of the rest."""
    block_bits = np.asarray(block_bits, dtype=np.uint8)
    if len(block_bits) <= CRC24_BITS:
        return False
    payload = block_bits[:-CRC24_BITS]
    received = 0
    for bit in block_bits[-CRC24_BITS:]:
        received = (received << 1) | int(bit)
    return crc24a(payload) == received
