"""CRC-24A transport-block checksums.

5G NR attaches a 24-bit CRC to each transport block before LDPC encoding
(3GPP TS 38.212 uses the CRC24A polynomial for this). The CRC is what lets
the PHY declare a decode success/failure — the signal the whole HARQ
machinery, and therefore Slingshot's state-discarding argument, hinges on.

Two implementations live here, per the repo's optimization convention:

* :func:`crc24a_reference` is the normative byte-at-a-time register loop
  (bit-serial for non-byte-multiple lengths), kept unoptimized;
* :func:`crc24a` / :func:`crc24a_batch` are the vectorized fast paths,
  fuzz-pinned identical to the reference (``tests/test_phy_crc.py``).

The vectorization rests on GF(2) linearity: the register recurrence
``r' = (r << 8) ^ TABLE[(r >> 16) ^ byte]`` splits into
``advance(r) ^ TABLE[byte]`` because ``TABLE`` is itself linear
(``TABLE[a ^ b] = TABLE[a] ^ TABLE[b]``), so the CRC of a message is
the XOR of one precomputed per-position contribution per byte — a
single gather + XOR-reduction instead of a Python loop, and across a
whole batch of transport blocks at once.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: CRC24A generator polynomial (x^24 + x^23 + x^18 + x^17 + x^14 + x^11 +
#: x^10 + x^7 + x^6 + x^5 + x^4 + x^3 + x + 1), 3GPP TS 38.212 §5.1.
CRC24A_POLY = 0x1864CFB

#: Number of CRC bits appended.
CRC24_BITS = 24


def _build_table() -> np.ndarray:
    """Byte-at-a-time CRC table, built with vectorized numpy bit ops.

    All 256 registers step through the 8 shift-and-conditional-XOR
    rounds together; identical to the scalar double loop it replaced.
    """
    registers = (np.arange(256, dtype=np.uint32)) << np.uint32(16)
    poly = np.uint32(CRC24A_POLY)
    for _ in range(8):
        registers = registers << np.uint32(1)
        registers ^= ((registers >> np.uint32(24)) & np.uint32(1)) * poly
    return registers & np.uint32(0xFFFFFF)


# Precomputed byte-at-a-time table for speed.
_TABLE = _build_table()

#: Per-position contribution tables, grown on demand: row ``p`` maps a
#: byte value to its contribution to the final CRC when it sits ``p``
#: bytes from the *end* of the message. Row 0 is ``_TABLE`` itself; row
#: ``p`` is row ``p - 1`` advanced by one zero byte. Deterministic by
#: construction, so fork workers inheriting a grown cache stay exact.
_POSITION_TABLES = _TABLE[np.newaxis, :].copy()


def _position_tables(length: int) -> np.ndarray:
    """At least ``length`` rows of per-position contribution tables."""
    global _POSITION_TABLES
    grown = _POSITION_TABLES
    if len(grown) < length:
        rows: List[np.ndarray] = [row for row in grown]
        current = grown[-1]
        while len(rows) < length:
            # advance-by-one-zero-byte, vectorized over all 256 entries.
            current = (
                (current << np.uint32(8)) ^ _TABLE[current >> np.uint32(16)]
            ) & np.uint32(0xFFFFFF)
            rows.append(current)
        _POSITION_TABLES = grown = np.stack(rows)
    return grown


def _bits_to_bytes_padded(bits: np.ndarray) -> np.ndarray:
    """Pack a bit array (MSB-first) into bytes, zero-padding the tail.

    Pure numpy: ``packbits`` zero-pads the final partial byte itself,
    which is exactly what the old explicit concatenate-then-pack did.
    """
    return np.packbits(bits.astype(np.uint8))


def _crc_bytes_serial(data: Sequence[int]) -> int:
    """Normative byte-at-a-time register loop."""
    register = 0
    for byte in data:
        index = ((register >> 16) ^ int(byte)) & 0xFF
        register = ((register << 8) ^ int(_TABLE[index])) & 0xFFFFFF
    return register


def _crc_bits_serial(bits: np.ndarray) -> int:
    """Normative bit-serial loop for non-byte-multiple lengths."""
    register = 0
    for bit in bits:
        register ^= int(bit) << 23
        register <<= 1
        if register & 0x1000000:
            register ^= CRC24A_POLY
        register &= 0xFFFFFF
    return register


def crc24a_reference(bits: np.ndarray) -> int:
    """Normative CRC24A of a bit array (MSB-first bit order).

    The pre-vectorization implementation, kept as the behaviour oracle:
    byte-at-a-time for byte-multiple lengths, bit-serial otherwise.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if len(bits) % 8 == 0:
        return _crc_bytes_serial(_bits_to_bytes_padded(bits))
    return _crc_bits_serial(bits)


def crc24a(bits: np.ndarray) -> int:
    """Compute the CRC24A of a bit array (MSB-first bit order).

    Vectorized fast path, fuzz-pinned identical to
    :func:`crc24a_reference`: one per-position table gather plus an
    XOR-reduction replaces the per-byte Python loop. Bit arrays whose
    length is not a byte multiple are processed bit-serially for
    exactness.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if len(bits) % 8 != 0:
        return _crc_bits_serial(bits)
    if len(bits) == 0:
        return 0
    data = np.packbits(bits)
    tables = _position_tables(len(data))
    contributions = tables[np.arange(len(data) - 1, -1, -1), data]
    return int(np.bitwise_xor.reduce(contributions))


def crc24a_batch(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """CRC24A of every bit-array block, vectorized across the batch.

    Returns a ``uint32`` array of per-block CRCs, each identical to
    ``crc24a(block)``. Byte-multiple blocks share one padded gather +
    XOR-reduction; rare non-byte-multiple blocks fall back to the exact
    bit-serial path.
    """
    crcs = np.zeros(len(blocks), dtype=np.uint32)
    packed: List[np.ndarray] = []
    packed_at: List[int] = []
    for index, block in enumerate(blocks):
        bits = np.asarray(block, dtype=np.uint8)
        if len(bits) % 8 != 0:
            crcs[index] = _crc_bits_serial(bits)
        elif len(bits):
            packed.append(np.packbits(bits))
            packed_at.append(index)
    if packed:
        lengths = np.array([len(data) for data in packed])
        width = int(lengths.max())
        matrix = np.zeros((len(packed), width), dtype=np.uint8)
        for row, data in enumerate(packed):
            matrix[row, : len(data)] = data
        # Byte j of a length-L block sits L-1-j bytes from the end.
        positions = lengths[:, np.newaxis] - 1 - np.arange(width)[np.newaxis, :]
        valid = positions >= 0
        tables = _position_tables(width)
        contributions = np.where(
            valid, tables[positions.clip(min=0), matrix], np.uint32(0)
        )
        crcs[packed_at] = np.bitwise_xor.reduce(contributions, axis=1)
    return crcs


#: MSB-first bit weights for expanding a 24-bit CRC into bits.
_CRC_SHIFTS = np.arange(CRC24_BITS - 1, -1, -1)


def crc_bits(crc: int) -> np.ndarray:
    """Expand a CRC value into its 24 bits, MSB first."""
    return ((int(crc) >> _CRC_SHIFTS) & 1).astype(np.uint8)


def attach_crc(payload_bits: np.ndarray) -> np.ndarray:
    """Append the 24 CRC bits (MSB-first) to a payload bit array."""
    payload_bits = np.asarray(payload_bits, dtype=np.uint8)
    return np.concatenate([payload_bits, crc_bits(crc24a(payload_bits))])


def attach_crc_batch(payloads: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Append CRC bits to every payload; batch-equivalent of
    :func:`attach_crc` (one CRC kernel call for the whole batch)."""
    crcs = crc24a_batch(payloads)
    all_crc_bits = (
        (crcs[:, np.newaxis] >> _CRC_SHIFTS[np.newaxis, :]) & 1
    ).astype(np.uint8)
    return [
        np.concatenate([np.asarray(payload, dtype=np.uint8), bits])
        for payload, bits in zip(payloads, all_crc_bits)
    ]


def check_crc(block_bits: np.ndarray) -> bool:
    """True if the trailing 24 bits are a valid CRC of the rest."""
    block_bits = np.asarray(block_bits, dtype=np.uint8)
    if len(block_bits) <= CRC24_BITS:
        return False
    payload = block_bits[:-CRC24_BITS]
    received = 0
    for bit in block_bits[-CRC24_BITS:]:
        received = (received << 1) | int(bit)
    return crc24a(payload) == received
