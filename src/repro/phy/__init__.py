"""5G PHY (layer-1) substrate.

A software PHY in the mold of Intel FlexRAN, with real (scaled-down)
signal processing so that the paper's central claim — that discarding
inter-TTI PHY state during migration merely looks like bad signal quality
and is absorbed by HARQ/RLC/TCP retransmission machinery — is exercised by
actual FEC math rather than assumed:

* CRC-24 attachment/checking (:mod:`repro.phy.crc`)
* LDPC encoding and belief-propagation decoding (:mod:`repro.phy.ldpc`)
* QAM modulation and soft (LLR) demodulation (:mod:`repro.phy.modulation`)
* AWGN channel with per-UE SNR (:mod:`repro.phy.channel`)
* HARQ chase combining with soft buffers (:mod:`repro.phy.harq`)
* per-UE SNR moving-average filter (:mod:`repro.phy.snr_filter`)
* OFDM numerology / frame structure (:mod:`repro.phy.numerology`)
* the PHY process itself with FlexRAN's pipelined slot processing
  (:mod:`repro.phy.process`)
"""

from repro.phy.crc import crc24a, attach_crc, check_crc, CRC24_BITS
from repro.phy.numerology import Numerology, SlotClock, TddPattern, SlotType
from repro.phy.modulation import Modulation, modulate, demodulate_llr
from repro.phy.ldpc import LdpcCode, LdpcDecodeResult
from repro.phy.channel import AwgnChannel, ChannelRealization, UeChannelModel
from repro.phy.harq import HarqBuffer, HarqProcessPool, HARQ_MAX_RETX
from repro.phy.snr_filter import SnrMovingAverage
from repro.phy.transport import TransportBlock, DecodeOutcome, LinkDirection
from repro.phy.codec import PhyCodec

# PhyProcess depends on the FAPI package, which itself imports this
# package's modulation module; export it lazily (PEP 562) to keep the
# import graph acyclic.
_LAZY_PROCESS_EXPORTS = ("PhyProcess", "PhyConfig", "PhyCellContext")


def __getattr__(name: str):
    if name in _LAZY_PROCESS_EXPORTS:
        from repro.phy import process as _process

        return getattr(_process, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "crc24a",
    "attach_crc",
    "check_crc",
    "CRC24_BITS",
    "Numerology",
    "SlotClock",
    "TddPattern",
    "SlotType",
    "Modulation",
    "modulate",
    "demodulate_llr",
    "LdpcCode",
    "LdpcDecodeResult",
    "AwgnChannel",
    "ChannelRealization",
    "UeChannelModel",
    "HarqBuffer",
    "HarqProcessPool",
    "HARQ_MAX_RETX",
    "SnrMovingAverage",
    "TransportBlock",
    "DecodeOutcome",
    "LinkDirection",
    "PhyCodec",
    "PhyProcess",
    "PhyConfig",
    "PhyCellContext",
]
