"""The PHY's encode/transmit/decode path.

:class:`PhyCodec` binds together the signal-processing primitives:

    payload bits -> CRC24 attach -> LDPC encode -> QAM modulate
        -> AWGN channel at the UE's realized SNR
        -> soft demodulate (LLRs) -> HARQ chase-combine -> LDPC decode
        -> CRC check -> DecodeOutcome

One representative LDPC codeword is processed per transport block; its
decode fate stands for the block's. The codec also exposes
:meth:`decode_garbage` for the migration window where fronthaul packets
are missing and the PHY effectively decodes noise (paper §4).

SNR measurement: the receiver estimates SNR from the noisy symbols the
way a real channel estimator would (here: directly from the realized
noise variance plus estimation error), and that measurement feeds the
:class:`~repro.phy.snr_filter.SnrMovingAverage`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.batch import ldpc_encode_batch, modulate_batch
from repro.phy.channel import AwgnChannel, ChannelRealization
from repro.phy.crc import CRC24_BITS, attach_crc, attach_crc_batch, check_crc
from repro.phy.harq import HarqProcessPool
from repro.phy.ldpc import LdpcCode, get_code
from repro.phy.modulation import Modulation, demodulate_llr, modulate
from repro.phy.transport import DecodeOutcome, TransportBlock


@dataclass
class CodecStats:
    """Aggregate decode statistics for one PHY process."""

    blocks_decoded: int = 0
    crc_failures: int = 0
    garbage_decodes: int = 0
    total_decoder_iterations: int = 0

    @property
    def block_error_rate(self) -> float:
        if self.blocks_decoded == 0:
            return 0.0
        return self.crc_failures / self.blocks_decoded


class PhyCodec:
    """Signal-processing engine shared by the PHY process and the UE modem.

    Parameters
    ----------
    rng:
        Noise stream for this receiver.
    decoder_iterations:
        Max LDPC BP iterations — the FEC-quality knob used by the
        live-upgrade experiment (more iterations = better decoding near
        threshold = the "upgraded PHY" of paper Fig 11).
    code:
        LDPC code instance; defaults to the cached n=648 rate-1/2 code.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        decoder_iterations: int = 8,
        code: Optional[LdpcCode] = None,
    ) -> None:
        self.rng = rng
        self.decoder_iterations = decoder_iterations
        self.code = code if code is not None else get_code()
        self.channel = AwgnChannel(rng)
        self.harq = HarqProcessPool()
        self.stats = CodecStats()
        #: Per-codeword payload bits (info bits minus CRC).
        self.payload_bits = self.code.k - CRC24_BITS

    # ------------------------------------------------------------------
    # Transmit side
    # ------------------------------------------------------------------
    def representative_bits(self, block: TransportBlock) -> np.ndarray:
        """Deterministic payload bits standing in for the block's data.

        Derived from the TB id so retransmissions encode the same bits and
        chase combining is coherent.
        """
        bit_rng = np.random.default_rng(block.tb_id)
        return bit_rng.integers(0, 2, size=self.payload_bits, dtype=np.uint8)

    def encode_block(self, block: TransportBlock) -> np.ndarray:
        """CRC-attach, LDPC-encode, and modulate one representative codeword."""
        payload = self.representative_bits(block)
        with_crc = attach_crc(payload)
        codeword = self.code.encode(with_crc)
        bps = block.modulation.bits_per_symbol
        pad = (-len(codeword)) % bps
        if pad:
            codeword = np.concatenate([codeword, np.zeros(pad, dtype=np.uint8)])
        return modulate(codeword, block.modulation)

    def encode_blocks(
        self, blocks: Sequence[TransportBlock]
    ) -> List[np.ndarray]:
        """Batched :meth:`encode_block` over a slot's transport blocks.

        One CRC gather, one LDPC matmul, and one modulation-map call per
        modulation order cover the whole batch; element ``i`` is
        bit-identical to ``encode_block(blocks[i])`` (the batch kernels
        in :mod:`repro.phy.batch` are pinned to the per-block paths).
        RNG-free, like :meth:`encode_block`, so callers may hoist it out
        of any per-block loop that draws channel noise without
        perturbing stream order.
        """
        if not blocks:
            return []
        payloads = [self.representative_bits(block) for block in blocks]
        with_crc = attach_crc_batch(payloads)
        codewords = ldpc_encode_batch(self.code, with_crc)
        bit_blocks: List[np.ndarray] = []
        for row, block in zip(codewords, blocks):
            pad = (-len(row)) % block.modulation.bits_per_symbol
            if pad:
                row = np.concatenate([row, np.zeros(pad, dtype=np.uint8)])
            bit_blocks.append(row)
        return modulate_batch(bit_blocks, [b.modulation for b in blocks])

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _measure_snr(self, realization: ChannelRealization) -> float:
        """Receiver SNR estimate: true SNR plus estimation error."""
        return realization.snr_db + float(self.rng.normal(0.0, 0.4))

    def decode_block(
        self,
        block: TransportBlock,
        realization: ChannelRealization,
        symbols: Optional[np.ndarray] = None,
    ) -> DecodeOutcome:
        """Run the full receive chain for one transmission of a block.

        ``symbols`` lets a caller supply the transmitted symbols it
        already produced via :meth:`encode_blocks`; omitted, they are
        re-encoded here (identical either way — encoding is RNG-free).
        """
        if symbols is None:
            symbols = self.encode_block(block)
        received = self.channel.apply(symbols, realization)
        llrs = demodulate_llr(received, block.modulation, realization.noise_var)
        llrs = llrs[: self.code.n]
        combined = self.harq.combine(
            block.ue_id, block.harq_process, block.tb_id, llrs, block.new_data
        )
        result = self.code.decode(combined, max_iterations=self.decoder_iterations)
        sent_payload = self.representative_bits(block)
        crc_ok = False
        if result.parity_ok:
            decoded_with_crc = result.info_bits
            crc_ok = check_crc(decoded_with_crc) and bool(
                np.array_equal(decoded_with_crc[: self.payload_bits], sent_payload)
            )
        buf = self.harq.buffer(block.ue_id, block.harq_process)
        combined_transmissions = buf.transmissions
        if crc_ok:
            self.harq.release(block.ue_id, block.harq_process)
        self.stats.blocks_decoded += 1
        self.stats.total_decoder_iterations += result.iterations_used
        if not crc_ok:
            self.stats.crc_failures += 1
        return DecodeOutcome(
            tb_id=block.tb_id,
            ue_id=block.ue_id,
            harq_process=block.harq_process,
            crc_ok=crc_ok,
            measured_snr_db=self._measure_snr(realization),
            decoder_iterations=result.iterations_used,
            combined_transmissions=combined_transmissions,
            data=block.data if crc_ok else None,
        )

    def decode_garbage(self, block: TransportBlock) -> DecodeOutcome:
        """Handle a block whose IQ samples never arrived (lost fronthaul
        packets or a grant the UE never received).

        Models the paper's observation that dropped fronthaul packets make
        the PHY process garbage-valued samples: demodulating pure noise
        cannot pass the CRC. Like a real receiver, the PHY gates HARQ soft
        combining on reference-signal (DMRS) detection, so a slot with no
        detectable transmission reports DTX/CRC-failure *without*
        polluting the process's soft buffer — a later retransmission still
        combines against whatever genuine transmissions preceded it.
        """
        noise_symbols = self.channel.garbage(
            (self.code.n + block.modulation.bits_per_symbol - 1)
            // block.modulation.bits_per_symbol
        )
        # The demodulation happens (and is paid for); DMRS correlation
        # against noise fails, so the LLRs are discarded before combining.
        demodulate_llr(noise_symbols, block.modulation, 1.0)
        self.stats.blocks_decoded += 1
        self.stats.garbage_decodes += 1
        self.stats.crc_failures += 1
        return DecodeOutcome(
            tb_id=block.tb_id,
            ue_id=block.ue_id,
            harq_process=block.harq_process,
            crc_ok=False,
            measured_snr_db=-5.0,
            decoder_iterations=0,
            combined_transmissions=self.harq.buffer(
                block.ue_id, block.harq_process
            ).transmissions,
            data=None,
        )
