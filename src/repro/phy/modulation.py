"""QAM modulation and soft demodulation.

Gray-mapped BPSK/QPSK/16-QAM/64-QAM with unit average symbol energy, plus
max-log LLR soft demodulation. The L2's MCS selection (driven by reported
SNR) picks the modulation order; the PHY's decoder consumes the LLRs.
"""

from __future__ import annotations

import enum
from typing import Dict

import numpy as np


class Modulation(enum.IntEnum):
    """Modulation orders used by the MAC's MCS table."""

    BPSK = 1
    QPSK = 2
    QAM16 = 4
    QAM64 = 6

    @property
    def bits_per_symbol(self) -> int:
        return int(self.value)


def _gray_pam_levels(bits: int) -> np.ndarray:
    """Amplitude levels of a Gray-coded 2^bits-PAM, indexed by Gray label.

    ``levels[label]`` is the (unnormalized) amplitude transmitted for the
    per-axis bit group ``label``.
    """
    count = 1 << bits
    # Natural binary order of amplitudes: -(count-1), ..., -1, 1, ..., count-1.
    amplitudes = 2 * np.arange(count) - (count - 1)
    levels = np.empty(count)
    for position, amplitude in enumerate(amplitudes):
        gray = position ^ (position >> 1)
        levels[gray] = amplitude
    return levels


# Per-axis Gray levels and normalization for each modulation.
_PAM_LEVELS: Dict[Modulation, np.ndarray] = {
    Modulation.QPSK: _gray_pam_levels(1),
    Modulation.QAM16: _gray_pam_levels(2),
    Modulation.QAM64: _gray_pam_levels(3),
}
_NORMS: Dict[Modulation, float] = {
    Modulation.BPSK: 1.0,
    Modulation.QPSK: np.sqrt(2.0),
    Modulation.QAM16: np.sqrt(10.0),
    Modulation.QAM64: np.sqrt(42.0),
}


def _bits_to_labels(bits: np.ndarray, width: int) -> np.ndarray:
    """Group a bit array into integer labels of ``width`` bits (MSB first)."""
    grouped = bits.reshape(-1, width)
    weights = 1 << np.arange(width - 1, -1, -1)
    return (grouped * weights).sum(axis=1)


def modulate(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Map bits to unit-energy complex symbols.

    The bit count must be a multiple of ``bits_per_symbol``. For QAM, the
    first half of each symbol's bits selects the I axis, the second half
    the Q axis (both Gray-coded).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    bps = modulation.bits_per_symbol
    if len(bits) % bps != 0:
        raise ValueError(f"bit count {len(bits)} not a multiple of {bps}")
    norm = _NORMS[modulation]
    if modulation is Modulation.BPSK:
        return ((1 - 2 * bits.astype(np.float64)) / norm).astype(np.complex128)
    axis_bits = bps // 2
    labels = _bits_to_labels(bits, bps)
    i_labels = labels >> axis_bits
    q_labels = labels & ((1 << axis_bits) - 1)
    levels = _PAM_LEVELS[modulation]
    symbols = (levels[i_labels] + 1j * levels[q_labels]) / norm
    return symbols


def _pam_llrs(y: np.ndarray, axis_bits: int, levels: np.ndarray, noise_var: float) -> np.ndarray:
    """Max-log LLRs for the per-axis PAM component.

    Returns an array of shape (len(y), axis_bits): LLR per bit, MSB first.
    Positive LLR favours bit 0.
    """
    count = 1 << axis_bits
    labels = np.arange(count)
    # Squared distance from each observation to each candidate level.
    dist = (y[:, None] - levels[None, :]) ** 2
    llrs = np.empty((len(y), axis_bits))
    for bit_index in range(axis_bits):
        mask = (labels >> (axis_bits - 1 - bit_index)) & 1
        d0 = dist[:, mask == 0].min(axis=1)
        d1 = dist[:, mask == 1].min(axis=1)
        llrs[:, bit_index] = (d1 - d0) / noise_var
    return llrs


def demodulate_llr(
    symbols: np.ndarray, modulation: Modulation, noise_var: float
) -> np.ndarray:
    """Soft-demodulate symbols into per-bit LLRs (positive favours 0).

    ``noise_var`` is the complex noise variance (per complex dimension
    total); the per-axis variance is half of it.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    noise_var = max(noise_var, 1e-12)
    norm = _NORMS[modulation]
    if modulation is Modulation.BPSK:
        return 4.0 * symbols.real / (norm * noise_var) * norm ** 0  # = 4*Re(y)/N0
    axis_bits = modulation.bits_per_symbol // 2
    levels = _PAM_LEVELS[modulation] / norm
    axis_noise = noise_var / 2.0
    i_llrs = _pam_llrs(symbols.real, axis_bits, levels, 2.0 * axis_noise)
    q_llrs = _pam_llrs(symbols.imag, axis_bits, levels, 2.0 * axis_noise)
    interleaved = np.concatenate([i_llrs, q_llrs], axis=1)
    return interleaved.reshape(-1)


def hard_decision(llrs: np.ndarray) -> np.ndarray:
    """Hard bits from LLRs (positive LLR → 0)."""
    return (np.asarray(llrs) < 0).astype(np.uint8)
