"""Batched PHY kernels: one numpy call per slot, not one per UE.

The scale-up counterpart to :mod:`repro.parallel`'s scale-out: where the
shard runner spreads independent runs across cores, these kernels make a
single run process **all transport blocks in a slot together** — CRC
attach, LDPC bit operations, and modulation map/demap each collapse from
a per-UE Python loop into one vectorized call.

Every batch kernel is pinned **byte-identical** to a loop over its
per-block reference (``tests/test_phy_batch.py`` fuzzes the pins), which
stays the normative implementation per the repo's optimization
convention. The pins are exact, not approximate: grouping blocks by
modulation and concatenating their bits feeds the very same elementwise
numpy operations the per-block calls run, so not a single float may
differ — and the golden macro-scenario digests enforce that end to end,
because :meth:`repro.phy.codec.PhyCodec.encode_blocks` drives the live
uplink slot pipeline through these kernels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.phy.ldpc import LdpcCode
from repro.phy.modulation import Modulation, demodulate_llr, modulate

__all__ = [
    "demodulate_llr_batch",
    "ldpc_encode_batch",
    "ldpc_syndrome_ok_batch",
    "modulate_batch",
]


def _groups_by_modulation(
    modulations: Sequence[Modulation],
) -> Dict[Modulation, List[int]]:
    """Input indices grouped by modulation, preserving input order."""
    groups: Dict[Modulation, List[int]] = {}
    for index, modulation in enumerate(modulations):
        groups.setdefault(modulation, []).append(index)
    return groups


def modulate_batch(
    bit_blocks: Sequence[np.ndarray],
    modulations: Sequence[Modulation],
) -> List[np.ndarray]:
    """Map every block's bits to symbols; one kernel call per modulation.

    Identical to ``[modulate(bits, mod) for ...]``: blocks sharing a
    modulation are concatenated (each block's bit count is already a
    multiple of bits-per-symbol, so symbol boundaries survive the
    concatenation), modulated in one call, and split back.
    """
    if len(bit_blocks) != len(modulations):
        raise ValueError("one modulation per bit block required")
    out: List[np.ndarray] = [np.empty(0)] * len(bit_blocks)
    for modulation, indices in _groups_by_modulation(modulations).items():
        blocks = [np.asarray(bit_blocks[i], dtype=np.uint8) for i in indices]
        symbols = modulate(np.concatenate(blocks), modulation)
        bps = modulation.bits_per_symbol
        bounds = np.cumsum([len(block) // bps for block in blocks])[:-1]
        for index, chunk in zip(indices, np.split(symbols, bounds)):
            out[index] = chunk
    return out


def demodulate_llr_batch(
    symbol_blocks: Sequence[np.ndarray],
    modulations: Sequence[Modulation],
    noise_vars: Sequence[float],
) -> List[np.ndarray]:
    """Soft-demodulate every block; one kernel call per modulation group.

    Identical to ``[demodulate_llr(sym, mod, nv) for ...]``. Blocks in a
    group may carry different noise variances: the divisions happen
    against a per-symbol noise vector holding each block's value, which
    is elementwise the same arithmetic the per-block call performs.
    """
    if not (len(symbol_blocks) == len(modulations) == len(noise_vars)):
        raise ValueError("blocks, modulations, and noise_vars must align")
    out: List[np.ndarray] = [np.empty(0)] * len(symbol_blocks)
    for modulation, indices in _groups_by_modulation(modulations).items():
        if len(indices) == 1:
            index = indices[0]
            out[index] = demodulate_llr(
                symbol_blocks[index], modulation, noise_vars[index]
            )
            continue
        blocks = [
            np.asarray(symbol_blocks[i], dtype=np.complex128) for i in indices
        ]
        counts = [len(block) for block in blocks]
        stacked = np.concatenate(blocks)
        per_symbol_nv = np.repeat(
            [max(noise_vars[i], 1e-12) for i in indices], counts
        )
        llrs = _demodulate_with_noise_vector(stacked, modulation, per_symbol_nv)
        bps = modulation.bits_per_symbol
        bounds = np.cumsum([count * bps for count in counts])[:-1]
        for index, chunk in zip(indices, np.split(llrs, bounds)):
            out[index] = chunk
    return out


def _demodulate_with_noise_vector(
    symbols: np.ndarray, modulation: Modulation, noise_var: np.ndarray
) -> np.ndarray:
    """``demodulate_llr`` generalized to a per-symbol noise vector.

    Mirrors :func:`repro.phy.modulation.demodulate_llr` operation for
    operation (same expressions, same order) so each element matches the
    scalar-noise call bit for bit.
    """
    from repro.phy.modulation import _NORMS, _PAM_LEVELS, _pam_llrs

    norm = _NORMS[modulation]
    if modulation is Modulation.BPSK:
        return 4.0 * symbols.real / (norm * noise_var) * norm ** 0
    axis_bits = modulation.bits_per_symbol // 2
    levels = _PAM_LEVELS[modulation] / norm
    axis_noise = noise_var / 2.0
    i_llrs = _pam_llrs(symbols.real, axis_bits, levels, 2.0 * axis_noise)
    q_llrs = _pam_llrs(symbols.imag, axis_bits, levels, 2.0 * axis_noise)
    interleaved = np.concatenate([i_llrs, q_llrs], axis=1)
    return interleaved.reshape(-1)


def ldpc_encode_batch(code: LdpcCode, info_blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Systematically encode a batch of info-bit blocks in one matmul.

    Returns a ``(B, n)`` uint8 codeword matrix; row ``i`` is identical
    to ``code.encode(info_blocks[i])`` (the parity generator matmul and
    mod-2 reduction are the same integer arithmetic, batched).
    """
    info = np.stack([np.asarray(block, dtype=np.uint8) for block in info_blocks])
    if info.shape[1] != code.k:
        raise ValueError(f"expected {code.k} info bits, got {info.shape[1]}")
    parity = (code._parity_gen @ info.T) % 2
    codewords = np.zeros((len(info), code.n), dtype=np.uint8)
    codewords[:, code._info_cols] = info
    codewords[:, code._parity_cols] = parity.T
    return codewords


def ldpc_syndrome_ok_batch(code: LdpcCode, hard_blocks: np.ndarray) -> np.ndarray:
    """Per-row parity verdicts for a ``(B, n)`` hard-bit matrix.

    Row ``i`` is True iff ``code.syndrome_ok(hard_blocks[i])``.
    """
    hard = np.asarray(hard_blocks, dtype=np.uint8)
    return ~(((code._h @ hard.T) % 2).any(axis=0))
