"""Wireless channel models.

Two layers:

* :class:`AwgnChannel` — symbol-level additive white Gaussian noise at a
  given SNR, used when a transmission is actually decoded.
* :class:`UeChannelModel` — per-UE slow SNR evolution (AR(1) shadowing
  around a mean plus occasional deeper fades), which gives each UE a
  distinct, time-varying link quality. This is what makes the paper's
  "PHY impairments resemble wireless impairments" argument observable:
  even without any migrations, UEs see natural SNR dips and decode
  failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def snr_db_to_noise_var(snr_db: float) -> float:
    """Complex noise variance for unit-energy symbols at the given SNR."""
    return 10.0 ** (-snr_db / 10.0)


@dataclass(frozen=True)
class ChannelRealization:
    """The channel state applied to one transmission."""

    snr_db: float

    @property
    def noise_var(self) -> float:
        return snr_db_to_noise_var(self.snr_db)


class AwgnChannel:
    """Applies AWGN to unit-energy symbols."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def apply(
        self, symbols: np.ndarray, realization: ChannelRealization
    ) -> np.ndarray:
        """Return symbols plus complex Gaussian noise at the realized SNR."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        sigma = np.sqrt(realization.noise_var / 2.0)
        noise = self.rng.normal(0.0, sigma, size=symbols.shape) + 1j * self.rng.normal(
            0.0, sigma, size=symbols.shape
        )
        return symbols + noise

    def garbage(self, count: int) -> np.ndarray:
        """Pure-noise 'symbols' standing in for missing fronthaul data.

        When fronthaul packets are lost during a migration, the PHY
        processes garbage-valued IQ samples (paper §4); decoding them is
        indistinguishable from decoding an extremely noisy channel.
        """
        sigma = np.sqrt(0.5)
        return self.rng.normal(0.0, sigma, size=count) + 1j * self.rng.normal(
            0.0, sigma, size=count
        )


class UeChannelModel:
    """Per-UE slowly-varying SNR process.

    ``snr(slot)`` is a mean SNR plus an AR(1) shadowing term updated per
    slot, with occasional short fade events that drop the SNR by several
    dB — producing the routine throughput/latency fluctuations visible at
    the edges of the paper's Fig 9.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_snr_db: float = 18.0,
        shadow_sigma_db: float = 1.2,
        correlation: float = 0.99,
        fade_probability: float = 0.0005,
        fade_depth_db: float = 6.0,
        fade_duration_slots: int = 20,
    ) -> None:
        if not 0.0 <= correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        self.rng = rng
        self.mean_snr_db = mean_snr_db
        self.shadow_sigma_db = shadow_sigma_db
        self.correlation = correlation
        self.fade_probability = fade_probability
        self.fade_depth_db = fade_depth_db
        self.fade_duration_slots = fade_duration_slots
        self._shadow_db = 0.0
        self._fade_until_slot = -1
        self._last_slot = -1

    def snr_for_slot(self, slot: int) -> ChannelRealization:
        """Advance the process to ``slot`` and return its realization.

        Slots must be queried in non-decreasing order; repeated queries for
        the same slot return the same realization.
        """
        if slot > self._last_slot:
            steps = min(slot - self._last_slot, 1000)
            innovation_sigma = self.shadow_sigma_db * np.sqrt(
                1.0 - self.correlation ** 2
            )
            for _ in range(steps):
                self._shadow_db = (
                    self.correlation * self._shadow_db
                    + float(self.rng.normal(0.0, innovation_sigma))
                )
            if self._fade_until_slot < slot:
                # Bernoulli fade arrival per queried slot.
                if float(self.rng.random()) < self.fade_probability * (
                    slot - self._last_slot
                ):
                    self._fade_until_slot = slot + self.fade_duration_slots
            self._last_slot = slot
        snr = self.mean_snr_db + self._shadow_db
        if slot <= self._fade_until_slot:
            snr -= self.fade_depth_db
        return ChannelRealization(snr_db=snr)
