"""Transport blocks and decode outcomes.

A transport block (TB) is the unit of data the MAC hands to the PHY for
one UE in one slot. Real 100 MHz TBs run to tens of kilobytes; the
simulation decodes one representative LDPC codeword per TB and applies its
fate to the whole block, with ``size_bytes`` recording the real size for
throughput accounting (see EXPERIMENTS.md, "scaling").

Payload convention (ns-3 style): ``data`` is a typed Python object (RLC
PDU list, raw bytes in tests); ``size_bytes`` is its declared on-the-wire
size, which drives all link and air-interface accounting.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.phy.modulation import Modulation


class LinkDirection(enum.Enum):
    """Uplink (UE → network) or downlink (network → UE)."""

    UPLINK = "UL"
    DOWNLINK = "DL"


_tb_ids = itertools.count(1)


@dataclass
class TransportBlock:
    """One MAC-to-PHY (or UE-to-RU) data unit.

    ``data`` is the payload object carried by the block (it reaches the
    receiving RLC on decode success); ``size_bytes`` is its declared wire
    size.
    """

    ue_id: int
    direction: LinkDirection
    harq_process: int
    modulation: Modulation
    prbs: int
    data: Any
    size_bytes: int = 0
    #: New-data indicator: False for HARQ retransmissions.
    new_data: bool = True
    #: Retransmission index (0 = original transmission).
    retx_index: int = 0
    #: Slot in which the block is (re)transmitted.
    slot: int = -1
    tb_id: int = field(default_factory=lambda: next(_tb_ids))

    def __post_init__(self) -> None:
        if self.size_bytes == 0 and isinstance(self.data, (bytes, bytearray)):
            self.size_bytes = len(self.data)

    @property
    def payload_bytes(self) -> int:
        return self.size_bytes

    def retransmission(self, slot: int) -> "TransportBlock":
        """Clone this block as its next HARQ retransmission."""
        return TransportBlock(
            ue_id=self.ue_id,
            direction=self.direction,
            harq_process=self.harq_process,
            modulation=self.modulation,
            prbs=self.prbs,
            data=self.data,
            size_bytes=self.size_bytes,
            new_data=False,
            retx_index=self.retx_index + 1,
            slot=slot,
            tb_id=self.tb_id,
        )


@dataclass(frozen=True)
class DecodeOutcome:
    """Result of the PHY's attempt to decode one transport block."""

    tb_id: int
    ue_id: int
    harq_process: int
    crc_ok: bool
    #: Measured SNR of this transmission (before filtering).
    measured_snr_db: float
    #: LDPC iterations used by the decoder.
    decoder_iterations: int
    #: Number of transmissions chase-combined (1 = no combining gain).
    combined_transmissions: int
    #: The decoded payload object; None when CRC failed.
    data: Optional[Any] = None
