"""HARQ soft-combining retransmission buffers.

5G's Hybrid ARQ keeps the soft LLRs of failed decodes and chase-combines
them with retransmissions, so each retry decodes against an effectively
higher SNR. A HARQ sequence is one original transmission plus up to three
retransmissions (paper §4.2); failures that survive all retries fall
through to RLC/TCP retransmission.

Slingshot deliberately discards these buffers during PHY migration: the
destination PHY starts with empty buffers, a mid-sequence retransmission
loses its combining gain, and the decode may fail — which is exactly a
routine bad-channel event from the rest of the stack's perspective. The
stress test (paper Table 2, "interrupted HARQ seqs") counts how often
that happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

#: Maximum retransmissions after the original transmission.
HARQ_MAX_RETX = 3

#: Number of parallel HARQ processes per UE (NR allows up to 16).
HARQ_NUM_PROCESSES = 8


@dataclass
class HarqBuffer:
    """Soft buffer for one HARQ process of one UE."""

    #: Accumulated LLRs from prior failed transmissions (None when fresh).
    soft_llrs: Optional[np.ndarray] = None
    #: Number of transmissions already combined into the buffer.
    transmissions: int = 0
    #: New-data indicator bookkeeping: which TB occupies the process.
    tb_id: Optional[int] = None

    def combine(self, llrs: np.ndarray) -> np.ndarray:
        """Chase-combine new LLRs into the buffer and return the sum."""
        if self.soft_llrs is None:
            self.soft_llrs = np.array(llrs, dtype=np.float64)
        else:
            self.soft_llrs = self.soft_llrs + llrs
        self.transmissions += 1
        return self.soft_llrs

    def clear(self) -> None:
        """Release the buffer (after success or sequence exhaustion)."""
        self.soft_llrs = None
        self.transmissions = 0
        self.tb_id = None

    @property
    def occupied(self) -> bool:
        return self.soft_llrs is not None


@dataclass
class HarqCombineStats:
    """Counters describing combining activity, for overhead/impact analyses."""

    combines: int = 0
    fresh_starts: int = 0
    cleared: int = 0
    lost_to_migration: int = 0


class HarqProcessPool:
    """All HARQ buffers held by one PHY process, keyed by (UE id, process id).

    This *is* the inter-TTI soft state the paper argues can be discarded:
    :meth:`discard_all` models what migration does to it.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[int, int], HarqBuffer] = {}
        self.stats = HarqCombineStats()

    def buffer(self, ue_id: int, process_id: int) -> HarqBuffer:
        """Get (creating if needed) the buffer for a UE's HARQ process."""
        key = (ue_id, process_id)
        buf = self._buffers.get(key)
        if buf is None:
            buf = HarqBuffer()
            self._buffers[key] = buf
        return buf

    def combine(
        self, ue_id: int, process_id: int, tb_id: int, llrs: np.ndarray, new_data: bool
    ) -> np.ndarray:
        """Record one (re)transmission and return the combined LLRs.

        ``new_data`` mirrors the NDI bit: a new TB flushes whatever the
        process held. A retransmission whose buffer was discarded (e.g. by
        migration) combines against nothing and is counted as interrupted.
        """
        buf = self.buffer(ue_id, process_id)
        if new_data or buf.tb_id != tb_id:
            if not new_data and buf.tb_id != tb_id:
                # Retransmission arrived but the buffer holds nothing for
                # this TB: the sequence was interrupted.
                self.stats.lost_to_migration += 1
            buf.clear()
            buf.tb_id = tb_id
            self.stats.fresh_starts += 1
        self.stats.combines += 1
        return buf.combine(llrs)

    def release(self, ue_id: int, process_id: int) -> None:
        """Free a process after decode success or sequence exhaustion."""
        key = (ue_id, process_id)
        buf = self._buffers.get(key)
        if buf is not None and buf.occupied:
            self.stats.cleared += 1
        if buf is not None:
            buf.clear()

    def occupied_count(self) -> int:
        """Number of processes currently holding soft bits."""
        return sum(1 for buf in self._buffers.values() if buf.occupied)

    def soft_bytes(self, bytes_per_llr: int = 2) -> int:
        """Approximate memory held in soft buffers (the state migration skips)."""
        total = 0
        for buf in self._buffers.values():
            if buf.soft_llrs is not None:
                total += len(buf.soft_llrs) * bytes_per_llr
        return total

    def discard_all(self) -> int:
        """Drop every soft buffer (what PHY migration does). Returns count dropped."""
        dropped = 0
        for buf in self._buffers.values():
            if buf.occupied:
                dropped += 1
            buf.clear()
        return dropped
