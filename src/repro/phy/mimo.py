"""Massive-MIMO inter-slot state (paper §10, future work).

Massive-MIMO PHYs maintain long-lived soft state: downlink precoding
(beamforming) and uplink equalization (zero-forcing) matrices derived
from channel estimates accumulated over tens to hundreds of slots of
sounding. The paper notes this is *still* discardable soft state — a
migrated-to PHY simply re-estimates — but with a possibly larger
transient UE impact than the small-antenna case.

:class:`BeamformingTracker` models that state at the fidelity the
migration question needs: per-UE effective array gain that

* rises toward the full array gain as sounding observations accumulate
  (channel estimates sharpen),
* decays as estimates go stale (channel aging between soundings), and
* vanishes entirely when the state is discarded (PHY migration),
  degrading the UE's effective SNR until re-sounding reconverges.

The extension experiment (``repro.experiments.ext_massive_mimo``)
measures the post-migration throughput transient with and without this
state in play.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class MimoConfig:
    """Array and estimation parameters."""

    #: Antennas at the base station (64 is the common massive-MIMO size).
    num_antennas: int = 64
    #: Fraction of the ideal array gain a single sounding provides.
    gain_per_sounding: float = 0.12
    #: Slots of staleness after which an estimate has lost half its value.
    aging_half_life_slots: int = 200

    @property
    def max_gain_db(self) -> float:
        """Ideal coherent array gain: 10·log10(N) for N antennas."""
        import math

        return 10.0 * math.log10(self.num_antennas)


@dataclass
class _UeBeamState:
    #: Estimate quality in [0, 1]: fraction of ideal gain realized.
    quality: float = 0.0
    #: Slot of the most recent sounding folded in.
    last_sounding_slot: int = -1


class BeamformingTracker:
    """Per-UE beamforming/equalization state for one PHY process.

    This is the §10 soft state: ``discard_all`` models migration, after
    which every UE's effective gain restarts from zero and reconverges
    one sounding at a time.
    """

    def __init__(self, config: Optional[MimoConfig] = None) -> None:
        self.config = config or MimoConfig()
        self._state: Dict[int, _UeBeamState] = {}
        self.soundings_processed = 0
        self.discards = 0

    def _aged_quality(self, state: _UeBeamState, slot: int) -> float:
        if state.last_sounding_slot < 0:
            return 0.0
        age = max(slot - state.last_sounding_slot, 0)
        decay = 0.5 ** (age / self.config.aging_half_life_slots)
        return state.quality * decay

    def on_sounding(self, ue_id: int, slot: int) -> float:
        """Fold one sounding (SRS) observation in; returns the new gain (dB).

        Quality approaches 1.0 geometrically: each sounding closes a
        fixed fraction of the remaining gap, so reconvergence after a
        discard takes tens of soundings — the "tens to hundreds of
        slots" horizon the paper cites.
        """
        state = self._state.setdefault(ue_id, _UeBeamState())
        current = self._aged_quality(state, slot)
        state.quality = current + self.config.gain_per_sounding * (1.0 - current)
        state.last_sounding_slot = slot
        self.soundings_processed += 1
        return self.gain_db(ue_id, slot)

    def gain_db(self, ue_id: int, slot: int) -> float:
        """Effective array gain for a UE at a slot (0 dB when untracked)."""
        state = self._state.get(ue_id)
        if state is None:
            return 0.0
        return self._aged_quality(state, slot) * self.config.max_gain_db

    def tracked_ues(self) -> int:
        return len(self._state)

    def state_bytes(self) -> int:
        """Rough memory footprint of the full matrices this stands in for.

        Per UE: an N-antenna complex channel estimate per PRB-group plus
        the derived precoder row — the multi-megabyte state §10 notes is
        impractical to transfer within the availability target.
        """
        per_ue = self.config.num_antennas * 2 * 4 * 273  # complex64 x PRBs.
        return len(self._state) * per_ue

    def discard_all(self) -> int:
        """Drop everything (what PHY migration does). Returns UEs affected."""
        affected = len(self._state)
        self._state.clear()
        self.discards += 1
        return affected
