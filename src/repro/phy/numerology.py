"""OFDM numerology and TDD frame structure.

The reproduced cell matches the paper's testbed: 100 MHz bandwidth at
3.5 GHz with 30 kHz subcarrier spacing (numerology µ = 1, 500 µs slots),
time-division duplexing with a "DDDSU" slot format — three downlink slots,
a special/guard slot, then one uplink slot.

The slot/subframe/frame counters defined here are the same fields carried
in O-RAN fronthaul packet headers, which Slingshot's switch middlebox
parses to align migration to TTI boundaries (paper §5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.sim.units import US

#: Slots per 1 ms subframe for numerology mu=1 (30 kHz SCS).
SLOTS_PER_SUBFRAME_MU1 = 2

#: Subframes per 10 ms radio frame.
SUBFRAMES_PER_FRAME = 10

#: Frame number wraps at 1024 (3GPP system frame number is 10 bits).
MAX_FRAME = 1024


class SlotType(enum.Enum):
    """Link direction of a TDD slot."""

    DOWNLINK = "D"
    SPECIAL = "S"
    UPLINK = "U"


@dataclass(frozen=True)
class TddPattern:
    """A repeating TDD slot-format pattern, e.g. "DDDSU"."""

    pattern: str = "DDDSU"

    def __post_init__(self) -> None:
        valid = set("DSU")
        if not self.pattern or any(ch not in valid for ch in self.pattern):
            raise ValueError(f"invalid TDD pattern {self.pattern!r}")

    def slot_type(self, slot_index: int) -> SlotType:
        """Slot type for an absolute slot counter."""
        return SlotType(self.pattern[slot_index % len(self.pattern)])

    @property
    def period(self) -> int:
        return len(self.pattern)

    def slots_of_type(self, slot_type: SlotType) -> int:
        """Number of slots of a type within one pattern period."""
        return sum(1 for ch in self.pattern if ch == slot_type.value)


@dataclass(frozen=True)
class Numerology:
    """OFDM numerology parameters."""

    #: 3GPP numerology index; 1 → 30 kHz SCS, 500 µs slots.
    mu: int = 1
    #: Channel bandwidth in MHz (display only; PRB count is the real knob).
    bandwidth_mhz: float = 100.0
    #: Physical resource blocks available (273 for 100 MHz @ 30 kHz).
    num_prbs: int = 273
    #: OFDM symbols per slot (normal cyclic prefix).
    symbols_per_slot: int = 14
    #: Subcarriers per PRB.
    subcarriers_per_prb: int = 12

    @property
    def slot_duration_ns(self) -> int:
        """Slot (TTI) duration: 1 ms / 2^mu."""
        return (1000 * US) >> self.mu

    @property
    def slots_per_subframe(self) -> int:
        return 1 << self.mu

    @property
    def slots_per_frame(self) -> int:
        return SUBFRAMES_PER_FRAME * self.slots_per_subframe

    def resource_elements_per_slot(self, prbs: int) -> int:
        """Modulation symbols carried by ``prbs`` PRBs in one slot.

        Uses 12 of 14 symbols for data (2 reserved for DMRS/control), the
        standard first-order overhead assumption.
        """
        data_symbols = self.symbols_per_slot - 2
        return prbs * self.subcarriers_per_prb * data_symbols


@dataclass(frozen=True)
class SlotAddress:
    """(frame, subframe, slot) triple — the timing fields in O-RAN headers."""

    frame: int
    subframe: int
    slot: int

    def __str__(self) -> str:
        return f"{self.frame}.{self.subframe}.{self.slot}"


class SlotClock:
    """Maps simulated time to slot counters and O-RAN header fields."""

    def __init__(self, numerology: Numerology, epoch_ns: int = 0) -> None:
        self.numerology = numerology
        self.epoch_ns = epoch_ns

    @property
    def slot_duration_ns(self) -> int:
        return self.numerology.slot_duration_ns

    def slot_at(self, time_ns: int) -> int:
        """Absolute slot counter containing ``time_ns``."""
        return (time_ns - self.epoch_ns) // self.slot_duration_ns

    def slot_start(self, slot: int) -> int:
        """Start time of an absolute slot."""
        return self.epoch_ns + slot * self.slot_duration_ns

    def address_of(self, slot: int) -> SlotAddress:
        """O-RAN (frame, subframe, slot-in-subframe) address of a slot."""
        per_subframe = self.numerology.slots_per_subframe
        per_frame = self.numerology.slots_per_frame
        frame = (slot // per_frame) % MAX_FRAME
        within = slot % per_frame
        return SlotAddress(
            frame=frame,
            subframe=within // per_subframe,
            slot=within % per_subframe,
        )

    def absolute_from_address(self, address: SlotAddress, near_slot: int) -> int:
        """Invert :meth:`address_of` near a reference absolute slot.

        O-RAN headers carry only the wrapped (frame, subframe, slot); the
        switch resolves them against its notion of "around now". The
        nearest absolute slot with the given address is returned.
        """
        per_subframe = self.numerology.slots_per_subframe
        per_frame = self.numerology.slots_per_frame
        wrap = MAX_FRAME * per_frame
        within = (
            address.frame * per_frame
            + address.subframe * per_subframe
            + address.slot
        )
        base = (near_slot // wrap) * wrap
        candidates = [base - wrap + within, base + within, base + wrap + within]
        return min(candidates, key=lambda s: abs(s - near_slot))
