"""LDPC forward error correction.

5G NR protects transport blocks with LDPC codes (3GPP TS 38.212). This
module implements a regular LDPC code with:

* deterministic, seeded construction of a (dv, dc)-regular parity-check
  matrix (configuration-model graph with double-edge repair),
* systematic encoding via GF(2) Gaussian elimination, and
* vectorized normalized-min-sum belief-propagation decoding over LLRs.

The decoder's iteration count is a first-class knob: the live-upgrade
experiment (paper Fig 11) emulates "a PHY with better FEC" as a secondary
PHY configured with more decoding iterations, which measurably lowers the
block error rate near the decoding threshold.

Chase-combining HARQ (:mod:`repro.phy.harq`) simply sums received LLRs
across (re)transmissions before calling :meth:`LdpcCode.decode`, so the
retransmission gain is real, and a migrated-away HARQ buffer produces a
real decoding penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class LdpcDecodeResult:
    """Outcome of one belief-propagation decode."""

    #: Hard-decision bits for the information positions (length k).
    info_bits: np.ndarray
    #: True if the decoder converged to a valid codeword (zero syndrome).
    parity_ok: bool
    #: Iterations actually run (early stop on convergence).
    iterations_used: int


def _build_regular_graph(
    n: int, dv: int, dc: int, rng: np.random.Generator
) -> np.ndarray:
    """Build a (dv, dc)-regular bipartite graph as a check-to-variable index matrix.

    Returns an (m, dc) integer array where row j lists the variable nodes
    adjacent to check node j. Double edges are repaired by re-shuffling the
    offending stubs; regular codes at these sizes repair within a few passes.
    """
    if (n * dv) % dc != 0:
        raise ValueError(f"n*dv must be divisible by dc (n={n}, dv={dv}, dc={dc})")
    m = n * dv // dc
    stubs = np.repeat(np.arange(n), dv)
    for _ in range(200):
        rng.shuffle(stubs)
        adjacency = stubs.reshape(m, dc)
        # Detect rows with duplicate variable nodes.
        sorted_rows = np.sort(adjacency, axis=1)
        has_dup = (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any(axis=1)
        if not has_dup.any():
            return adjacency
        # Re-shuffle only the stubs of the duplicate rows together with a
        # random batch of clean stubs so the repair can make progress.
        dup_rows = np.where(has_dup)[0]
        dup_slots = (dup_rows[:, None] * dc + np.arange(dc)).ravel()
        n_extra = min(len(stubs) - len(dup_slots), len(dup_slots) + dc)
        clean_slots = rng.choice(
            np.setdiff1d(np.arange(len(stubs)), dup_slots),
            size=n_extra,
            replace=False,
        )
        mix = np.concatenate([dup_slots, clean_slots])
        shuffled = stubs[mix]
        rng.shuffle(shuffled)
        stubs[mix] = shuffled
    raise RuntimeError("failed to build a simple regular graph; try another seed")


def _gf2_systemize(h: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-reduce H over GF(2) into [A | I] form via column pivoting.

    Returns ``(h_reduced, parity_cols, info_cols)`` where ``parity_cols``
    are the pivot columns (one per check) and ``info_cols`` the rest.
    Raises if H is rank-deficient (caller retries with a new graph seed).
    """
    h = h.copy() % 2
    m, n = h.shape
    parity_cols = []
    used = np.zeros(n, dtype=bool)
    for row in range(m):
        pivot_col = -1
        for col in range(n):
            if not used[col] and h[row, col]:
                pivot_col = col
                break
        if pivot_col < 0:
            raise np.linalg.LinAlgError("parity-check matrix is rank deficient")
        used[pivot_col] = True
        parity_cols.append(pivot_col)
        # Eliminate this column from all other rows.
        others = h[:, pivot_col].astype(bool)
        others[row] = False
        h[others] ^= h[row]
    info_cols = np.array([c for c in range(n) if not used[c]], dtype=np.int64)
    return h, np.array(parity_cols, dtype=np.int64), info_cols


class LdpcCode:
    """A (dv, dc)-regular LDPC code with systematic encoding and min-sum decoding.

    Parameters
    ----------
    n:
        Codeword length in bits. Default 648 (a standard short-block size).
    dv, dc:
        Variable/check node degrees; (3, 6) gives rate 1/2.
    seed:
        Seed for the deterministic graph construction.
    normalization:
        Normalized-min-sum scaling factor.
    """

    def __init__(
        self,
        n: int = 648,
        dv: int = 3,
        dc: int = 6,
        seed: int = 7,
        normalization: float = 0.8,
    ) -> None:
        self.n = n
        self.dv = dv
        self.dc = dc
        self.normalization = normalization
        rng = np.random.default_rng(seed)
        for attempt in range(50):
            self.chk_to_var = _build_regular_graph(n, dv, dc, rng)
            self.m = self.chk_to_var.shape[0]
            h = np.zeros((self.m, n), dtype=np.uint8)
            rows = np.repeat(np.arange(self.m), dc)
            h[rows, self.chk_to_var.ravel()] = 1
            try:
                h_red, parity_cols, info_cols = _gf2_systemize(h)
            except np.linalg.LinAlgError:
                continue
            self._h = h
            self._parity_cols = parity_cols
            self._info_cols = info_cols
            # For parity computation: h_red restricted to info columns gives
            # parity[j] = sum_i h_red[j, info_cols[i]] * u[i] (mod 2).
            self._parity_gen = h_red[:, info_cols].astype(np.uint8)
            break
        else:
            raise RuntimeError("could not construct a full-rank LDPC code")
        self.k = len(self._info_cols)
        # Flat edge indexing for the decoder.
        self._edge_var = self.chk_to_var.ravel()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode ``k`` information bits into an ``n``-bit codeword."""
        info_bits = np.asarray(info_bits, dtype=np.uint8)
        if info_bits.shape != (self.k,):
            raise ValueError(f"expected {self.k} info bits, got {info_bits.shape}")
        parity = (self._parity_gen @ info_bits) % 2
        codeword = np.zeros(self.n, dtype=np.uint8)
        codeword[self._info_cols] = info_bits
        codeword[self._parity_cols] = parity
        return codeword

    def extract_info(self, codeword: np.ndarray) -> np.ndarray:
        """Pull the information bits out of a codeword."""
        return np.asarray(codeword, dtype=np.uint8)[self._info_cols]

    def syndrome_ok(self, hard_bits: np.ndarray) -> bool:
        """True if ``hard_bits`` satisfies all parity checks."""
        return not ((self._h @ hard_bits) % 2).any()

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, llr: np.ndarray, max_iterations: int = 8) -> LdpcDecodeResult:
        """Normalized-min-sum BP decode of channel LLRs.

        LLR convention: positive LLR favours bit 0.
        """
        llr = np.asarray(llr, dtype=np.float64)
        if llr.shape != (self.n,):
            raise ValueError(f"expected {self.n} LLRs, got {llr.shape}")
        m, dc = self.m, self.dc
        edge_var = self._edge_var
        c2v = np.zeros((m, dc), dtype=np.float64)
        hard = (llr < 0).astype(np.uint8)
        iterations = 0
        if self.syndrome_ok(hard):
            info = np.zeros(self.n, dtype=np.uint8)
            info[:] = hard
            return LdpcDecodeResult(info[self._info_cols], True, 0)
        for iterations in range(1, max_iterations + 1):
            # Variable-node totals: channel LLR + sum of incoming messages.
            totals = llr + np.bincount(
                edge_var, weights=c2v.ravel(), minlength=self.n
            )
            v2c = totals[edge_var].reshape(m, dc) - c2v
            # Check-node update (normalized min-sum).
            signs = np.sign(v2c)
            signs[signs == 0] = 1.0
            row_sign = signs.prod(axis=1, keepdims=True)
            magnitude = np.abs(v2c)
            order = np.argsort(magnitude, axis=1)
            min1 = magnitude[np.arange(m), order[:, 0]]
            min2 = magnitude[np.arange(m), order[:, 1]]
            out_mag = np.broadcast_to(min1[:, None], (m, dc)).copy()
            out_mag[np.arange(m), order[:, 0]] = min2
            c2v = self.normalization * row_sign * signs * out_mag
            # Hard decision + early stop.
            totals = llr + np.bincount(
                edge_var, weights=c2v.ravel(), minlength=self.n
            )
            hard = (totals < 0).astype(np.uint8)
            if self.syndrome_ok(hard):
                return LdpcDecodeResult(hard[self._info_cols], True, iterations)
        return LdpcDecodeResult(hard[self._info_cols], False, iterations)

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LdpcCode n={self.n} k={self.k} ({self.dv},{self.dc})-regular>"


#: Process-wide cache of constructed codes (construction costs ~100 ms).
_CODE_CACHE: dict = {}


def get_code(
    n: int = 648, dv: int = 3, dc: int = 6, seed: int = 7
) -> LdpcCode:
    """Return a cached :class:`LdpcCode` for the given parameters."""
    key = (n, dv, dc, seed)
    code = _CODE_CACHE.get(key)
    if code is None:
        code = LdpcCode(n=n, dv=dv, dc=dc, seed=seed)
        _CODE_CACHE[key] = code
    return code
