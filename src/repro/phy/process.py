"""The PHY process (Intel FlexRAN stand-in).

A :class:`PhyProcess` is one layer-1 application instance on a vRAN
server. It speaks FAPI on one side (toward its Orion peer or directly to
an L2) and O-RAN fronthaul on the other (toward the RU, through the edge
switch), and behaves like the commercial black box Slingshot must not
modify:

* it requires valid UL_TTI and DL_TTI requests **every slot** once
  started, and crashes after a few consecutive missing slots (§6.2);
* it emits downlink C-plane fronthaul packets in **every** slot — the
  natural heartbeat the in-switch failure detector watches (§5.2.1) —
  with realistic transmit-time jitter, so the measured maximum
  inter-packet gap lands near the paper's 393 µs;
* it processes uplink slots through a three-slot pipeline (Fig 7):
  indications for slot N are delivered to the L2 during slot N+2, so an
  already-failed-over primary keeps producing output for pre-boundary
  slots, which Orion keeps accepting;
* it holds the inter-TTI soft state of §4.2 (HARQ buffers, SNR filter)
  that migration deliberately discards;
* per-slot CPU cost is accounted, so the null-FAPI overhead claim (§8.5)
  is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fapi.channels import ShmChannel
from repro.fapi.messages import (
    ConfigRequest,
    CrcIndication,
    CrcResult,
    DlTtiRequest,
    FapiMessage,
    HarqFeedback,
    RxDataIndication,
    SlotIndication,
    StartRequest,
    StopRequest,
    TxDataRequest,
    UciIndication,
    UlTtiRequest,
)
from repro.fronthaul.oran import (
    CplaneMessage,
    DlAllocation,
    UlGrant,
    UplaneDownlink,
    UplaneUplink,
    UplaneUplinkControlOnly,
)
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.phy.channel import ChannelRealization
from repro.phy.codec import PhyCodec
from repro.phy.mimo import BeamformingTracker
from repro.phy.numerology import SlotClock, TddPattern
from repro.phy.snr_filter import SnrMovingAverage
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.engine import EventHandle, PeriodicHandle, Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.units import US


@dataclass
class PhyConfig:
    """Tunables of one PHY process."""

    #: Max LDPC belief-propagation iterations (the FEC-quality knob; the
    #: "upgraded PHY" of Fig 11 uses a higher value).
    decoder_iterations: int = 8
    #: Consecutive slots without TTI requests before the process crashes.
    max_missing_tti_slots: int = 4
    #: Lead time before the over-the-air slot at which DL packets are sent.
    tx_lead_ns: int = 80 * US
    #: Uplink pipeline depth in slots (FlexRAN uses 3; Fig 7).
    ul_pipeline_slots: int = 2
    #: CPU cost model, in core-microseconds per slot.
    cpu_null_slot_us: float = 1.0
    cpu_per_ul_pdu_us: float = 60.0
    cpu_per_dl_pdu_us: float = 35.0
    cpu_per_prb_us: float = 0.9
    #: Identity of the vRAN stack this PHY belongs to (see
    #: :class:`repro.fronthaul.oran.CplaneMessage`).
    vran_instance_id: int = 1
    #: Massive-MIMO mode (§10 extension): maintain per-UE beamforming
    #: state whose array gain boosts the effective uplink SNR; the state
    #: is soft and discarded on migration like HARQ buffers.
    massive_mimo: bool = False


@dataclass
class PhyCpuStats:
    """Accumulated compute usage (for the §8.5 overhead analysis)."""

    busy_core_us: float = 0.0
    slots_processed: int = 0
    null_slots: int = 0
    work_slots: int = 0
    fec_decodes: int = 0

    def utilization(self, elapsed_us: float) -> float:
        """Average core utilization over ``elapsed_us`` of wall time."""
        if elapsed_us <= 0:
            return 0.0
        return self.busy_core_us / elapsed_us


@dataclass
class PhyCellContext:
    """Per-cell (per-RU) state inside a PHY process."""

    cell_id: int
    ru_id: int
    configured: bool = False
    started: bool = False
    ul_tti: Dict[int, UlTtiRequest] = field(default_factory=dict)
    dl_tti: Dict[int, DlTtiRequest] = field(default_factory=dict)
    tx_data: Dict[int, Dict[int, bytes]] = field(default_factory=dict)
    #: Captured uplink transmissions per slot, keyed by (slot, ue_id).
    captures: Dict[Tuple[int, int], UplaneUplink] = field(default_factory=dict)
    #: Control-only feedback captures per slot.
    feedback_only: Dict[int, List[Tuple[int, int, int, bool]]] = field(default_factory=dict)
    #: Buffer status reports decoded per slot: {slot: {ue_id: bytes}}.
    bsr: Dict[int, Dict[int, int]] = field(default_factory=dict)
    consecutive_missing_tti: int = 0


class PhyProcess(Process):
    """One software PHY instance, fail-stop, FAPI-driven, fronthaul-emitting."""

    def __init__(
        self,
        sim: Simulator,
        phy_id: int,
        mac: MacAddress,
        slot_clock: SlotClock,
        tdd: TddPattern,
        rng: np.random.Generator,
        config: Optional[PhyConfig] = None,
        uplink: Optional[Link] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "phy",
    ) -> None:
        super().__init__(sim, name)
        self.phy_id = phy_id
        self.mac = mac
        self.slot_clock = slot_clock
        self.tdd = tdd
        self.rng = rng
        self.config = config or PhyConfig()
        self.uplink = uplink
        self.trace = trace
        self.codec = PhyCodec(rng, decoder_iterations=self.config.decoder_iterations)
        self.snr_filter = SnrMovingAverage()
        self.beamforming = BeamformingTracker() if self.config.massive_mimo else None
        self.cells: Dict[int, PhyCellContext] = {}
        self.cpu = PhyCpuStats()
        self.alive = True
        #: Gray failure: wedged worker threads — the transmit thread's
        #: heartbeats continue but FAPI output stops (set via hang()).
        self.hung = False
        #: Gray failure: extra per-slot uplink pipeline latency.
        self.service_inflation_ns = 0
        #: FAPI channel back toward the L2 / Orion peer.
        self.fapi_tx: Optional[ShmChannel] = None
        #: Optional fleet-wide vectorized encode backend
        #: (:class:`repro.fleet.phy_backend.FleetPhyBackend`); None keeps
        #: the per-cell ``codec.encode_blocks`` path.
        self.phy_backend: Optional[object] = None
        self._pending: List[EventHandle] = []
        self._tick_handle: Optional[PeriodicHandle] = None
        self._schedule_next_slot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self, reason: str = "killed") -> None:
        """Fail-stop: cease all processing and emission immediately."""
        if not self.alive:
            return
        self.alive = False
        if self._tick_handle is not None:
            self._tick_handle.cancel()
        for handle in self._pending:
            handle.cancel()
        self._pending.clear()
        if self.trace is not None:
            self.trace.record(self.now, "phy.crash", phy=self.phy_id, reason=reason)

    def hang(self, reason: str = "wedged") -> None:
        """Gray failure: the PHY worker pool wedges (e.g. a deadlocked
        pipeline stage) while the realtime transmit thread keeps sending
        fronthaul heartbeats — invisible to the in-switch detector."""
        if not self.alive or self.hung:
            return
        # In-flight emissions and pipeline stages complete (only *new*
        # work wedges) — cancelling them would tear a hole in the
        # heartbeat cadence that the in-switch detector would see, and a
        # hang is precisely the failure it cannot see.
        self.hung = True
        if self.trace is not None:
            self.trace.record(self.now, "phy.hang", phy=self.phy_id, reason=reason)

    def unhang(self) -> None:
        """Clear a hang (the wedged stage recovers)."""
        if not self.hung:
            return
        self.hung = False
        if self.trace is not None:
            self.trace.record(self.now, "phy.unhang", phy=self.phy_id)

    def restart(self, decoder_iterations: Optional[int] = None) -> None:
        """Bring the process back up, empty (used for upgrade rollarounds).

        All cells must be re-configured and re-started via FAPI; soft
        state is gone, exactly as after a real process restart.
        """
        if self.alive:
            return
        if decoder_iterations is not None:
            self.config.decoder_iterations = decoder_iterations
        self.codec = PhyCodec(
            self.rng, decoder_iterations=self.config.decoder_iterations
        )
        self.snr_filter = SnrMovingAverage()
        self.cells.clear()
        self.alive = True
        self.hung = False
        self.service_inflation_ns = 0
        self._schedule_next_slot()
        if self.trace is not None:
            self.trace.record(self.now, "phy.restart", phy=self.phy_id)

    # ------------------------------------------------------------------
    # FAPI receive path (from PHY-side Orion or the L2 directly)
    # ------------------------------------------------------------------
    def receive_fapi(self, message: FapiMessage, channel: ShmChannel) -> None:
        if not self.alive:
            return
        cell = self.cells.get(message.cell_id)
        if isinstance(message, ConfigRequest):
            cell = PhyCellContext(cell_id=message.cell_id, ru_id=message.ru_id)
            cell.configured = True
            self.cells[message.cell_id] = cell
            return
        if cell is None:
            return
        if isinstance(message, StartRequest):
            cell.started = True
        elif isinstance(message, StopRequest):
            cell.started = False
        elif isinstance(message, UlTtiRequest):
            cell.ul_tti[message.slot] = message
        elif isinstance(message, DlTtiRequest):
            cell.dl_tti[message.slot] = message
        elif isinstance(message, TxDataRequest):
            cell.tx_data.setdefault(message.slot, {}).update(dict(message.payloads))

    # ------------------------------------------------------------------
    # Fronthaul receive path (UL U-plane from the switch)
    # ------------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        if not self.alive:
            return
        payload = frame.payload
        if isinstance(payload, UplaneUplink):
            cell = self._cell_for_ru(payload.ru_id)
            if cell is not None:
                cell.captures[(payload.abs_slot, payload.block.ue_id)] = payload
                if payload.dl_feedback:
                    cell.feedback_only.setdefault(payload.abs_slot, []).extend(
                        payload.dl_feedback
                    )
                cell.bsr.setdefault(payload.abs_slot, {})[
                    payload.block.ue_id
                ] = payload.bsr_bytes
        elif isinstance(payload, UplaneUplinkControlOnly):
            cell = self._cell_for_ru(payload.ru_id)
            if cell is not None:
                if payload.dl_feedback:
                    cell.feedback_only.setdefault(payload.abs_slot, []).extend(
                        payload.dl_feedback
                    )
                if payload.ue_id >= 0:
                    cell.bsr.setdefault(payload.abs_slot, {})[
                        payload.ue_id
                    ] = payload.bsr_bytes

    def _cell_for_ru(self, ru_id: int) -> Optional[PhyCellContext]:
        for cell in self.cells.values():
            if cell.ru_id == ru_id:
                return cell
        return None

    # ------------------------------------------------------------------
    # Slot engine
    # ------------------------------------------------------------------
    def _schedule_next_slot(self) -> None:
        """Arm the per-slot tick (wheel lane) at the next transmit deadline."""
        next_slot = self.slot_clock.slot_at(self.now + self.config.tx_lead_ns) + 1
        fire_at = self.slot_clock.slot_start(next_slot) - self.config.tx_lead_ns
        self._tick_handle = self.sim.schedule_periodic(
            self.slot_clock.slot_duration_ns,
            self._slot_tick,
            first_at=fire_at,
            label=f"{self.name}.tick",
        )

    def _slot_tick(self) -> None:
        if not self.alive:
            return
        # Fires tx_lead_ns before each slot boundary, so the target slot
        # is the one containing now + lead.
        abs_slot = self.slot_clock.slot_at(self.now + self.config.tx_lead_ns)
        for cell in self.cells.values():
            if cell.started:
                self._process_cell_slot(cell, abs_slot)

    def _tx_jitter_ns(self) -> int:
        """Transmit-time jitter for the slot's first DL packet.

        A clipped normal around the nominal lead plus a rare heavy tail
        (realtime-thread scheduling hiccups); calibrated so the maximum
        observed inter-packet gap approaches but never exceeds the
        detector budget (≈390 µs observed vs the 450 µs timeout).
        """
        base = float(self.rng.normal(10.0, 8.0))
        if float(self.rng.random()) < 0.02:
            base += float(self.rng.uniform(40.0, 140.0))
        return round(max(0.0, min(base, 140.0)) * US)

    def _process_cell_slot(self, cell: PhyCellContext, abs_slot: int) -> None:
        ul_req = cell.ul_tti.pop(abs_slot, None)
        dl_req = cell.dl_tti.pop(abs_slot, None)
        if self.hung:
            # Wedged workers: requests are consumed but never processed
            # and no FAPI response is produced; only the transmit
            # thread's heartbeat C-plane still reaches the fronthaul.
            self._emit_downlink(cell, abs_slot, [], [])
            stale = abs_slot - self.config.ul_pipeline_slots
            cell.captures = {k: v for k, v in cell.captures.items() if k[0] > stale}
            cell.feedback_only = {
                s: v for s, v in cell.feedback_only.items() if s > stale
            }
            cell.bsr = {s: v for s, v in cell.bsr.items() if s > stale}
            return
        if ul_req is None and dl_req is None:
            cell.consecutive_missing_tti += 1
            if cell.consecutive_missing_tti >= self.config.max_missing_tti_slots:
                self.crash(reason="missing TTI requests")
            return
        cell.consecutive_missing_tti = 0
        self.cpu.slots_processed += 1
        ul_pdus = ul_req.pdus if ul_req is not None else []
        dl_pdus = dl_req.pdus if dl_req is not None else []
        if not ul_pdus and not dl_pdus:
            self.cpu.null_slots += 1
            self.cpu.busy_core_us += self.config.cpu_null_slot_us
        else:
            self.cpu.work_slots += 1
            self.cpu.busy_core_us += (
                self.config.cpu_null_slot_us
                + len(ul_pdus) * self.config.cpu_per_ul_pdu_us
                + len(dl_pdus) * self.config.cpu_per_dl_pdu_us
                + sum(p.prbs for p in ul_pdus + dl_pdus) * self.config.cpu_per_prb_us
            )
        self._emit_downlink(cell, abs_slot, ul_pdus, dl_pdus)
        self._emit_slot_indication(cell, abs_slot)
        if ul_pdus or True:
            # Uplink slot results surface after the processing pipeline,
            # even when only control (feedback) was captured.
            done_at = (
                self.slot_clock.slot_start(abs_slot + self.config.ul_pipeline_slots)
                + 120 * US
                + self.service_inflation_ns
            )
            handle = self.sim.at(
                done_at,
                self._finish_uplink,
                cell,
                abs_slot,
                ul_pdus,
                label=f"{self.name}.ul_done",
            )
            if self.phy_backend is not None:
                self.phy_backend.register(done_at, self, cell, abs_slot, ul_pdus)
            self._pending.append(handle)
            if len(self._pending) > 64:
                self._pending = [h for h in self._pending if h.pending]

    # ------------------------------------------------------------------
    # Downlink emission (the heartbeat + DL data)
    # ------------------------------------------------------------------
    def _emit_downlink(
        self,
        cell: PhyCellContext,
        abs_slot: int,
        ul_pdus,
        dl_pdus,
    ) -> None:
        address = self.slot_clock.address_of(abs_slot)
        grants = [
            UlGrant(
                ue_id=p.ue_id,
                harq_process=p.harq_process,
                modulation=p.modulation,
                prbs=p.prbs,
                new_data=p.new_data,
                tb_id=p.tb_id,
                tb_bytes=p.tb_bytes,
                retx_index=p.retx_index,
            )
            for p in ul_pdus
        ]
        allocations = [
            DlAllocation(
                ue_id=p.ue_id,
                harq_process=p.harq_process,
                modulation=p.modulation,
                prbs=p.prbs,
                new_data=p.new_data,
                tb_id=p.tb_id,
                retx_index=p.retx_index,
            )
            for p in dl_pdus
        ]
        cplane = CplaneMessage(
            ru_id=cell.ru_id,
            address=address,
            abs_slot=abs_slot,
            ul_grants=grants,
            dl_allocations=allocations,
            source_phy_id=self.phy_id,
            vran_instance_id=self.config.vran_instance_id,
        )
        first_tx = self._tx_jitter_ns()
        self._send_fronthaul_at(self.now + first_tx, cplane, cplane.wire_bytes)
        # DL U-plane data for each allocation, paced across the early slot.
        payloads = cell.tx_data.pop(abs_slot, {})
        offset = first_tx + 20 * US
        for pdu in dl_pdus:
            data = payloads.get(pdu.tb_id)
            block = TransportBlock(
                ue_id=pdu.ue_id,
                direction=LinkDirection.DOWNLINK,
                harq_process=pdu.harq_process,
                modulation=pdu.modulation,
                prbs=pdu.prbs,
                data=data,
                size_bytes=pdu.tb_bytes,
                new_data=pdu.new_data,
                retx_index=pdu.retx_index,
                slot=abs_slot,
                tb_id=pdu.tb_id,
            )
            packet = UplaneDownlink(
                ru_id=cell.ru_id,
                address=address,
                abs_slot=abs_slot,
                block=block,
                source_phy_id=self.phy_id,
            )
            self._send_fronthaul_at(self.now + offset, packet, packet.wire_bytes)
            offset += 8 * US
        # Second C-plane section packet mid-slot (symbol-group sections);
        # keeps the heartbeat cadence dense within the slot.
        mid = CplaneMessage(
            ru_id=cell.ru_id,
            address=address,
            abs_slot=abs_slot,
            ul_grants=[],
            dl_allocations=[],
            source_phy_id=self.phy_id,
            vran_instance_id=self.config.vran_instance_id,
        )
        mid_offset = self.config.tx_lead_ns + 250 * US + round(
            float(self.rng.uniform(0.0, 50.0)) * US
        )
        self._send_fronthaul_at(self.now + mid_offset, mid, mid.wire_bytes)

    def _send_fronthaul_at(self, when: int, payload, wire_bytes: int) -> None:
        handle = self.sim.at(
            max(when, self.now),
            self._send_fronthaul_now,
            payload,
            wire_bytes,
            label=f"{self.name}.fh_tx",
        )
        self._pending.append(handle)

    def _send_fronthaul_now(self, payload, wire_bytes: int) -> None:
        if not self.alive or self.uplink is None:
            return
        frame = EthernetFrame(
            src=self.mac,
            dst=MacAddress(0),  # Rewritten by the switch toward the RU port.
            ethertype=EtherType.ECPRI,
            payload=payload,
            wire_bytes=wire_bytes,
        )
        self.uplink.send(frame)

    def _emit_slot_indication(self, cell: PhyCellContext, abs_slot: int) -> None:
        if self.fapi_tx is not None:
            self.fapi_tx.send(SlotIndication(cell_id=cell.cell_id, slot=abs_slot))

    # ------------------------------------------------------------------
    # Uplink pipeline completion
    # ------------------------------------------------------------------
    def _finish_uplink(self, cell: PhyCellContext, abs_slot: int, ul_pdus) -> None:
        if not self.alive:
            return
        crc_results: List[CrcResult] = []
        rx_payloads: List[Tuple[int, int, int, bytes]] = []
        # Pop every capture up front (same pop order as the old per-pdu
        # loop) and batch-encode the captured blocks in one pass — the
        # encode stage is RNG-free, so hoisting it leaves the channel /
        # measurement RNG draw order, and hence every digest, untouched.
        captured = [
            (pdu, cell.captures.pop((abs_slot, pdu.ue_id), None))
            for pdu in ul_pdus
        ]
        blocks = [capture.block for _, capture in captured if capture is not None]
        if self.phy_backend is not None:
            # Fleet backend: one batched kernel invocation covers every
            # cell completing at this instant; element-for-element
            # identical to the per-cell call below.
            encoded = iter(self.phy_backend.encode_blocks(self, blocks))
        else:
            encoded = iter(self.codec.encode_blocks(blocks))
        for pdu, capture in captured:
            if capture is None:
                # Nothing arrived on the fronthaul for this allocation
                # (lost packets or UE never got the grant): the PHY
                # processes garbage samples (§4).
                block = TransportBlock(
                    ue_id=pdu.ue_id,
                    direction=LinkDirection.UPLINK,
                    harq_process=pdu.harq_process,
                    modulation=pdu.modulation,
                    prbs=pdu.prbs,
                    data=None,
                    size_bytes=pdu.tb_bytes,
                    new_data=pdu.new_data,
                    retx_index=pdu.retx_index,
                    slot=abs_slot,
                    tb_id=pdu.tb_id,
                )
                outcome = self.codec.decode_garbage(block)
            else:
                realization = capture.realization
                if self.beamforming is not None:
                    # Massive MIMO: the accumulated beam gain lifts the
                    # effective SNR; this capture also serves as a
                    # sounding observation sharpening the estimate.
                    gain = self.beamforming.gain_db(pdu.ue_id, abs_slot)
                    realization = ChannelRealization(
                        snr_db=realization.snr_db + gain
                    )
                    self.beamforming.on_sounding(pdu.ue_id, abs_slot)
                outcome = self.codec.decode_block(
                    capture.block, realization, symbols=next(encoded)
                )
                self.snr_filter.update(pdu.ue_id, outcome.measured_snr_db)
            self.cpu.fec_decodes += 1
            crc_results.append(
                CrcResult(
                    ue_id=pdu.ue_id,
                    harq_process=pdu.harq_process,
                    tb_id=pdu.tb_id,
                    crc_ok=outcome.crc_ok,
                    measured_snr_db=self.snr_filter.report(pdu.ue_id),
                    retx_index=pdu.retx_index,
                )
            )
            if outcome.crc_ok and outcome.data is not None:
                rx_payloads.append(
                    (pdu.ue_id, pdu.harq_process, pdu.tb_id, outcome.data)
                )
        feedback = [
            HarqFeedback(ue_id=ue, harq_process=hp, tb_id=tb, ack=ack)
            for (ue, hp, tb, ack) in cell.feedback_only.pop(abs_slot, [])
        ]
        bsr_reports = sorted(cell.bsr.pop(abs_slot, {}).items())
        if self.fapi_tx is not None:
            if crc_results:
                self.fapi_tx.send(
                    CrcIndication(cell_id=cell.cell_id, slot=abs_slot, results=crc_results)
                )
            if rx_payloads:
                self.fapi_tx.send(
                    RxDataIndication(
                        cell_id=cell.cell_id, slot=abs_slot, payloads=rx_payloads
                    )
                )
            if feedback or bsr_reports:
                self.fapi_tx.send(
                    UciIndication(
                        cell_id=cell.cell_id,
                        slot=abs_slot,
                        feedback=feedback,
                        bsr_reports=bsr_reports,
                    )
                )
        # Drop stale captures so memory stays bounded.
        stale = [key for key in cell.captures if key[0] < abs_slot - 8]
        for key in stale:
            del cell.captures[key]

    # ------------------------------------------------------------------
    # Introspection (the state migration would have to copy)
    # ------------------------------------------------------------------
    def soft_state_bytes(self) -> int:
        """Bytes of inter-TTI soft state currently held (HARQ buffers,
        plus beamforming matrices in massive-MIMO mode)."""
        total = self.codec.harq.soft_bytes()
        if self.beamforming is not None:
            total += self.beamforming.state_bytes()
        return total

    def discard_soft_state(self) -> int:
        """Drop HARQ + SNR (+ beamforming) state, as a fresh
        post-migration PHY has none."""
        dropped = self.codec.harq.discard_all()
        self.snr_filter.discard_all()
        if self.beamforming is not None:
            dropped += self.beamforming.discard_all()
        return dropped
