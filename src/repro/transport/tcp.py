"""Simplified-but-behavioural TCP.

Implements the mechanisms that shape the paper's TCP results (Fig 10):
sliding window with in-order delivery, slow start + AIMD congestion
avoidance, duplicate-ACK fast retransmit with fast recovery, an RTO with
exponential backoff, and SRTT/RTTVAR estimation (RFC 6298 style).

During a PHY failover a burst of in-flight segments is lost; the
receiver's in-order requirement stalls delivery at the gap, goodput
drops to zero, and fast retransmit / RTO recovery refills the pipe —
the 80 ms zero-throughput window and the 157 Mb/s catch-up burst in the
paper's uplink plot fall out of exactly this machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import Process
from repro.sim.units import MS, SECOND
from repro.transport.packet import FlowDirection, Packet

#: TCP header bytes attributed to each segment.
TCP_HEADER_BYTES = 20


@dataclass
class TcpConfig:
    """Transport tunables (defaults tuned for a cellular-latency path)."""

    mss_bytes: int = 1200
    initial_cwnd_segments: int = 10
    #: Minimum retransmission timeout. Linux uses 200 ms; the paper's
    #: 110 ms recovery implies fast retransmit usually wins the race.
    min_rto_ns: int = 200 * MS
    max_rto_ns: int = 4 * SECOND
    #: Duplicate ACKs that trigger fast retransmit.
    dupack_threshold: int = 3
    #: Receiver window in segments (ample; radio is the bottleneck).
    receive_window_segments: int = 2048
    #: Delayed-ACK: ack every segment (cellular stacks mostly do).
    ack_every: int = 1
    #: Max segments released per ACK event (Linux-style burst cap; an
    #: uncapped release on recovery exit would smash the bottleneck
    #: queue and immediately re-enter loss).
    max_burst_segments: int = 10
    #: RACK reordering window bounds. Radio links reorder heavily (a
    #: HARQ retransmission delays one TB's worth of segments by several
    #: ms while later TBs sail past), so loss is declared by *time* —
    #: a segment is lost only when one sent sufficiently later has been
    #: delivered — rather than by dupack counting.
    rack_reo_wnd_min_ns: int = 6 * MS
    rack_reo_wnd_max_ns: int = 40 * MS


_segment_ids = itertools.count(1)


@dataclass
class TcpSegment:
    """One TCP segment (data or pure ACK)."""

    flow_id: str
    seq: int                      # First data byte index carried.
    length: int                   # Data bytes carried (0 for pure ACK).
    ack: int                      # Cumulative ack: next byte expected.
    segment_id: int = field(default_factory=lambda: next(_segment_ids))
    #: Timestamp echoed for RTT sampling (sender sets on transmit).
    ts_echo: int = 0
    #: SACK blocks: up to four (start, end) received ranges above ack.
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    #: Sender-local transmit time (refreshed on retransmission); drives
    #: RACK loss detection.
    sent_at: int = 0

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER_BYTES + self.length + 8 * len(self.sack_blocks)


@dataclass
class TcpSenderStats:
    segments_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    rto_events: int = 0
    bytes_acked: int = 0


class TcpSender(Process):
    """Bulk-data TCP sender (the iperf -c side)."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        ue_id: int,
        bearer_id: int,
        direction: FlowDirection,
        transmit: Callable[[Packet], None],
        config: Optional[TcpConfig] = None,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"tcp-tx:{flow_id}")
        self.flow_id = flow_id
        self.ue_id = ue_id
        self.bearer_id = bearer_id
        self.direction = direction
        self.transmit = transmit
        self.config = config or TcpConfig()
        self.stats = TcpSenderStats()
        # Connection state.
        self.snd_una = 0              # Oldest unacked byte.
        self.snd_nxt = 0              # Next byte to send.
        self.cwnd = self.config.initial_cwnd_segments * self.config.mss_bytes
        self.ssthresh = 64 * 1024 * 1024
        self.in_fast_recovery = False
        self._recover = 0
        self._dupacks = 0
        # RTT estimation (RFC 6298).
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: int = 0
        self.rto_ns = self.config.min_rto_ns
        self._rto_handle: Optional[EventHandle] = None
        # SACK scoreboard (RFC 6675) + RACK (time-based loss detection):
        #: Unacked segments by seq (for retransmission).
        self._flight: Dict[int, TcpSegment] = {}
        #: Seqs the receiver reported holding out of order (SACK).
        self._sacked: set = set()
        #: Seqs marked lost and awaiting retransmission.
        self._lost: set = set()
        #: Latest transmit time among delivered (acked/sacked) segments:
        #: RACK's reference point — anything sent a reordering-window
        #: earlier and still undelivered is presumed lost.
        self._rack_time = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the (pre-established) connection and start pushing data."""
        if self._running:
            return
        self._running = True
        self._fill_window()

    def stop(self) -> None:
        self._running = False
        if self._rto_handle is not None:
            self._rto_handle.cancel()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def _window(self) -> int:
        rwnd = self.config.receive_window_segments * self.config.mss_bytes
        return min(int(self.cwnd), rwnd)

    def _pipe(self) -> int:
        """Estimated bytes currently in the network (RFC 6675 'pipe'):
        everything in flight except what SACK says arrived and what has
        been marked lost but not yet retransmitted."""
        mss = self.config.mss_bytes
        outstanding = len(self._flight) - len(self._sacked) - len(self._lost)
        return max(outstanding, 0) * mss

    def _fill_window(self) -> None:
        """Send while the pipe has room: lost retransmissions first,
        then new data (conservation of packets), bounded per ACK event
        by the burst cap."""
        if not self._running:
            return
        mss = self.config.mss_bytes
        sent = 0
        while (
            self._pipe() + mss <= self._window()
            and sent < self.config.max_burst_segments
        ):
            sent += 1
            if self._lost:
                seq = min(self._lost)
                self._lost.discard(seq)
                self._retransmit_one(seq)
                continue
            segment = TcpSegment(
                flow_id=self.flow_id,
                seq=self.snd_nxt,
                length=mss,
                ack=0,
                ts_echo=self.now,
            )
            self.snd_nxt += mss
            self._flight[segment.seq] = segment
            self._emit(segment)
        self._arm_rto()

    def _emit(self, segment: TcpSegment) -> None:
        segment.sent_at = self.now
        self.stats.segments_sent += 1
        packet = Packet(
            flow_id=self.flow_id,
            ue_id=self.ue_id,
            bearer_id=self.bearer_id,
            direction=self.direction,
            payload=segment,
            size_bytes=segment.wire_bytes,
            created_ns=self.now,
            seq=segment.segment_id,
        )
        self.transmit(packet)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _apply_sack(self, segment: TcpSegment) -> None:
        for start, end in segment.sack_blocks:
            for seq in list(self._flight):
                if start <= seq and seq + self._flight[seq].length <= end:
                    if seq not in self._sacked:
                        self._sacked.add(seq)
                        self._rack_time = max(
                            self._rack_time, self._flight[seq].sent_at
                        )

    def _reo_wnd(self) -> int:
        """RACK reordering window: a fraction of the smoothed RTT,
        clamped to cover radio-layer (HARQ) reordering."""
        base = (self.srtt_ns or self.config.min_rto_ns) // 3
        return min(
            max(base, self.config.rack_reo_wnd_min_ns),
            self.config.rack_reo_wnd_max_ns,
        )

    def _rack_mark_lost(self) -> None:
        """Mark undelivered segments sent a reordering-window before the
        newest *delivered* segment as lost. Retransmissions refresh their
        send time, so a lost retransmission is re-detected naturally."""
        deadline = self._rack_time - self._reo_wnd()
        for seq, segment in self._flight.items():
            if seq in self._sacked or seq in self._lost:
                continue
            if segment.sent_at <= deadline:
                self._lost.add(seq)

    def on_ack(self, segment: TcpSegment) -> None:
        """Handle an incoming (possibly duplicate/SACK-bearing) ACK."""
        mss = self.config.mss_bytes
        self._apply_sack(segment)
        if segment.ack > self.snd_una:
            newly_acked = segment.ack - self.snd_una
            self.stats.bytes_acked += newly_acked
            # Clear acked scoreboard entries; acked data counts as
            # delivered for RACK.
            for seq in [s for s in self._flight if s < segment.ack]:
                self._rack_time = max(self._rack_time, self._flight[seq].sent_at)
                del self._flight[seq]
            self._sacked = {s for s in self._sacked if s >= segment.ack}
            self._lost = {s for s in self._lost if s >= segment.ack}
            self.snd_una = segment.ack
            self._dupacks = 0
            if segment.ts_echo:
                self._sample_rtt(self.now - segment.ts_echo)
            if self.in_fast_recovery and segment.ack >= self._recover:
                # Recovery complete: deflate to the halved window.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
            elif not self.in_fast_recovery:
                if self.cwnd < self.ssthresh:
                    self.cwnd += newly_acked  # Slow start.
                else:
                    self.cwnd += mss * mss / max(self.cwnd, 1.0)  # AIMD.
            self._arm_rto(reset=True)
        elif segment.ack == self.snd_una and self.flight_size > 0:
            self._dupacks += 1
        # RACK: (re)assess losses on every ACK; enter recovery when a
        # loss is first established.
        self._rack_mark_lost()
        if self._lost and not self.in_fast_recovery:
            self._enter_fast_recovery()
        self._fill_window()

    def _enter_fast_recovery(self) -> None:
        self.stats.fast_retransmits += 1
        self.ssthresh = max(self._pipe() / 2, 2 * self.config.mss_bytes)
        self.cwnd = self.ssthresh
        self.in_fast_recovery = True
        self._recover = self.snd_nxt
        # Guarantee the front hole goes out even when the pipe is full.
        if self.snd_una in self._lost:
            self._lost.discard(self.snd_una)
            self._retransmit_one(self.snd_una)

    def _retransmit_one(self, seq: int) -> None:
        segment = self._flight.get(seq)
        if segment is None:
            return
        self.stats.retransmissions += 1
        refreshed = TcpSegment(
            flow_id=segment.flow_id,
            seq=segment.seq,
            length=segment.length,
            ack=0,
            ts_echo=0,  # Karn's algorithm: no RTT sample from retransmits.
        )
        self._flight[seq] = refreshed
        self._emit(refreshed)

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------
    def _sample_rtt(self, rtt_ns: int) -> None:
        if rtt_ns <= 0:
            return
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
        else:
            delta = abs(self.srtt_ns - rtt_ns)
            self.rttvar_ns = (3 * self.rttvar_ns + delta) // 4
            self.srtt_ns = (7 * self.srtt_ns + rtt_ns) // 8
        self.rto_ns = min(
            max(self.srtt_ns + 4 * self.rttvar_ns, self.config.min_rto_ns),
            self.config.max_rto_ns,
        )

    def _arm_rto(self, reset: bool = False) -> None:
        if self._rto_handle is not None and (reset or not self._rto_handle.pending):
            self._rto_handle.cancel()
            self._rto_handle = None
        if self.flight_size == 0:
            return
        if self._rto_handle is None or not self._rto_handle.pending:
            self._rto_handle = self.call_after(self.rto_ns, self._on_rto)

    def _on_rto(self) -> None:
        if not self._running or self.flight_size == 0:
            return
        self.stats.rto_events += 1
        self.ssthresh = max(self._pipe() / 2, 2 * self.config.mss_bytes)
        self.cwnd = self.config.mss_bytes
        self.in_fast_recovery = False
        self._dupacks = 0
        self.rto_ns = min(self.rto_ns * 2, self.config.max_rto_ns)
        # Everything unsacked is presumed lost; slow start retransmits
        # the backlog under the collapsed window.
        self._lost = {s for s in self._flight if s not in self._sacked}
        self._lost.discard(self.snd_una)
        self._retransmit_one(self.snd_una)
        self._arm_rto(reset=True)


class TcpReceiver(Process):
    """TCP receiver (the iperf -s side): in-order delivery + cumulative ACKs."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        ue_id: int,
        bearer_id: int,
        ack_direction: FlowDirection,
        transmit_ack: Callable[[Packet], None],
        bin_ns: int = 10 * MS,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"tcp-rx:{flow_id}")
        self.flow_id = flow_id
        self.ue_id = ue_id
        self.bearer_id = bearer_id
        self.ack_direction = ack_direction
        self.transmit_ack = transmit_ack
        self.bin_ns = bin_ns
        self.rcv_nxt = 0
        #: Out-of-order segments held by seq.
        self._ooo: Dict[int, TcpSegment] = {}
        #: Goodput bins: in-order bytes delivered to the application.
        self.bins: Dict[int, int] = {}
        self.bytes_delivered = 0
        self.segments_received = 0

    def _sack_blocks(self, limit: int = 4) -> tuple:
        """Merged (start, end) ranges of the out-of-order store."""
        if not self._ooo:
            return ()
        blocks = []
        start = None
        end = None
        for seq in sorted(self._ooo):
            seg = self._ooo[seq]
            if start is None:
                start, end = seq, seq + seg.length
            elif seq == end:
                end = seq + seg.length
            else:
                blocks.append((start, end))
                start, end = seq, seq + seg.length
        blocks.append((start, end))
        # Most recent ranges matter most; keep the last few.
        return tuple(blocks[-limit:])

    def on_segment(self, segment: TcpSegment) -> None:
        """Accept one data segment; emit a cumulative (+SACK) ACK."""
        self.segments_received += 1
        if segment.length > 0:
            if segment.seq >= self.rcv_nxt and segment.seq not in self._ooo:
                self._ooo[segment.seq] = segment
            delivered = 0
            while self.rcv_nxt in self._ooo:
                seg = self._ooo.pop(self.rcv_nxt)
                self.rcv_nxt += seg.length
                delivered += seg.length
            if delivered:
                self.bytes_delivered += delivered
                index = self.now // self.bin_ns
                self.bins[index] = self.bins.get(index, 0) + delivered
        ack = TcpSegment(
            flow_id=self.flow_id,
            seq=0,
            length=0,
            ack=self.rcv_nxt,
            ts_echo=segment.ts_echo,
            sack_blocks=self._sack_blocks(),
        )
        packet = Packet(
            flow_id=self.flow_id,
            ue_id=self.ue_id,
            bearer_id=self.bearer_id,
            direction=self.ack_direction,
            payload=ack,
            size_bytes=ack.wire_bytes,
            created_ns=self.now,
            seq=ack.segment_id,
        )
        self.transmit_ack(packet)

    def throughput_series(
        self, start_ns: int, end_ns: int
    ) -> List[Tuple[float, float]]:
        """(bin start ms, goodput Mbps) over the window."""
        series = []
        first = start_ns // self.bin_ns
        last = (end_ns - 1) // self.bin_ns
        for index in range(first, last + 1):
            bytes_in_bin = self.bins.get(index, 0)
            mbps = bytes_in_bin * 8 / (self.bin_ns / SECOND) / 1e6
            series.append((index * self.bin_ns / MS, mbps))
        return series
