"""User-plane packets.

A :class:`Packet` is the unit of traffic between the application server
and a UE application. It names its flow, its UE and bearer, and carries a
typed payload (a UDP datagram descriptor or a TCP segment) plus its
declared wire size — which is what RLC segmentation, TB filling, and
throughput accounting all use.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

#: IP + transport header overhead attributed to each packet.
IP_HEADER_BYTES = 40


class FlowDirection(enum.Enum):
    """Direction of a flow relative to the UE."""

    UPLINK = "UL"
    DOWNLINK = "DL"


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One user-plane packet."""

    flow_id: str
    ue_id: int
    bearer_id: int
    direction: FlowDirection
    payload: Any
    size_bytes: int
    #: Creation timestamp (set by the sender) for latency measurement.
    created_ns: int = 0
    #: Flow-scope sequence number (loss/reordering accounting).
    seq: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet {self.flow_id}#{self.seq} ue={self.ue_id} "
            f"{self.direction.value} {self.size_bytes}B>"
        )
