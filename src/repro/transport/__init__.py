"""End-to-end transport substrate (simplified but behaviourally real).

Flows between the application server and UEs ride radio bearers through
the core network. :mod:`repro.transport.packet` defines the user-plane
packet; :mod:`repro.transport.udp` and :mod:`repro.transport.tcp`
implement the two transports whose recovery behaviour the paper's
end-to-end experiments measure:

* UDP exposes radio-layer losses directly (Fig 10's near-immediate UDP
  recovery; Table 2's loss rates),
* TCP adds in-order delivery, congestion control, fast retransmit, and
  RTO — which is why its post-failover recovery takes up to 110 ms in
  the paper while UDP's is invisible.
"""

from repro.transport.packet import Packet, FlowDirection
from repro.transport.udp import UdpSender, UdpSink, UdpFlowStats
from repro.transport.tcp import TcpSender, TcpReceiver, TcpSegment, TcpConfig

__all__ = [
    "Packet",
    "FlowDirection",
    "UdpSender",
    "UdpSink",
    "UdpFlowStats",
    "TcpSender",
    "TcpReceiver",
    "TcpSegment",
    "TcpConfig",
]
