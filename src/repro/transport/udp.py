"""UDP flows.

A :class:`UdpSender` paces constant-bitrate datagrams; a :class:`UdpSink`
measures goodput in fixed bins and tracks sequence gaps for loss
accounting. These two implement the iperf-UDP and bitrate measurements
of Figs 8/10/11 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.units import MS, SECOND
from repro.transport.packet import FlowDirection, Packet


@dataclass
class UdpFlowStats:
    """Aggregate flow counters."""

    packets_sent: int = 0
    packets_received: int = 0
    bytes_received: int = 0
    duplicates: int = 0

    @property
    def packets_lost(self) -> int:
        return max(self.packets_sent - self.packets_received - self.duplicates, 0)

    @property
    def loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent


class UdpSender(Process):
    """Constant-bitrate UDP datagram source.

    ``transmit`` is the egress function (UE uplink enqueue, or app-server
    downlink send); the sender paces packets of ``packet_bytes`` so the
    offered load matches ``bitrate_bps``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        ue_id: int,
        bearer_id: int,
        direction: FlowDirection,
        transmit: Callable[[Packet], None],
        bitrate_bps: float,
        packet_bytes: int = 1200,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"udp-tx:{flow_id}")
        self.flow_id = flow_id
        self.ue_id = ue_id
        self.bearer_id = bearer_id
        self.direction = direction
        self.transmit = transmit
        self.bitrate_bps = bitrate_bps
        self.packet_bytes = packet_bytes
        self.stats = UdpFlowStats()
        self._seq = 0
        self._running = False

    @property
    def interval_ns(self) -> int:
        return max(1, round(self.packet_bytes * 8 * SECOND / self.bitrate_bps))

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # First packet at start time; order-independent (tie-shuffle clean).
        self.call_after(0, self._send_next)  # slinglint: disable=EVT002

    def stop(self) -> None:
        self._running = False

    def set_bitrate(self, bitrate_bps: float) -> None:
        """Adjust the offered load (takes effect from the next packet)."""
        self.bitrate_bps = bitrate_bps

    def _send_next(self) -> None:
        if not self._running:
            return
        packet = Packet(
            flow_id=self.flow_id,
            ue_id=self.ue_id,
            bearer_id=self.bearer_id,
            direction=self.direction,
            payload=None,
            size_bytes=self.packet_bytes,
            created_ns=self.now,
            seq=self._seq,
        )
        self._seq += 1
        self.stats.packets_sent += 1
        self.transmit(packet)
        self.call_after(self.interval_ns, self._send_next)


class UdpSink:
    """Receiver-side measurement: binned goodput + loss/latency tracking."""

    def __init__(self, sim: Simulator, flow_id: str, bin_ns: int = 10 * MS) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.bin_ns = bin_ns
        self.stats = UdpFlowStats()
        #: bytes received per bin index (bin = arrival_time // bin_ns).
        self.bins: Dict[int, int] = {}
        #: packets received per bin index.
        self.bin_packets: Dict[int, int] = {}
        self._seen_max_seq = -1
        self._seen: set = set()
        self.latencies_ns: List[int] = []

    def on_packet(self, packet: Packet) -> None:
        if packet.seq in self._seen:
            self.stats.duplicates += 1
            return
        self._seen.add(packet.seq)
        if len(self._seen) > 100_000:
            # Keep the dedup window bounded.
            cutoff = max(self._seen) - 50_000
            self._seen = {s for s in self._seen if s > cutoff}
        self._seen_max_seq = max(self._seen_max_seq, packet.seq)
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.size_bytes
        index = self.sim.now // self.bin_ns
        self.bins[index] = self.bins.get(index, 0) + packet.size_bytes
        self.bin_packets[index] = self.bin_packets.get(index, 0) + 1
        self.latencies_ns.append(self.sim.now - packet.created_ns)

    def throughput_series(
        self, start_ns: int, end_ns: int
    ) -> List[Tuple[float, float]]:
        """(bin start in ms, Mbps) samples over [start, end)."""
        series = []
        first = start_ns // self.bin_ns
        last = (end_ns - 1) // self.bin_ns
        for index in range(first, last + 1):
            bytes_in_bin = self.bins.get(index, 0)
            mbps = bytes_in_bin * 8 / (self.bin_ns / SECOND) / 1e6
            series.append((index * self.bin_ns / MS, mbps))
        return series

    def min_max_bin_mbps(self, start_ns: int, end_ns: int) -> Tuple[float, float]:
        """Min and max per-bin throughput over a window (Table 2 rows)."""
        series = [mbps for _, mbps in self.throughput_series(start_ns, end_ns)]
        if not series:
            return 0.0, 0.0
        return min(series), max(series)

    def blackout_bins(self, start_ns: int, end_ns: int) -> int:
        """Bins with zero received bytes in the window (Table 2 row 1)."""
        return sum(
            1 for _, mbps in self.throughput_series(start_ns, end_ns) if mbps == 0.0
        )
