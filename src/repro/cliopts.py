"""Shared option group for the harness CLI verbs.

``repro chaos``, ``repro perf``, and ``repro telemetry`` all follow the
same run-report-gate shape: run a deterministic workload, write a JSON
report under ``benchmarks/``, and optionally ``--check`` it against the
recorded baseline. Their common flags come from one argparse *parent
parser* so the spelling, defaults, and help text cannot drift apart:

``--out FILE`` (alias ``--bench``)
    where to write the JSON report;
``--check``
    compare against the recorded baseline instead of (re)recording;
``--jobs N``
    worker processes for independent shards (0 = one per CPU core;
    results are bit-identical at any value);
``--quick``
    reduced-scale run for smokes and CI gates.

Each verb still owns its verb-specific flags (scenario selection,
tolerance, profiling, ...) — the parent contributes only the shared
group, via ``argparse.ArgumentParser(parents=[harness_options()])``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional


def harness_options() -> argparse.ArgumentParser:
    """The shared ``--out/--check/--jobs/--quick`` parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("harness options")
    group.add_argument(
        "--out",
        "--bench",
        dest="out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the JSON report to this file",
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="compare against the recorded baseline report",
    )
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent shards; 0 = one per CPU "
        "core. Results are bit-identical at any value (default: 1)",
    )
    group.add_argument(
        "--quick",
        action="store_true",
        help="reduced-scale run (for smokes and CI gates)",
    )
    return parent


def resolve_jobs(jobs: int, prog: str) -> Optional[int]:
    """Validate/expand ``--jobs``: None means invalid (caller exits 2)."""
    if jobs < 0:
        print(f"{prog}: --jobs must be >= 0", file=sys.stderr)
        return None
    if jobs == 0:
        from repro.parallel.pool import available_parallelism

        return available_parallelism()
    return jobs
