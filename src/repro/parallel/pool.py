"""Process-pool shard runner with digest-verified determinism.

``run_shards`` executes independent ``(key, payload)`` shards through a
top-level worker function, either serially (``jobs <= 1``, single shard,
or no ``fork`` support) or on a warm ``ProcessPoolExecutor``. The
determinism contract, relied on by the chaos campaign, the experiment
sweeps, and the perf macro scenarios:

* every shard is self-contained — the worker rebuilds all state from the
  shard payload (ultimately from a seed), so a shard's result does not
  depend on which process ran it or in what order;
* results are keyed by shard key and merged in **canonical order** (the
  submission order), so the merged result list is bit-identical to a
  serial run;
* the ``progress`` callback fires once per shard **in canonical order**
  (an ordered flush over out-of-order completions), so streamed output
  at ``--jobs N`` matches serial output line for line.

Failure handling never hangs the sweep: a worker exception is carried
back as data and re-raised as :class:`ShardError` naming the shard key
at its canonical position; a hard worker death (e.g. the kernel OOM
killer, ``os._exit``) breaks the pool. Because shards are
deterministic and self-contained, a broken pool is retried **once** on
a fresh executor covering only the unfinished shards — transient
machine-level deaths (OOM kill of one worker during a memory spike)
recover without rerunning completed work, while a deterministic crash
fails again immediately and surfaces as :class:`ShardCrash` naming the
unfinished shard keys plus the tail of the workers' captured stderr
(the only place a hard death leaves evidence). Retries are recorded in
the accounting block (``shard_retries``) so BENCH files show when a
sweep needed one.

Accounting: each shard records its own wall time and the worker
process's peak RSS (a process high-water mark — warm workers carry the
maximum over every shard they have run), and the outcome derives the
parallel speedup estimate ``sum(shard wall) / sweep wall`` for the
BENCH json files.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.perf.timing import wall_ns

try:  # pragma: no cover - always present on the Linux/macOS targets
    import resource
except ImportError:  # pragma: no cover - Windows fallback
    resource = None  # type: ignore[assignment]

#: Shard key: any picklable, hashable value; printed in errors/reports.
ShardKey = Any

#: Worker signature: one payload in, one picklable result out.
ShardWorker = Callable[[Any], Any]

#: Broken-pool retries before giving up (shards are deterministic, so a
#: second identical failure means the crash is not transient).
MAX_CRASH_RETRIES = 1

#: Bytes of captured worker stderr attached to a ShardCrash.
STDERR_TAIL_BYTES = 4096


class ShardError(RuntimeError):
    """A shard worker raised; carries the shard key and the traceback."""

    def __init__(self, key: ShardKey, traceback_text: str) -> None:
        super().__init__(
            f"shard {key!r} failed in worker:\n{traceback_text}"
        )
        self.key = key
        self.traceback_text = traceback_text


class ShardCrash(RuntimeError):
    """A worker process died without reporting (hard crash).

    ``candidate_keys`` lists, in canonical order, every shard that had
    not completed when the pool broke — the crashed shard is among them
    (usually first; the executor cannot attribute the death exactly).
    ``stderr_tail`` carries the last bytes the dead workers wrote to
    stderr (empty when they died silently), and ``retries`` how many
    fresh-pool retries were burned before giving up.
    """

    def __init__(
        self,
        candidate_keys: Sequence[ShardKey],
        stderr_tail: str = "",
        retries: int = 0,
    ) -> None:
        keys = list(candidate_keys)
        message = (
            "worker process died; unfinished shard(s): "
            + ", ".join(repr(key) for key in keys)
        )
        if retries:
            message += f" (after {retries} retr{'y' if retries == 1 else 'ies'})"
        if stderr_tail:
            message += f"\nworker stderr tail:\n{stderr_tail}"
        super().__init__(message)
        self.candidate_keys = keys
        self.stderr_tail = stderr_tail
        self.retries = retries


@dataclass
class ShardStats:
    """Per-shard execution accounting (non-deterministic, machine facts)."""

    key: ShardKey
    wall_seconds: float
    peak_rss_kb: int
    pid: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": list(self.key) if isinstance(self.key, tuple) else self.key,
            "wall_seconds": round(self.wall_seconds, 4),
            "peak_rss_kb": self.peak_rss_kb,
            "pid": self.pid,
        }


@dataclass
class ShardOutcome:
    """A completed sweep: deterministic results plus execution accounting.

    ``results`` and ``stats`` are in canonical (submission) order;
    ``results`` values are whatever the worker returned. Everything
    under :meth:`accounting` is wall-clock/RSS bookkeeping and is
    excluded from determinism comparisons by construction.
    """

    requested_jobs: int
    effective_jobs: int
    mode: str  # "serial" | "fork"
    keys: List[ShardKey] = field(default_factory=list)
    results: Dict[ShardKey, Any] = field(default_factory=dict)
    stats: List[ShardStats] = field(default_factory=list)
    total_wall_seconds: float = 0.0
    #: Fresh-pool retries taken after a hard worker death (0 normally).
    shard_retries: int = 0

    @property
    def shard_wall_seconds(self) -> float:
        """Serial-equivalent work: the sum of per-shard wall times."""
        return sum(stat.wall_seconds for stat in self.stats)

    @property
    def speedup(self) -> Optional[float]:
        """Estimated speedup vs running the same shards back to back.

        Computed as ``sum(shard wall) / sweep wall``. Exact when workers
        do not contend for cores; under contention per-shard walls
        inflate, making this an upper bound — the perf harness gates on
        a true serial-vs-parallel wall ratio instead (see
        :data:`repro.perf.harness.SPEEDUP_PAIRS`).
        """
        if self.total_wall_seconds <= 0:
            return None
        return self.shard_wall_seconds / self.total_wall_seconds

    def values(self) -> List[Any]:
        """Worker results in canonical order."""
        return [self.results[key] for key in self.keys]

    def accounting(self) -> Dict[str, Any]:
        """The execution block recorded in BENCH json files."""
        speedup = self.speedup
        return {
            "jobs": self.requested_jobs,
            "effective_jobs": self.effective_jobs,
            "mode": self.mode,
            "shards": len(self.keys),
            "wall_seconds": round(self.total_wall_seconds, 4),
            "shard_wall_seconds": round(self.shard_wall_seconds, 4),
            "parallel_speedup": None if speedup is None else round(speedup, 3),
            "shard_retries": self.shard_retries,
            "max_peak_rss_kb": max(
                (stat.peak_rss_kb for stat in self.stats), default=0
            ),
            "per_shard": [stat.as_dict() for stat in self.stats],
        }


def available_parallelism() -> int:
    """Usable CPU count (>= 1); the honest ceiling for ``--jobs``."""
    return os.cpu_count() or 1


def _calibration_burn(iterations: int) -> int:
    """Fixed-work CPU burn for the parallelism probe (pure compute)."""
    total = 0
    for i in range(iterations):
        total += i
    return total


@lru_cache(maxsize=None)
def measured_parallelism(jobs: int, iterations: int = 8_000_000) -> float:
    """Measured throughput ratio of ``jobs`` workers over serial execution.

    Runs the same fixed-size burn workload serially and on a ``jobs``-wide
    pool and returns ``serial wall / parallel wall``. This is the *real*
    core capacity of the machine — container CPU accounting frequently
    lies in both directions (``os.cpu_count()`` can report 1 on a box
    that schedules 4 processes concurrently, and vice versa), and
    per-shard wall sums double-count contention, so an end-to-end probe
    is the only trustworthy basis for parallel-speedup perf gates.
    Cached per process; costs a few hundred milliseconds on first call.
    """
    if jobs <= 1 or not fork_available():
        return 1.0
    shards = [(index, iterations) for index in range(jobs)]
    start = wall_ns()
    for _, work in shards:
        _calibration_burn(work)
    serial = wall_ns() - start
    parallel = run_shards(_calibration_burn, shards, jobs=jobs)
    if parallel.total_wall_seconds <= 0:
        return 1.0
    return max(1.0, (serial / 1e9) / parallel.total_wall_seconds)


def fork_available() -> bool:
    """True when the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _peak_rss_kb() -> int:
    """This process's peak RSS in KiB (0 where unsupported)."""
    if resource is None:  # pragma: no cover - Windows fallback
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(usage // 1024) if usage > 1 << 30 else int(usage)


def _shard_entry(worker: ShardWorker, key: ShardKey, payload: Any) -> Dict[str, Any]:
    """Top-level worker wrapper: run one shard, never raise.

    Exceptions are serialized into the reply so a failing shard cannot
    take down the pool (only a hard process death can), and the caller
    re-raises at the shard's canonical position.
    """
    start = wall_ns()
    try:
        value = worker(payload)
        error = None
    except Exception:  # noqa: BLE001 - carried back verbatim as ShardError
        import traceback

        value = None
        error = traceback.format_exc()
    return {
        "value": value,
        "error": error,
        "wall_seconds": (wall_ns() - start) / 1e9,
        "peak_rss_kb": _peak_rss_kb(),
        "pid": os.getpid(),
    }


def _finish(
    outcome: ShardOutcome,
    key: ShardKey,
    reply: Dict[str, Any],
    progress: Optional[Callable[[ShardKey, Any], None]],
) -> None:
    """Record one shard's reply (canonical position) and stream it."""
    if reply["error"] is not None:
        raise ShardError(key, reply["error"])
    outcome.results[key] = reply["value"]
    outcome.stats.append(
        ShardStats(
            key=key,
            wall_seconds=reply["wall_seconds"],
            peak_rss_kb=reply["peak_rss_kb"],
            pid=reply["pid"],
        )
    )
    if progress is not None:
        progress(key, reply["value"])


def _run_serial(
    worker: ShardWorker,
    shards: Sequence[Tuple[ShardKey, Any]],
    outcome: ShardOutcome,
    progress: Optional[Callable[[ShardKey, Any], None]],
) -> ShardOutcome:
    start = wall_ns()
    for key, payload in shards:
        _finish(outcome, key, _shard_entry(worker, key, payload), progress)
    outcome.total_wall_seconds = (wall_ns() - start) / 1e9
    return outcome


def _capture_worker_stderr(path: str) -> None:
    """Pool initializer: point the worker's fd 2 at the crash-log file.

    A hard death (``os._exit``, OOM kill, fatal signal) leaves no
    Python-level evidence; whatever the worker printed to stderr first
    — an assertion message, a MemoryError traceback, interpreter
    noise — is the only clue, so every worker appends to a shared
    capture file that the parent tails into :class:`ShardCrash`.
    """
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o600)
    os.dup2(fd, 2)
    os.close(fd)


def _stderr_tail(path: str, limit: int = STDERR_TAIL_BYTES) -> str:
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            if size > limit:
                handle.seek(size - limit)
            return handle.read().decode("utf-8", errors="replace").strip()
    except OSError:
        return ""


def _pool_attempt(
    worker: ShardWorker,
    shards: Sequence[Tuple[ShardKey, Any]],
    remaining: Sequence[int],
    jobs: int,
    stderr_path: str,
    buffered: Dict[int, Dict[str, Any]],
    completed: set,
    flush: Callable[[], None],
) -> List[int]:
    """One executor lifetime over ``remaining`` shard indices.

    Completions land in ``buffered``/``completed`` (global indices) and
    are streamed via ``flush`` as they arrive. Returns the indices left
    unfinished by a broken pool, or ``[]`` on a clean pass.
    """
    keys = [key for key, _ in shards]
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=_capture_worker_stderr,
        initargs=(stderr_path,),
    ) as executor:
        index_of = {}
        for index in remaining:
            key, payload = shards[index]
            future = executor.submit(_shard_entry, worker, key, payload)
            index_of[future] = index
        pending = set(index_of)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            crashed = False
            for future in done:
                index = index_of[future]
                try:
                    buffered[index] = future.result()
                    completed.add(index)
                except BrokenProcessPool:
                    crashed = True
                except Exception as exc:  # e.g. an unpicklable result
                    raise ShardError(keys[index], repr(exc)) from exc
            if crashed:
                return [i for i in remaining if i not in completed]
            flush()
    return []


def _run_pool(
    worker: ShardWorker,
    shards: Sequence[Tuple[ShardKey, Any]],
    outcome: ShardOutcome,
    progress: Optional[Callable[[ShardKey, Any], None]],
) -> ShardOutcome:
    keys = [key for key, _ in shards]
    start = wall_ns()
    handle = tempfile.NamedTemporaryFile(
        prefix="repro-shards-", suffix=".stderr", delete=False
    )
    stderr_path = handle.name
    handle.close()
    # Ordered flush: buffer out-of-order completions, stream each shard
    # exactly when every earlier shard has been streamed. The buffer
    # outlives pool attempts so a retry resumes the stream seamlessly.
    buffered: Dict[int, Dict[str, Any]] = {}
    completed: set = set()
    flush_state = {"next": 0}

    def flush() -> None:
        while flush_state["next"] in buffered:
            index = flush_state["next"]
            _finish(outcome, keys[index], buffered.pop(index), progress)
            flush_state["next"] += 1

    try:
        remaining: List[int] = list(range(len(shards)))
        while True:
            unfinished = _pool_attempt(
                worker,
                shards,
                remaining,
                outcome.effective_jobs,
                stderr_path,
                buffered,
                completed,
                flush,
            )
            if not unfinished:
                break
            if outcome.shard_retries >= MAX_CRASH_RETRIES:
                raise ShardCrash(
                    [keys[i] for i in unfinished],
                    stderr_tail=_stderr_tail(stderr_path),
                    retries=outcome.shard_retries,
                ) from None
            outcome.shard_retries += 1
            remaining = unfinished
        flush()
    finally:
        try:
            os.unlink(stderr_path)
        except OSError:  # pragma: no cover - already gone
            pass
    outcome.total_wall_seconds = (wall_ns() - start) / 1e9
    return outcome


def run_shards(
    worker: ShardWorker,
    shards: Sequence[Tuple[ShardKey, Any]],
    jobs: int = 1,
    progress: Optional[Callable[[ShardKey, Any], None]] = None,
) -> ShardOutcome:
    """Run every shard through ``worker`` and merge deterministically.

    Parameters
    ----------
    worker:
        Top-level (picklable) function mapping one payload to one
        picklable result. Workers must rebuild all state from the
        payload; PAR001 lints the sanctioned entrypoints.
    shards:
        Ordered ``(key, payload)`` pairs; the order is the canonical
        merge/flush order and keys must be unique.
    jobs:
        Worker process count. ``1`` (or an unavailable ``fork`` start
        method, or a single shard) runs serially in-process; values are
        clamped to the shard count.
    progress:
        Optional ``progress(key, value)`` callback, invoked in canonical
        order as results stream in.
    """
    keys = [key for key, _ in shards]
    if len(set(keys)) != len(keys):
        raise ValueError("shard keys must be unique")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    effective = max(1, min(jobs, len(shards)))
    use_pool = effective > 1 and fork_available()
    outcome = ShardOutcome(
        requested_jobs=jobs,
        effective_jobs=effective if use_pool else 1,
        mode="fork" if use_pool else "serial",
        keys=keys,
    )
    if not use_pool:
        return _run_serial(worker, shards, outcome, progress)
    return _run_pool(worker, shards, outcome, progress)
