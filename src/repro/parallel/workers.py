"""Sanctioned shard-worker entrypoints.

Every function here is a top-level, picklable worker for
:func:`repro.parallel.pool.run_shards`. Workers rebuild **all** state
from their payload (ultimately from the shard's seed): they hold no
module-level state, and any randomness they trigger flows through the
shard's own seed-derived :class:`~repro.sim.rng.RngRegistry` streams —
the PAR001 lint rule enforces both properties, which is what makes the
"bit-identical to serial at any --jobs" guarantee checkable rather than
aspirational.

Imports of the heavyweight driver modules happen inside the workers:
the drivers import this module's pool machinery, and lazy imports keep
the dependency one-way at import time.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple


def run_campaign_shard(payload: Tuple[Any, int, bool]) -> Any:
    """One chaos-campaign ``(scenario, seed)`` run, optionally replayed.

    Returns the :class:`~repro.faults.campaign.ScenarioRun` verdict —
    plain data, identical whether computed in-process or in a worker.
    """
    from repro.faults.campaign import run_scenario

    scenario, seed, replay = payload
    return run_scenario(scenario, seed, replay=replay)


def run_chaos_events_shard(payload: Tuple[str, int]) -> Dict[str, Any]:
    """One chaos scenario run reduced to perf facts (digest/events/sim_ns)."""
    from repro.perf.scenarios import run_chaos_cell

    scenario_name, seed = payload
    cell = run_chaos_cell(scenario_name, seed)
    return {
        "digest": cell.trace.digest(),
        "events": cell.sim.events_processed,
        "sim_ns": cell.sim.now,
    }


def run_telemetry_shard(payload: Tuple[str, int]) -> Dict[str, Any]:
    """One instrumented chaos run: digest + metrics snapshot + timeline.

    The worker enables its own fresh registry (inside
    ``run_instrumented_scenario``), so shards stay independent and the
    parent merges their snapshots in canonical key order.
    """
    from repro.telemetry.runner import run_instrumented_scenario

    scenario_name, seed = payload
    return run_instrumented_scenario(scenario_name, seed)


def build_fork_base_shard(payload: Tuple[int, int, int, str]) -> str:
    """Build one warm fork base and save its checkpoint; returns the path.

    The base is fully determined by ``(seed, num_phy_servers, fork_ns)``
    — an unarmed probe harness driven to the fork point — so shards stay
    payload-pure and the saved checkpoints are bit-stable per key.
    """
    from pathlib import Path

    from repro.checkpoint.fork import build_fork_base

    seed, num_phy_servers, fork_ns, path = payload
    build_fork_base((seed, num_phy_servers, fork_ns)).save(Path(path))
    return path


def run_forked_scenario_shard(payload: Tuple[Any, int, str]) -> Any:
    """One forked chaos branch: load a warm checkpoint, arm, run, judge.

    The checkpoint file was captured from the same seed the payload
    names, so all worker state still derives from the shard's seed —
    the checkpoint is a verified intermediate of the deterministic
    build, not an outside input (restore re-checks the payload hash and
    the manifest walk).
    """
    from pathlib import Path

    from repro.checkpoint.fork import run_forked_scenario
    from repro.checkpoint.snapshot import Checkpoint

    scenario, seed, checkpoint_path = payload
    checkpoint = Checkpoint.load(Path(checkpoint_path))
    return run_forked_scenario(scenario, seed, checkpoint)


def run_fleet_shard(payload: Tuple[str, int, int]) -> Any:
    """One fleet-campaign ``(fault_class, pool_size, seed)`` run.

    Returns the :class:`~repro.fleet.campaign.FleetRun` verdict — plain
    data, identical whether computed in-process or in a worker.
    """
    from repro.fleet.campaign import run_fleet

    fault_class, pool_size, seed = payload
    return run_fleet(fault_class, pool_size, seed)


def run_perf_benchmark_shard(payload: Tuple[str, bool]) -> Dict[str, Any]:
    """One named perf-catalog benchmark, timed inside the worker."""
    from repro.perf.benchmarks import CATALOG

    name, quick = payload
    raw = CATALOG[name].run(quick)
    return {
        "events": raw.events,
        "wall_seconds": raw.wall_seconds,
        "sim_ns": raw.sim_ns,
        "digest": raw.digest,
        "extra": raw.extra,
    }
