"""Sharded parallel execution for campaign/sweep workloads.

The chaos campaign, the experiment sweeps, and the perf macro scenarios
are all embarrassingly parallel: every ``(scenario, seed)`` or
``(experiment, config)`` pair builds its own cell from its own seed and
never touches another shard's state. :mod:`repro.parallel.pool` fans
those shards out to ``multiprocessing`` workers and merges the results
deterministically — results are keyed by shard key and merged in
canonical (submission) order, so the merged report and every per-run
canonical-trace digest are bit-identical to the serial run, at any
``--jobs`` value.

Worker entrypoints live in :mod:`repro.parallel.workers` so they are
importable (picklable) from a fresh interpreter and statically checkable
by the PAR001 lint rule: shard workers must not read module-level
mutable state or create RNGs outside the shard-key-derived
:class:`~repro.sim.rng.RngRegistry` namespace.
"""

from repro.parallel.pool import (
    ShardCrash,
    ShardError,
    ShardOutcome,
    ShardStats,
    available_parallelism,
    run_shards,
)

__all__ = [
    "ShardCrash",
    "ShardError",
    "ShardOutcome",
    "ShardStats",
    "available_parallelism",
    "run_shards",
]
