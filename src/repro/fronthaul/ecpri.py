"""eCPRI / O-RAN fronthaul header codec.

Wire formats for the header portion of split 7.2x fronthaul packets:
the eCPRI common header plus the O-RAN application headers whose timing
fields (frame / subframe / slot / symbol) Slingshot's switch middlebox
parses to execute TTI-aligned migration (§5.1).

The simulation's hot path passes typed payload objects (with declared
wire sizes) for speed, but the codec is the normative definition of the
bytes a real switch would parse, and the round-trip property tests pin
the field packing. ``parse_timing_fields`` is the exact header-arithmetic
a P4 parser would perform.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.phy.numerology import SlotAddress

#: eCPRI protocol revision carried in the common header.
ECPRI_REVISION = 1

#: eCPRI message types (eCPRI spec §3.2.4).
ECPRI_TYPE_IQ_DATA = 0x00         # U-plane IQ data.
ECPRI_TYPE_RT_CONTROL = 0x02      # C-plane realtime control.

#: O-RAN section types (CUS-plane spec).
SECTION_TYPE_UL = 1               # Uplink channel data request.
SECTION_TYPE_DL = 3               # Downlink channel data.

_COMMON = struct.Struct(">BBHH")  # rev/flags, msg type, payload len, eAxC id.
_APP = struct.Struct(">BBBBB")    # seq, frame, subframe<<4|slot-hi, slot-lo<<6|symbol, section type.


class EcpriCodecError(ValueError):
    """Raised for malformed fronthaul headers."""


@dataclass(frozen=True)
class EcpriHeader:
    """Parsed eCPRI + O-RAN application header."""

    message_type: int
    payload_bytes: int
    #: eAxC id: carries the RU port / spatial stream identity.
    eaxc_id: int
    sequence: int
    address: SlotAddress
    symbol: int
    section_type: int


def encode_header(
    message_type: int,
    payload_bytes: int,
    eaxc_id: int,
    sequence: int,
    address: SlotAddress,
    symbol: int = 0,
    section_type: int = SECTION_TYPE_UL,
) -> bytes:
    """Pack the eCPRI common header + O-RAN application header.

    Memoized: fronthaul traffic re-emits the same header for every packet
    of a (slot, section) burst with only the 8-bit sequence rolling, so a
    bounded cache turns repeat packs into a dict hit. Header encoding is
    a pure function of its arguments, making the cache behavior-invisible.
    """
    return _encode_header_cached(
        message_type, payload_bytes, eaxc_id, sequence, address, symbol, section_type
    )


@lru_cache(maxsize=8192)
def _encode_header_cached(
    message_type: int,
    payload_bytes: int,
    eaxc_id: int,
    sequence: int,
    address: SlotAddress,
    symbol: int,
    section_type: int,
) -> bytes:
    if not 0 <= address.frame < 1024:
        raise EcpriCodecError(f"frame {address.frame} out of range")
    if not 0 <= address.subframe < 10:
        raise EcpriCodecError(f"subframe {address.subframe} out of range")
    if not 0 <= address.slot < 64:
        raise EcpriCodecError(f"slot {address.slot} out of range")
    if not 0 <= symbol < 16:
        raise EcpriCodecError(f"symbol {symbol} out of range")
    common = _COMMON.pack(
        (ECPRI_REVISION << 4), message_type & 0xFF,
        payload_bytes & 0xFFFF, eaxc_id & 0xFFFF,
    )
    # O-RAN timing: the 10-bit frame is split across two bytes; the
    # 4-bit subframe and 6-bit slot share the middle, per the CUS spec's
    # layout (simplified to byte-aligned groups here, losslessly).
    frame_hi = (address.frame >> 2) & 0xFF
    frame_lo_sub = ((address.frame & 0x3) << 6) | ((address.subframe & 0xF) << 2) | (
        (address.slot >> 4) & 0x3
    )
    slot_sym = ((address.slot & 0xF) << 4) | (symbol & 0xF)
    app = _APP.pack(
        sequence & 0xFF, frame_hi, frame_lo_sub, slot_sym, section_type & 0xFF
    )
    return common + app


def decode_header(data: bytes) -> EcpriHeader:
    """Parse the header; inverse of :func:`encode_header`.

    Memoized on the (immutable) header bytes: a burst of fronthaul
    packets repeats the same 9-byte header, and :class:`EcpriHeader` is
    frozen, so returning the cached instance is behavior-invisible.
    """
    return _decode_header_cached(bytes(data[: HEADER_BYTES]) if len(data) > HEADER_BYTES else bytes(data))


@lru_cache(maxsize=8192)
def _decode_header_cached(data: bytes) -> EcpriHeader:
    if len(data) < _COMMON.size + _APP.size:
        raise EcpriCodecError("truncated fronthaul header")
    rev_flags, message_type, payload_bytes, eaxc_id = _COMMON.unpack_from(data, 0)
    if (rev_flags >> 4) != ECPRI_REVISION:
        raise EcpriCodecError(f"unsupported eCPRI revision {rev_flags >> 4}")
    sequence, frame_hi, frame_lo_sub, slot_sym, section_type = _APP.unpack_from(
        data, _COMMON.size
    )
    frame = (frame_hi << 2) | (frame_lo_sub >> 6)
    subframe = (frame_lo_sub >> 2) & 0xF
    slot = (((frame_lo_sub & 0x3) << 4) | (slot_sym >> 4)) & 0x3F
    symbol = slot_sym & 0xF
    return EcpriHeader(
        message_type=message_type,
        payload_bytes=payload_bytes,
        eaxc_id=eaxc_id,
        sequence=sequence,
        address=SlotAddress(frame=frame, subframe=subframe, slot=slot),
        symbol=symbol,
        section_type=section_type,
    )


def parse_timing_fields(data: bytes) -> Tuple[int, int, int]:
    """Extract only (frame, subframe, slot) — the switch data plane's
    minimal parse for migrate_on_slot matching (§5.1).

    Fast path: touches just the three app-header bytes that carry the
    timing fields (after the same length/revision validation the full
    decoder performs), mirroring how a P4 parser would extract them
    without materializing the whole header.
    """
    if len(data) < HEADER_BYTES:
        raise EcpriCodecError("truncated fronthaul header")
    rev = data[0] >> 4
    if rev != ECPRI_REVISION:
        raise EcpriCodecError(f"unsupported eCPRI revision {rev}")
    frame_hi = data[7]
    frame_lo_sub = data[8]
    slot_sym = data[9]
    frame = (frame_hi << 2) | (frame_lo_sub >> 6)
    subframe = (frame_lo_sub >> 2) & 0xF
    slot = (((frame_lo_sub & 0x3) << 4) | (slot_sym >> 4)) & 0x3F
    return frame, subframe, slot


HEADER_BYTES = _COMMON.size + _APP.size
