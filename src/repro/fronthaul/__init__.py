"""O-RAN split 7.2x fronthaul substrate.

The fronthaul carries Ethernet (eCPRI) packets with IQ samples between
the radio unit (RU) and the PHY. Three properties matter to Slingshot:

* packets carry **frame/subframe/slot header fields** identifying their
  TTI — the switch middlebox parses these to execute migration exactly at
  a TTI boundary (paper §5.1);
* a healthy PHY emits downlink **C-plane packets in every slot** — the
  natural heartbeat behind in-switch failure detection (§5.2);
* the traffic volume is large (≈4.5 Gb/s per RU in the paper's testbed),
  which is why the middlebox lives in the switch rather than in software.

This package provides the packet formats (:mod:`repro.fronthaul.oran`),
the over-the-air interface between the RU and UEs
(:mod:`repro.fronthaul.air`), and the RU model (:mod:`repro.fronthaul.ru`).
"""

from repro.fronthaul.oran import (
    CplaneMessage,
    UplaneDownlink,
    UplaneUplink,
    UlGrant,
    DlAllocation,
    uplane_wire_bytes,
)
from repro.fronthaul.air import AirInterface, UeRadioPort
from repro.fronthaul.ecpri import EcpriHeader, decode_header, encode_header
from repro.fronthaul.ru import RadioUnit

__all__ = [
    "EcpriHeader",
    "decode_header",
    "encode_header",
    "CplaneMessage",
    "UplaneDownlink",
    "UplaneUplink",
    "UlGrant",
    "DlAllocation",
    "uplane_wire_bytes",
    "AirInterface",
    "UeRadioPort",
    "RadioUnit",
]
