"""Radio unit (RU) model.

The RU is dumb by design in split 7.2x: it radiates whatever IQ data the
PHY's C/U-plane packets describe and captures uplink IQ on command. It is
addressed by, and sends to, a single **virtual PHY MAC address**; the
switch middlebox translates that to the current primary PHY (paper §5.1),
so the RU never knows a migration happened.

Protocol compliance checking: the RU records when it observes packets for
the *same* slot from two different PHY sources — the malfunction scenario
that motivates TTI-boundary-aligned migration. The ablation bench flips
the middlebox into unaligned mode and watches this counter go up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.fronthaul.air import AirInterface
from repro.fronthaul.oran import (
    CplaneMessage,
    UplaneDownlink,
    UplaneUplink,
    UplaneUplinkControlOnly,
)
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.phy.numerology import SlotClock, SlotType, TddPattern
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.units import US


@dataclass
class RuStats:
    """Counters for RU-side behaviour and compliance checks."""

    cplane_received: int = 0
    uplane_dl_received: int = 0
    ul_packets_sent: int = 0
    slots_with_control: int = 0
    slots_without_control: int = 0
    #: Slots for which packets from more than one PHY source were seen —
    #: the protocol violation unaligned migration would cause.
    conflicting_source_slots: int = 0


class RadioUnit(Process):
    """A split-7.2x radio unit bound to one air interface.

    Per downlink slot, the RU waits (until just past the slot start) for
    the C-plane packet from its PHY; if present, it broadcasts control
    (incl. UL grants) to UEs and radiates any U-plane TBs that arrived.
    Per uplink slot, it captures UE transmissions at slot end and ships
    them to the virtual PHY address.
    """

    def __init__(
        self,
        sim: Simulator,
        ru_id: int,
        mac: MacAddress,
        virtual_phy_mac: MacAddress,
        slot_clock: SlotClock,
        tdd: TddPattern,
        air: AirInterface,
        uplink: Optional[Link] = None,
        trace: Optional[TraceRecorder] = None,
        control_deadline_ns: int = 200 * US,
        name: str = "ru",
    ) -> None:
        super().__init__(sim, name)
        self.ru_id = ru_id
        self.mac = mac
        self.virtual_phy_mac = virtual_phy_mac
        self.slot_clock = slot_clock
        self.tdd = tdd
        self.air = air
        self.uplink = uplink
        self.trace = trace
        #: How long past slot start the RU waits for the slot's C-plane.
        self.control_deadline_ns = control_deadline_ns
        self.stats = RuStats()
        #: C-plane messages received, keyed by absolute slot.
        self._cplane: Dict[int, CplaneMessage] = {}
        #: DL U-plane blocks received, keyed by absolute slot.
        self._dl_data: Dict[int, List[UplaneDownlink]] = {}
        #: PHY source ids seen per slot (compliance check).
        self._sources_per_slot: Dict[int, Set[int]] = {}
        #: Most recent downlink source PHY (None until the first frame).
        self._last_source_phy: Optional[int] = None
        self._started = False

    def start(self) -> None:
        """Begin per-slot operation at the next slot boundary."""
        if self._started:
            return
        self._started = True
        next_slot = self.slot_clock.slot_at(self.now) + 1
        self.sim.schedule_periodic(
            self.slot_clock.slot_duration_ns,
            self._slot_boundary,
            first_at=self.slot_clock.slot_start(next_slot),
            label=f"{self.name}.slot",
        )

    # ------------------------------------------------------------------
    # Fronthaul receive path (network endpoint protocol)
    # ------------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        """Handle a fronthaul packet from the switch."""
        payload = frame.payload
        if isinstance(payload, CplaneMessage):
            self._record_source(payload.abs_slot, payload.source_phy_id)
            self.stats.cplane_received += 1
            # Keep the first C-plane for a slot; duplicates from a second
            # source are counted by _record_source.
            self._cplane.setdefault(payload.abs_slot, payload)
        elif isinstance(payload, UplaneDownlink):
            self._record_source(payload.abs_slot, payload.source_phy_id)
            self.stats.uplane_dl_received += 1
            self._dl_data.setdefault(payload.abs_slot, []).append(payload)

    def _record_source(self, abs_slot: int, source_phy_id: int) -> None:
        if source_phy_id != self._last_source_phy:
            # Compact handover audit trail: one event per PHY transition
            # (invariant checkers compare these against committed
            # migrations to spot stale post-boundary sources).
            if self.trace is not None:
                self.trace.record(
                    self.now,
                    "ru.source_changed",
                    ru=self.ru_id,
                    slot=abs_slot,
                    source=source_phy_id,
                    previous=self._last_source_phy,
                )
            self._last_source_phy = source_phy_id
        sources = self._sources_per_slot.setdefault(abs_slot, set())
        before = len(sources)
        sources.add(source_phy_id)
        if before == 1 and len(sources) == 2:
            self.stats.conflicting_source_slots += 1
            if self.trace is not None:
                self.trace.record(
                    self.now, "ru.conflicting_sources", slot=abs_slot, ru=self.ru_id
                )

    # ------------------------------------------------------------------
    # Per-slot operation
    # ------------------------------------------------------------------
    def _slot_boundary(self) -> None:
        # Fires exactly at each slot boundary; the wheel re-arms the next
        # one before this callback runs, so a failure in this slot's
        # handling can never stop the radio.
        abs_slot = self.slot_clock.slot_at(self.now)
        slot_type = self.tdd.slot_type(abs_slot)
        # Give the PHY's packets a grace window past the slot start, then act.
        self.call_after(
            self.control_deadline_ns, self._process_slot, abs_slot, slot_type
        )
        # Garbage-collect state from long-past slots.
        self._gc(abs_slot - 16)

    def _process_slot(self, abs_slot: int, slot_type: SlotType) -> None:
        cplane = self._cplane.pop(abs_slot, None)
        if cplane is None:
            self.stats.slots_without_control += 1
            # Nothing to radiate; UEs observe downlink silence this slot.
            self._dl_data.pop(abs_slot, None)
            return
        self.stats.slots_with_control += 1
        # Broadcast downlink control (carries UL grants) to all UEs.
        self.air.broadcast_dl_control(
            abs_slot, cplane.ul_grants, cplane.vran_instance_id
        )
        # Radiate downlink data.
        for packet in self._dl_data.pop(abs_slot, []):
            self.air.deliver_dl_data(abs_slot, packet.block)
        if slot_type is SlotType.UPLINK:
            # Capture at the end of the slot: UEs transmit during it.
            capture_at = self.slot_clock.slot_start(abs_slot + 1)
            self.sim.at(
                capture_at, self._capture_uplink, abs_slot, label=f"{self.name}.capture"
            )

    def _capture_uplink(self, abs_slot: int) -> None:
        if self.uplink is None:
            return
        address = self.slot_clock.address_of(abs_slot)
        transmissions = self.air.collect_uplink(abs_slot)
        for transmission in transmissions:
            if transmission.block is not None:
                payload = UplaneUplink(
                    ru_id=self.ru_id,
                    address=address,
                    abs_slot=abs_slot,
                    block=transmission.block,
                    realization=transmission.realization,
                    dl_feedback=transmission.dl_feedback,
                    bsr_bytes=transmission.bsr_bytes,
                )
            elif transmission.dl_feedback or transmission.bsr_bytes:
                payload = UplaneUplinkControlOnly(
                    ru_id=self.ru_id,
                    address=address,
                    abs_slot=abs_slot,
                    ue_id=transmission.ue_id,
                    dl_feedback=transmission.dl_feedback,
                    bsr_bytes=transmission.bsr_bytes,
                )
            else:
                continue
            frame = EthernetFrame(
                src=self.mac,
                dst=self.virtual_phy_mac,
                ethertype=EtherType.ECPRI,
                payload=payload,
                wire_bytes=payload.wire_bytes,
            )
            self.uplink.send(frame)
            self.stats.ul_packets_sent += 1

    def _gc(self, before_slot: int) -> None:
        for store in (self._cplane, self._dl_data, self._sources_per_slot):
            stale = [slot for slot in store if slot < before_slot]
            for slot in stale:
                del store[slot]
