"""O-RAN fronthaul packet payloads.

Modeled at the granularity Slingshot needs: each payload names its RU
(eAxC stand-in), carries the O-RAN timing fields (frame, subframe, slot),
and declares a realistic wire size so link accounting reflects the real
fronthaul volume even though IQ payloads are represented symbolically.

Payload classes:

* :class:`CplaneMessage` — the per-slot control-plane packet from the PHY
  telling the RU which resources to transmit/capture. This is the packet
  stream the failure detector treats as a heartbeat.
* :class:`UplaneDownlink` — downlink IQ data (PHY → RU): encoded
  transport blocks to be radiated.
* :class:`UplaneUplink` — uplink IQ data (RU → PHY): what the RU captured
  in an uplink slot (transport blocks + channel realizations to be
  decoded by the PHY).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.phy.channel import ChannelRealization
from repro.phy.modulation import Modulation
from repro.phy.numerology import SlotAddress
from repro.phy.transport import TransportBlock

#: Bits per compressed IQ component (9-bit block floating point is the
#: common O-RAN compression choice).
IQ_SAMPLE_BITS = 9 * 2

#: Ethernet + eCPRI + O-RAN section header overhead per packet.
HEADER_OVERHEAD_BYTES = 54


def uplane_wire_bytes(prbs: int, symbols: int = 12, subcarriers_per_prb: int = 12) -> int:
    """On-the-wire bytes of IQ data for an allocation of ``prbs`` PRBs.

    For a full 273-PRB slot this comes to ~530 kB across the slot's
    packets, i.e. ≈4.5 Gb/s of downlink fronthaul for three DL slots per
    2.5 ms — matching the paper's testbed figure.
    """
    samples = prbs * subcarriers_per_prb * symbols
    return HEADER_OVERHEAD_BYTES + (samples * IQ_SAMPLE_BITS + 7) // 8


@dataclass(frozen=True)
class UlGrant:
    """An uplink allocation announced to a UE via downlink control."""

    ue_id: int
    harq_process: int
    modulation: Modulation
    prbs: int
    new_data: bool
    tb_id: int
    tb_bytes: int
    retx_index: int = 0


@dataclass(frozen=True)
class DlAllocation:
    """Descriptor of one downlink TB inside the slot's C-plane message."""

    ue_id: int
    harq_process: int
    modulation: Modulation
    prbs: int
    new_data: bool
    tb_id: int
    retx_index: int = 0


@dataclass
class CplaneMessage:
    """Per-slot control-plane fronthaul packet (PHY → RU).

    Sent by a healthy PHY in **every** slot, even when no user work is
    scheduled — which is what makes it a usable liveness heartbeat.
    """

    ru_id: int
    address: SlotAddress
    #: Absolute slot counter (simulation-side convenience; the real
    #: header carries only the wrapped address above).
    abs_slot: int
    #: UL grants to broadcast to UEs for this slot.
    ul_grants: List[UlGrant] = field(default_factory=list)
    #: DL allocations the RU should expect U-plane data for.
    dl_allocations: List[DlAllocation] = field(default_factory=list)
    #: Which PHY instance produced this packet (for RU-side interop checks).
    source_phy_id: int = -1
    #: Identity of the vRAN stack (L2 instance) behind this PHY. UEs use
    #: continuity of this identity as a proxy for their RRC context being
    #: valid: Slingshot's primary/secondary share one L2 so the identity
    #: never changes; a baseline backup vRAN is a different stack, and
    #: the UE must re-establish (the ~6.2 s outage of §8.1).
    vran_instance_id: int = 1

    @property
    def wire_bytes(self) -> int:
        per_section = 16
        return HEADER_OVERHEAD_BYTES + per_section * (
            len(self.ul_grants) + len(self.dl_allocations) + 1
        )


@dataclass
class UplaneDownlink:
    """Downlink IQ data packet (PHY → RU): one encoded TB to radiate."""

    ru_id: int
    address: SlotAddress
    abs_slot: int
    block: TransportBlock
    source_phy_id: int = -1

    @property
    def wire_bytes(self) -> int:
        return uplane_wire_bytes(self.block.prbs)


@dataclass
class UplaneUplink:
    """Uplink IQ data packet (RU → PHY): one captured transmission.

    ``realization`` is the channel state the transmission experienced;
    the PHY's codec applies the corresponding noise when it decodes, so
    the decode outcome is faithful to the realized SNR.
    """

    ru_id: int
    address: SlotAddress
    abs_slot: int
    block: TransportBlock
    realization: ChannelRealization
    #: HARQ ACK/NACK feedback for downlink TBs, decoded from UL control.
    dl_feedback: List[Tuple[int, int, int, bool]] = field(default_factory=list)
    #: Buffer status report carried in the UL MAC header.
    bsr_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return uplane_wire_bytes(max(self.block.prbs, 1))


@dataclass
class UplaneUplinkControlOnly:
    """UL control-plane capture when a UE has feedback but no data grant."""

    ru_id: int
    address: SlotAddress
    abs_slot: int
    ue_id: int = -1
    dl_feedback: List[Tuple[int, int, int, bool]] = field(default_factory=list)
    #: Scheduling request / buffer status carried on PUCCH.
    bsr_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return HEADER_OVERHEAD_BYTES + 8 * len(self.dl_feedback)
