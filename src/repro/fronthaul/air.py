"""The over-the-air interface between one RU and its UEs.

The air is a broadcast medium: the RU radiates downlink control and data
to all attached UEs, and collects whatever the UEs transmitted during an
uplink slot. Propagation delay at cell scale (< 10 km) is microseconds
and is folded into the slot-aligned timing, so exchanges here are
registry operations rather than scheduled events; all *timing* effects
come from which slots carry what.

Channel quality is per-UE: each :class:`UeRadioPort` owns a
:class:`~repro.phy.channel.UeChannelModel` queried at transmission time,
so both the RU-side (uplink) and UE-side (downlink) decodes see the same
slot's realization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.phy.channel import ChannelRealization, UeChannelModel
from repro.phy.transport import TransportBlock
from repro.fronthaul.oran import UlGrant, DlAllocation


class UeAirListener(Protocol):
    """UE-side hooks invoked by the air interface."""

    def on_dl_control(
        self, abs_slot: int, grants: List[UlGrant], vran_instance_id: int
    ) -> None:
        """Downlink control (incl. this UE's UL grants) received for a slot."""

    def on_dl_data(
        self, abs_slot: int, block: TransportBlock, realization: ChannelRealization
    ) -> None:
        """One downlink TB addressed to this UE arrives over the air."""


@dataclass
class UlTransmission:
    """What one UE put on the air in an uplink slot."""

    ue_id: int
    block: Optional[TransportBlock]
    realization: ChannelRealization
    #: (ue_id, harq_process, tb_id, ack) feedback for DL HARQ.
    dl_feedback: List[Tuple[int, int, int, bool]] = field(default_factory=list)
    #: Buffer status report: uplink bytes awaiting grants at the UE.
    bsr_bytes: int = 0


class UeRadioPort:
    """One UE's attachment point to the air."""

    def __init__(self, ue_id: int, channel: UeChannelModel, listener: UeAirListener) -> None:
        self.ue_id = ue_id
        self.channel = channel
        self.listener = listener
        #: Set False while the UE considers itself detached (post-RLF).
        self.attached = True
        #: Uplink transmissions staged for collection, keyed by slot.
        self._pending_ul: Dict[int, UlTransmission] = {}

    def realization_for(self, abs_slot: int) -> ChannelRealization:
        """The UE's channel realization for a slot (UL/DL reciprocal)."""
        return self.channel.snr_for_slot(abs_slot)

    def stage_uplink(
        self,
        abs_slot: int,
        block: Optional[TransportBlock],
        dl_feedback: List[Tuple[int, int, int, bool]],
        bsr_bytes: int = 0,
    ) -> None:
        """Queue this UE's transmission for an uplink slot."""
        self._pending_ul[abs_slot] = UlTransmission(
            ue_id=self.ue_id,
            block=block,
            realization=self.realization_for(abs_slot),
            dl_feedback=dl_feedback,
            bsr_bytes=bsr_bytes,
        )

    def collect_uplink(self, abs_slot: int) -> Optional[UlTransmission]:
        """RU-side: take whatever this UE transmitted in ``abs_slot``."""
        return self._pending_ul.pop(abs_slot, None)

    def drop_stale(self, before_slot: int) -> None:
        """Discard staged transmissions for slots that already passed."""
        stale = [slot for slot in self._pending_ul if slot < before_slot]
        for slot in stale:
            del self._pending_ul[slot]


class AirInterface:
    """Broadcast medium binding one RU to its attached UEs."""

    def __init__(self) -> None:
        self._ports: Dict[int, UeRadioPort] = {}

    def attach(self, port: UeRadioPort) -> None:
        """Attach a UE's radio port to this cell's air interface."""
        self._ports[port.ue_id] = port

    def detach(self, ue_id: int) -> None:
        self._ports.pop(ue_id, None)

    def port(self, ue_id: int) -> Optional[UeRadioPort]:
        return self._ports.get(ue_id)

    def ue_ids(self) -> List[int]:
        return sorted(self._ports)

    # ------------------------------------------------------------------
    # Downlink (RU -> UEs)
    # ------------------------------------------------------------------
    def broadcast_dl_control(
        self, abs_slot: int, grants: List[UlGrant], vran_instance_id: int = 1
    ) -> None:
        """Radiate the slot's downlink control to every attached UE."""
        for port in self._ports.values():
            if port.attached:
                port.listener.on_dl_control(abs_slot, grants, vran_instance_id)

    def deliver_dl_data(self, abs_slot: int, block: TransportBlock) -> None:
        """Radiate one downlink TB; only its target UE decodes it."""
        port = self._ports.get(block.ue_id)
        if port is not None and port.attached:
            port.listener.on_dl_data(abs_slot, block, port.realization_for(abs_slot))

    # ------------------------------------------------------------------
    # Uplink (UEs -> RU)
    # ------------------------------------------------------------------
    def collect_uplink(self, abs_slot: int) -> List[UlTransmission]:
        """RU-side capture of all transmissions made in an uplink slot."""
        captured: List[UlTransmission] = []
        for port in self._ports.values():
            transmission = port.collect_uplink(abs_slot)
            if transmission is not None and port.attached:
                captured.append(transmission)
            port.drop_stale(abs_slot)
        return captured
