"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro fig3
    python -m repro fig8 --duration 12 --failure-at 2.6
    python -m repro table2 --duration 60 --rates 1 10 20 50
    python -m repro all --quick
    python -m repro sec52 --jobs 4
    python -m repro lint [--strict-suppressions] [--sanitize] [paths...]
    python -m repro chaos [--scenario NAME ...] [--seeds 1 2 3] [--jobs N]
    python -m repro perf [--quick] [--check] [--jobs N]
    python -m repro telemetry [--quick] [--check] [--jobs N]
    python -m repro soak [--check --quick] [--resume CKPT] [--jobs N]
    python -m repro fleet [--check --quick] [--pool-sizes 0 1 2 4] [--jobs N]

Every experiment subcommand is derived from the
:data:`repro.experiments.REGISTRY` — the registry entry supplies the
description, the default/quick durations, and the mapping from parsed
CLI arguments to ``run(...)`` parameters, so adding an experiment means
registering a spec, not writing another shim. ``lint`` runs the
:mod:`repro.analysis` static checks (slinglint); ``chaos`` sweeps the
:mod:`repro.faults` fault-injection matrix; ``perf`` runs the
:mod:`repro.perf` benchmark harness; ``telemetry`` runs instrumented
failover scenarios (:mod:`repro.telemetry`).

The former per-experiment ``_run_*`` functions are gone; their exact
argument mappings live in each spec's ``cli_params``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import REGISTRY, ExperimentSpec

#: Harness verbs dispatched to their own sub-CLIs before experiment
#: argument parsing (name -> lazy main import).
_HARNESS_VERBS = ("lint", "chaos", "perf", "telemetry", "soak", "fleet")


def _registry_runner(spec: ExperimentSpec) -> Callable:
    """CLI adapter: parsed+defaulted args -> run -> paper-style summary."""

    def runner(args) -> str:
        return spec.summarize(spec.run(**spec.cli_params(args)))

    return runner


#: name -> (runner, description, default duration in seconds).
#: Derived from the experiment registry; the tuple shape is public API
#: (tests and docs index it), only its construction changed.
EXPERIMENTS: Dict[str, Tuple[Callable, str, float]] = {
    spec.name: (_registry_runner(spec), spec.description, spec.default_duration_s)
    for spec in REGISTRY.values()
}

#: Scaled-down durations for `--quick` / `all --quick`.
QUICK_DURATION: Dict[str, float] = {
    spec.name: spec.quick_duration_s
    for spec in REGISTRY.values()
    if spec.quick_duration_s is not None
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Slingshot paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all' / 'list'",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default: experiment-specific)")
    parser.add_argument("--failure-at", type=float, default=None,
                        help="failure/event injection time in seconds")
    parser.add_argument("--runs", type=int, default=None,
                        help="trial count for sampled experiments")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[1.0, 10.0, 20.0, 50.0],
                        help="migration rates for table2")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down durations for a fast pass")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for trial sweeps (sec52, sec82); "
                             "results are bit-identical at any value")
    return parser


def _defaults_for(name: str, args) -> None:
    _, _, default_duration = EXPERIMENTS[name]
    if args.duration is None:
        args.duration = (
            QUICK_DURATION.get(name, default_duration)
            if args.quick else default_duration
        )
    if args.failure_at is None:
        if name == "fig10":
            # Flows must be converged (past TCP slow start) at the event.
            args.failure_at = args.duration * 0.75
        else:
            args.failure_at = max(min(args.duration * 0.4, 2.6), 0.8)
    if args.runs is None:
        args.runs = 4 if args.quick else 8
    if args.quick and args.experiment == "all" and name == "table2":
        args.rates = [1.0, 20.0]


def _wall_seconds() -> float:
    """Host wall-clock seconds, for user-facing elapsed-time output only.

    One of the two allowlisted wall-clock sites in the package — the
    other is :mod:`repro.perf.timing`, the benchmark harness's sanctioned
    clock. Simulation logic must use Simulator.now; DET001 enforces that,
    PERF001 funnels perf code through the timing helper, and OBS001 bans
    both clocks and RNG from the telemetry layer.
    """
    return time.time()  # slinglint: disable=DET001


def _dispatch_harness(verb: str, argv: List[str]) -> int:
    if verb == "lint":
        from repro.analysis import runner as lint_runner

        return lint_runner.main(argv)
    if verb == "chaos":
        from repro.faults import campaign as chaos_campaign

        return chaos_campaign.main(argv)
    if verb == "perf":
        from repro.perf import runner as perf_runner

        return perf_runner.main(argv)
    if verb == "soak":
        from repro.checkpoint import soak as soak_harness

        return soak_harness.main(argv)
    if verb == "fleet":
        from repro.fleet import campaign as fleet_campaign

        return fleet_campaign.main(argv)
    from repro.telemetry import runner as telemetry_runner

    return telemetry_runner.main(argv)


def main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv and raw_argv[0] in _HARNESS_VERBS:
        return _dispatch_harness(raw_argv[0], raw_argv[1:])
    args = build_parser().parse_args(raw_argv)
    if args.experiment == "list":
        print("available experiments:")
        for name, (_, description, _) in EXPERIMENTS.items():
            print(f"  {name:7s} {description}")
        print("  lint    static-analysis pass over src/repro (slinglint)")
        print("  chaos   fault-injection campaign with recovery invariants")
        print("  perf    micro/macro benchmark harness with --check gate")
        print("  telemetry  instrumented failover metrics + timelines")
        print("  soak    continuous-operation run: checkpoints, resume, forking")
        print("  fleet   metro-scale availability vs pooled standby count")
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run 'python -m repro list' for options", file=sys.stderr)
        return 2
    for name in names:
        runner, description, _ = EXPERIMENTS[name]
        per_run_args = build_parser().parse_args(raw_argv)
        per_run_args.experiment = args.experiment
        _defaults_for(name, per_run_args)
        print(f"\n=== {name}: {description} ===")
        started = _wall_seconds()
        print(runner(per_run_args))
        print(f"  [{_wall_seconds() - started:.1f}s wall]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.
    sys.exit(main())
