"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list
    python -m repro fig3
    python -m repro fig8 --duration 12 --failure-at 2.6
    python -m repro table2 --duration 60 --rates 1 10 20 50
    python -m repro all --quick
    python -m repro sec52 --jobs 4
    python -m repro lint [paths...]
    python -m repro chaos [--scenario NAME ...] [--seeds 1 2 3] [--jobs N]
    python -m repro perf [--quick] [--check] [--jobs N]

Each experiment command runs the corresponding harness from
:mod:`repro.experiments` and prints its paper-style summary;
``lint`` runs the :mod:`repro.analysis` static checks (slinglint);
``chaos`` sweeps the :mod:`repro.faults` fault-injection matrix;
``perf`` runs the :mod:`repro.perf` benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import (
    fig3_vm_migration,
    fig8_video,
    fig9_ping,
    fig10_throughput,
    fig11_upgrade,
    fig12_orion_latency,
    sec52_detector,
    sec82_dropped_ttis,
    sec85_overhead,
    sec86_switch,
    table2_stress,
)


def _run_fig3(args) -> str:
    result = fig3_vm_migration.run(runs_per_transport=args.runs)
    return fig3_vm_migration.summarize(result)


def _run_fig8(args) -> str:
    result = fig8_video.run(duration_s=args.duration, failure_at_s=args.failure_at)
    return fig8_video.summarize(result)


def _run_fig9(args) -> str:
    result = fig9_ping.run(duration_s=args.duration, failure_at_s=args.failure_at)
    return fig9_ping.summarize(result)


def _run_fig10(args) -> str:
    result = fig10_throughput.run(
        duration_s=args.duration, event_at_s=args.failure_at
    )
    return fig10_throughput.summarize(result)


def _run_fig11(args) -> str:
    result = fig11_upgrade.run(
        duration_s=args.duration, upgrade_at_s=args.duration / 2
    )
    return fig11_upgrade.summarize(result)


def _run_fig12(args) -> str:
    result = fig12_orion_latency.run(duration_s=min(args.duration, 2.0))
    return fig12_orion_latency.summarize(result)


def _run_table2(args) -> str:
    result = table2_stress.run(rates_per_s=args.rates, duration_s=args.duration)
    return table2_stress.summarize(result)


def _run_sec52(args) -> str:
    result = sec52_detector.run(trials=args.runs, jobs=args.jobs)
    return sec52_detector.summarize(result)


def _run_sec82(args) -> str:
    result = sec82_dropped_ttis.run(trials=args.runs, jobs=args.jobs)
    return sec82_dropped_ttis.summarize(result)


def _run_sec85(args) -> str:
    result = sec85_overhead.run(duration_s=min(args.duration, 5.0))
    return sec85_overhead.summarize(result)


def _run_sec86(args) -> str:
    result = sec86_switch.run(gap_duration_s=min(args.duration, 5.0))
    return sec86_switch.summarize(result)


#: name -> (runner, description, default duration in seconds).
EXPERIMENTS: Dict[str, Tuple[Callable, str, float]] = {
    "fig3": (_run_fig3, "VM-migration pause-time CDF (baseline)", 0.0),
    "fig8": (_run_fig8, "video conferencing through PHY failure", 12.0),
    "fig9": (_run_fig9, "ping latency across failover (3 UEs)", 4.0),
    "fig10": (_run_fig10, "TCP/UDP throughput through failover", 2.4),
    "fig11": (_run_fig11, "zero-downtime live FEC upgrade", 10.0),
    "fig12": (_run_fig12, "Orion added latency vs load", 1.0),
    "table2": (_run_table2, "PHY-state-discard stress test", 60.0),
    "sec52": (_run_sec52, "in-switch failure-detector microbench", 0.0),
    "sec82": (_run_sec82, "dropped TTIs per resilience event", 0.0),
    "sec85": (_run_sec85, "secondary-PHY (null FAPI) overhead", 3.0),
    "sec86": (_run_sec86, "switch resources + inter-packet gap", 3.0),
}

#: Scaled-down durations for `--quick` / `all --quick`.
QUICK_DURATION: Dict[str, float] = {
    "fig8": 5.0, "fig9": 3.2, "fig10": 2.4, "fig11": 6.0,
    "fig12": 0.5, "table2": 4.0, "sec85": 1.5, "sec86": 1.5,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Slingshot paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all' / 'list'",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default: experiment-specific)")
    parser.add_argument("--failure-at", type=float, default=None,
                        help="failure/event injection time in seconds")
    parser.add_argument("--runs", type=int, default=None,
                        help="trial count for sampled experiments")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[1.0, 10.0, 20.0, 50.0],
                        help="migration rates for table2")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down durations for a fast pass")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for trial sweeps (sec52, sec82); "
                             "results are bit-identical at any value")
    return parser


def _defaults_for(name: str, args) -> None:
    _, _, default_duration = EXPERIMENTS[name]
    if args.duration is None:
        args.duration = (
            QUICK_DURATION.get(name, default_duration)
            if args.quick else default_duration
        )
    if args.failure_at is None:
        if name == "fig10":
            # Flows must be converged (past TCP slow start) at the event.
            args.failure_at = args.duration * 0.75
        else:
            args.failure_at = max(min(args.duration * 0.4, 2.6), 0.8)
    if args.runs is None:
        args.runs = 4 if args.quick else 8
    if args.quick and args.experiment == "all" and name == "table2":
        args.rates = [1.0, 20.0]


def _wall_seconds() -> float:
    """Host wall-clock seconds, for user-facing elapsed-time output only.

    One of the two allowlisted wall-clock sites in the package — the
    other is :mod:`repro.perf.timing`, the benchmark harness's sanctioned
    clock. Simulation logic must use Simulator.now; DET001 enforces that,
    and PERF001 funnels perf code through the timing helper.
    """
    return time.time()  # slinglint: disable=DET001


def main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv and raw_argv[0] == "lint":
        from repro.analysis import runner as lint_runner

        return lint_runner.main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "chaos":
        from repro.faults import campaign as chaos_campaign

        return chaos_campaign.main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "perf":
        from repro.perf import runner as perf_runner

        return perf_runner.main(raw_argv[1:])
    args = build_parser().parse_args(raw_argv)
    if args.experiment == "list":
        print("available experiments:")
        for name, (_, description, _) in EXPERIMENTS.items():
            print(f"  {name:7s} {description}")
        print("  lint    static-analysis pass over src/repro (slinglint)")
        print("  chaos   fault-injection campaign with recovery invariants")
        print("  perf    micro/macro benchmark harness with --check gate")
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run 'python -m repro list' for options", file=sys.stderr)
        return 2
    for name in names:
        runner, description, _ = EXPERIMENTS[name]
        per_run_args = build_parser().parse_args(raw_argv)
        per_run_args.experiment = args.experiment
        _defaults_for(name, per_run_args)
        print(f"\n=== {name}: {description} ===")
        started = _wall_seconds()
        print(runner(per_run_args))
        print(f"  [{_wall_seconds() - started:.1f}s wall]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.
    sys.exit(main())
