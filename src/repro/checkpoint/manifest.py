"""Checkpointable-state manifest (GENERATED — do not edit by hand).

One entry per runtime component class that carries checkpointable
state: ``qualname -> tuple of attribute names``. The checkpoint layer
(:mod:`repro.checkpoint.snapshot`) walks every captured/restored object
graph and asserts each listed instance still carries all of its listed
attributes; lint rule CKPT003 asserts this literal matches the static
state inventory. Regenerate with::

    python -m repro lint --write-manifest

after adding or removing mutable state on any runtime class.
"""

from __future__ import annotations

from typing import Dict, Tuple

STATE_MANIFEST: Dict[str, Tuple[str, ...]] = {
    'repro.apps.ping.PingClient': ('_outstanding', '_running', '_seq', 'samples'),
    'repro.apps.video.VideoReceiver': ('bins', 'bytes_received', 'packets_received'),
    'repro.apps.video.VideoSender': ('_frame_index', '_running', '_seq', 'frames_sent'),
    'repro.cell.deployment.BaselineCell': ('_reroute_armed',),
    'repro.core.failure_detector.FailureDetector': ('_last_heartbeat_ns', '_monitored', '_reported'),
    'repro.core.fh_middlebox.FronthaulMiddlebox': ('_pktgen', '_switch', 'detector', 'l2_table', 'notification_target'),
    'repro.core.migration.ClusterConfig': ('servers',),
    'repro.core.orion.L2SideOrion': ('cells', 'phy_orion_macs'),
    'repro.core.orion.PhySideOrion': ('_last_tti_slot', '_watchdog_running', 'nulls_injected'),
    'repro.core.orion._ServiceQueue': ('_busy_until', 'depth', 'max_depth'),
    'repro.corenet.core.CoreNetwork': ('_bearer_profiles', '_l2_for_ue', '_ue_snr_hint', '_ues', 'l2', 'packets_dl', 'packets_ul'),
    'repro.corenet.server.AppServer': ('_handlers', 'packets_received', 'packets_sent'),
    'repro.fapi.channels.ShmChannel': ('_pending', 'endpoint', 'messages_sent'),
    'repro.faults.injector.FaultInjector': ('_armed', 'impairments'),
    'repro.faults.soak.ProbeGapMonitor': ('deliveries', 'last_rx_ns', 'max_gap_ns'),
    'repro.fleet.phy_backend.FleetPhyBackend': ('_cache', '_cache_time', '_planned'),
    'repro.fleet.pool.StandbyPool': ('available', 'exhaustions', 'promotions', 'rewarmed'),
    'repro.fleet.population.FleetPopulation': ('cell_down', 'degraded_user_epochs', 'epochs', 'served_user_epochs'),
    'repro.fronthaul.air.AirInterface': ('_ports',),
    'repro.fronthaul.air.UeRadioPort': ('_pending_ul',),
    'repro.fronthaul.ru.RadioUnit': ('_cplane', '_dl_data', '_last_source_phy', '_sources_per_slot', '_started'),
    'repro.l2.mac.L2Process': ('_dl_rr_cursor', '_started', 'fapi_tx', 'ues'),
    'repro.l2.rlc.RlcReceiver': ('_expected_seq', '_fallback_clock', '_held', '_partial', '_seen', '_seen_max', 'pdus_since_status'),
    'repro.l2.rlc.RlcTransmitter': ('_flight', '_next_seq', '_queue', '_queued_bytes', '_retx', '_trail_misses'),
    'repro.net.addresses.MacAllocator': ('_next',),
    'repro.net.link.Link': ('_line_free_at', 'bytes_sent', 'endpoint', 'frames_sent'),
    'repro.net.p4.control.ControlPlane': ('updates_issued',),
    'repro.net.p4.packetgen.PacketGenerator': ('packets_injected',),
    'repro.net.p4.registers.RegisterArray': ('_cells', 'reads', 'writes'),
    'repro.net.p4.tables.MatchActionTable': ('_entries', 'hits', 'lookups'),
    'repro.net.ptp.PtpClock': ('_base_offset_ns', '_drift', '_last_sync_ns', 'disciplined', 'epoch_ns', 'syncs_applied'),
    'repro.net.switch.StaticL2Pipeline': ('mac_table',),
    'repro.net.switch.Switch': ('_ports', 'frames_dropped', 'frames_processed'),
    'repro.net.switch.SwitchPort': ('frames_in', 'frames_out'),
    'repro.phy.channel.UeChannelModel': ('_fade_until_slot', '_last_slot', '_shadow_db'),
    'repro.phy.harq.HarqBuffer': ('soft_llrs', 'tb_id', 'transmissions'),
    'repro.phy.harq.HarqProcessPool': ('_buffers',),
    'repro.phy.mimo.BeamformingTracker': ('_state', 'discards', 'soundings_processed'),
    'repro.phy.process.PhyProcess': ('_pending', '_tick_handle', 'alive', 'cells', 'codec', 'hung', 'service_inflation_ns', 'snr_filter'),
    'repro.phy.snr_filter.SnrMovingAverage': ('_state',),
    'repro.sim.engine.EventHandle': ('cancelled',),
    'repro.sim.engine.PeriodicHandle': ('cancelled', 'epoch', 'next_time'),
    'repro.sim.engine.Simulator': ('_cancelled_in_queue', '_events_processed', '_now', '_queue', '_running', '_wheel', '_wheel_garbage', '_wheel_size', '_wheel_times', 'compactions', 'wheel_compactions'),
    'repro.sim.process.PeriodicProcess': ('_next_tick', '_stopped', 'tick_count'),
    'repro.sim.rng.BatchedIntegers': ('_buf', '_pos'),
    'repro.sim.rng.BatchedUniform': ('_buf', '_pos'),
    'repro.sim.rng.RngRegistry': ('_streams',),
    'repro.sim.trace.TraceRecorder': ('_by_category', '_chain', '_events', '_evicted_events', '_evicted_horizon_ns'),
    'repro.transport.tcp.TcpReceiver': ('_ooo', 'bins', 'bytes_delivered', 'rcv_nxt', 'segments_received'),
    'repro.transport.tcp.TcpSender': ('_dupacks', '_flight', '_lost', '_rack_time', '_recover', '_rto_handle', '_running', '_sacked', 'cwnd', 'in_fast_recovery', 'rto_ns', 'rttvar_ns', 'snd_nxt', 'snd_una', 'srtt_ns', 'ssthresh'),
    'repro.transport.udp.UdpSender': ('_running', '_seq', 'bitrate_bps'),
    'repro.transport.udp.UdpSink': ('_seen', '_seen_max_seq', 'bin_packets', 'bins', 'latencies_ns'),
    'repro.ue.ue.UserEquipment': ('_last_dl_control_ns', '_last_status_ns', '_out_of_sync', '_pending_feedback', '_pending_ul_status', '_sent_blocks', '_staged_slots', '_vran_instance_id', 'attached', 'dl_rx', 'ul_tx'),
}
