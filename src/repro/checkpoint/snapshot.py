"""Checkpoint capture/restore with manifest-verified object graphs.

A checkpoint is the pickled object graph of one *root* (a harness or
soak state holding exactly one :class:`~repro.sim.engine.Simulator`)
plus a small metadata header. Pickling snapshots everything the next
event needs — the event heap (bound-method callbacks included), every
RNG generator's position, component state, in-flight fault windows —
because the runtime graph is kept closure-free by construction (see
:mod:`repro.apps.dispatch`).

Trust, but verify: before serializing and again after restoring, the
:class:`SnapshotRegistry` walks the graph and checks every instance of
a manifest-listed runtime class still carries all of its checkpointable
attributes. The manifest itself is generated from the static state
inventory and pinned by lint rule CKPT003, so the chain is

    source AST  ==CKPT003==  manifest literal  ==SnapshotRegistry==  live graph

and a class growing mutable state without the checkpoint layer knowing
fails loudly — at lint time if the manifest is stale, at capture time
if an instance diverges from the manifest.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import types
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.checkpoint.manifest import STATE_MANIFEST

#: Bumped whenever the on-disk layout changes; load() refuses mismatches.
SCHEMA_VERSION = 1

_MAGIC = b"repro-ckpt/1\n"

#: Leaf values the graph walk never descends into.
_ATOMIC = (type(None), bool, int, float, complex, str, bytes, bytearray)

_SIMULATOR_QUALNAME = "repro.sim.engine.Simulator"


class SnapshotError(RuntimeError):
    """A checkpoint failed verification (graph drift or corruption)."""


def _qualname(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def iter_object_graph(root: Any) -> Iterator[Any]:
    """Yield every object reachable from ``root`` exactly once.

    Follows the same edges pickle serializes: instance ``__dict__`` and
    ``__slots__`` attributes, container elements (list/tuple/dict/set/
    deque), and bound-method ``__self__`` back-references (the event
    heap stores callbacks as bound methods). Functions, types, and
    modules are boundaries — pickle stores them by reference.
    """
    seen: Dict[int, Any] = {}
    stack: List[Any] = [root]
    while stack:
        obj = stack.pop()
        if isinstance(obj, _ATOMIC):
            continue
        if id(obj) in seen:
            continue
        seen[id(obj)] = obj  # keep a strong ref so ids stay unique
        yield obj
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset, deque)):
            stack.extend(obj)
            continue
        if isinstance(obj, types.MethodType):
            stack.append(obj.__self__)
            continue
        if isinstance(
            obj,
            (types.FunctionType, types.BuiltinFunctionType, type, types.ModuleType),
        ):
            continue
        instance_dict = getattr(obj, "__dict__", None)
        if isinstance(instance_dict, dict):
            stack.extend(instance_dict.values())
        for klass in type(obj).__mro__:
            slots = getattr(klass, "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for slot in slots:
                if slot in ("__dict__", "__weakref__"):
                    continue
                try:
                    stack.append(getattr(obj, slot))
                except AttributeError:
                    pass  # slot declared but never assigned


class SnapshotRegistry:
    """Graph-walking verifier binding checkpoints to the state manifest."""

    def __init__(self, manifest: Optional[Dict[str, Tuple[str, ...]]] = None) -> None:
        self.manifest = STATE_MANIFEST if manifest is None else manifest

    def scan(self, root: Any) -> Tuple[Dict[str, int], List[Any], List[str]]:
        """One walk: manifest-class instance counts, simulators, problems."""
        counts: Dict[str, int] = {}
        simulators: List[Any] = []
        problems: List[str] = []
        for obj in iter_object_graph(root):
            qualname = _qualname(obj)
            if qualname == _SIMULATOR_QUALNAME:
                simulators.append(obj)
            attrs = self.manifest.get(qualname)
            if attrs is None:
                continue
            counts[qualname] = counts.get(qualname, 0) + 1
            for attr in attrs:
                if not hasattr(obj, attr):
                    problems.append(
                        f"{qualname} instance is missing checkpointable "
                        f"attribute {attr!r} (manifest drift — regenerate "
                        "repro/checkpoint/manifest.py)"
                    )
        return counts, simulators, problems

    def verify(self, root: Any) -> Tuple[Dict[str, int], Any]:
        """Verify a graph; returns (class counts, the unique simulator).

        Raises :class:`SnapshotError` when an instance is missing a
        manifest attribute or the graph does not hold exactly one
        simulator (a checkpoint must capture one engine — zero means
        the root is not a run, two means entangled runs).
        """
        counts, simulators, problems = self.scan(root)
        if len(simulators) != 1:
            problems.append(
                f"checkpoint root must reach exactly 1 Simulator, "
                f"found {len(simulators)}"
            )
        if problems:
            raise SnapshotError(
                "snapshot verification failed:\n  " + "\n  ".join(problems)
            )
        return counts, simulators[0]


@dataclass(frozen=True)
class CheckpointMeta:
    """Header describing one checkpoint payload."""

    schema: int
    label: str
    sim_now_ns: int
    events_processed: int
    payload_sha256: str
    #: Manifest-class instance counts at capture time; restore verifies
    #: the deserialized graph reproduces them exactly.
    classes: Dict[str, int]

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "label": self.label,
            "sim_now_ns": self.sim_now_ns,
            "events_processed": self.events_processed,
            "payload_sha256": self.payload_sha256,
            "classes": self.classes,
        }

    @staticmethod
    def from_dict(data: dict) -> "CheckpointMeta":
        return CheckpointMeta(
            schema=data["schema"],
            label=data["label"],
            sim_now_ns=data["sim_now_ns"],
            events_processed=data["events_processed"],
            payload_sha256=data["payload_sha256"],
            classes=dict(data["classes"]),
        )


@dataclass(frozen=True)
class Checkpoint:
    """A captured run: verified pickled graph + metadata header."""

    meta: CheckpointMeta
    payload: bytes

    @classmethod
    def capture(
        cls,
        root: Any,
        label: str = "",
        registry: Optional[SnapshotRegistry] = None,
    ) -> "Checkpoint":
        """Snapshot ``root`` after verifying it against the manifest."""
        reg = registry if registry is not None else SnapshotRegistry()
        counts, simulator = reg.verify(root)
        payload = pickle.dumps(root, protocol=pickle.HIGHEST_PROTOCOL)
        meta = CheckpointMeta(
            schema=SCHEMA_VERSION,
            label=label,
            sim_now_ns=simulator.now,
            events_processed=simulator.events_processed,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            classes=counts,
        )
        return cls(meta=meta, payload=payload)

    def restore(self, registry: Optional[SnapshotRegistry] = None) -> Any:
        """Deserialize and re-verify; returns the restored root.

        The restored graph must pass the same manifest walk as capture
        did *and* reproduce the captured class counts and simulator
        clock — asymmetric pickling (a ``__reduce__`` quietly dropping
        state) shows up here, not three subsystems later.
        """
        digest = hashlib.sha256(self.payload).hexdigest()
        if digest != self.meta.payload_sha256:
            raise SnapshotError(
                f"payload corrupted: sha256 {digest[:12]}... != "
                f"recorded {self.meta.payload_sha256[:12]}..."
            )
        root = pickle.loads(self.payload)
        reg = registry if registry is not None else SnapshotRegistry()
        counts, simulator = reg.verify(root)
        problems = []
        if counts != self.meta.classes:
            problems.append(
                f"restored class counts {counts!r} != captured "
                f"{self.meta.classes!r}"
            )
        if simulator.now != self.meta.sim_now_ns:
            problems.append(
                f"restored sim clock {simulator.now} != captured "
                f"{self.meta.sim_now_ns}"
            )
        if problems:
            raise SnapshotError(
                "restore verification failed:\n  " + "\n  ".join(problems)
            )
        return root

    def save(self, path: Path) -> None:
        """Write ``MAGIC + meta json line + payload`` to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(self.meta.as_dict(), sort_keys=True).encode("utf-8")
        path.write_bytes(_MAGIC + header + b"\n" + self.payload)

    @staticmethod
    def load(path: Path) -> "Checkpoint":
        data = Path(path).read_bytes()
        if not data.startswith(_MAGIC):
            raise SnapshotError(f"{path}: not a repro checkpoint file")
        rest = data[len(_MAGIC):]
        newline = rest.index(b"\n")
        meta = CheckpointMeta.from_dict(json.loads(rest[:newline].decode("utf-8")))
        if meta.schema != SCHEMA_VERSION:
            raise SnapshotError(
                f"{path}: checkpoint schema {meta.schema} != "
                f"supported {SCHEMA_VERSION}"
            )
        return Checkpoint(meta=meta, payload=rest[newline + 1:])
