"""Digest-verified checkpoint/restore for whole simulator graphs.

The checkpoint subsystem snapshots a *root object* — a
:class:`~repro.faults.campaign.ProbeHarness`, a
:class:`~repro.faults.soak.SoakState`, any picklable graph holding one
:class:`~repro.sim.engine.Simulator` — and restores it into a new
process such that continuing the restored run replays **bit-identically**
(canonical trace digest) to the uninterrupted original. Three layers
keep that promise honest:

* :mod:`repro.checkpoint.manifest` — a generated literal of every
  runtime class's checkpointable attributes, diffed against the static
  state inventory by lint rule CKPT003 so serializer drift fails tier-1;
* :mod:`repro.checkpoint.snapshot` — capture/restore plus a graph walk
  verifying each snapshotted instance against the manifest;
* :mod:`repro.checkpoint.soak` / :mod:`repro.checkpoint.fork` — the
  continuous-operation harness (``python -m repro soak``): long-horizon
  runs with background chaos, bounded-memory rolling trace digests,
  crash-resume, and forking one warm checkpoint into many chaos futures.
"""

from repro.checkpoint.snapshot import (
    Checkpoint,
    CheckpointMeta,
    SnapshotError,
    SnapshotRegistry,
    iter_object_graph,
)

__all__ = [
    "Checkpoint",
    "CheckpointMeta",
    "SnapshotError",
    "SnapshotRegistry",
    "iter_object_graph",
]
