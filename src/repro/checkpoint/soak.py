"""Continuous-operation soak harness + ``python -m repro soak`` CLI.

A soak run drives one cell for a long horizon with background chaos
(:mod:`repro.faults.soak`), under the constraints a real continuously
operating deployment imposes:

* **bounded memory** — the trace keeps only recent windows; the rolling
  digest chain (:meth:`~repro.sim.trace.TraceRecorder.rolling_digest`)
  survives eviction and still equals the full-trace digest;
* **periodic checkpoints** — every ``checkpoint_every_ns`` the whole
  :class:`~repro.faults.soak.SoakState` graph is captured, verified
  against the state manifest, and written to disk (older checkpoints
  pruned);
* **crash-resume** — ``--resume FILE`` restores a checkpoint and
  finishes the horizon; the resumed run's rolling digest must equal the
  uninterrupted run's, and the recorded baseline pins both;
* **scenario forking** — one warm checkpoint branches into the whole
  chaos matrix (:mod:`repro.checkpoint.fork`), digest-identical to cold
  runs and faster than rebuilding each (the recorded speedup is the
  BENCH's headline number).

``python -m repro soak`` records ``benchmarks/BENCH_soak.json``;
``--check [--quick]`` reruns deterministically and gates on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.fork import forked_sweep
from repro.checkpoint.snapshot import Checkpoint
from repro.faults.soak import (
    SoakConfig,
    SoakState,
    build_soak_state,
    drive_soak_to,
    plan_summary,
)
from repro.perf.timing import wall_ns
from repro.sim.units import MS

#: Checkpoints kept on disk during a soak (older boundaries pruned).
KEEP_CHECKPOINTS = 3

#: Recorded-speedup floor the ``--check`` gate enforces for the forked
#: sweep (vs the cold sweep at the same --jobs).
FORK_SPEEDUP_FLOOR = 1.5

#: Scenario subset the quick profile forks (shares one warm base, so
#: the digest-identity property gets exercised end to end cheaply).
QUICK_FORK_SCENARIOS = ("fh_loss", "crash", "crash_restart", "cmd_drop")

#: The two recorded baseline profiles.
PROFILES: Dict[str, SoakConfig] = {
    "quick": SoakConfig(seed=1, horizon_ns=1_500 * MS),
    "full": SoakConfig(seed=1, horizon_ns=3_000 * MS),
}


def _checkpoint_boundaries(config: SoakConfig, after_ns: int) -> List[int]:
    """Absolute checkpoint times in ``(after_ns, horizon_ns]``.

    Derived from the config alone, so an interrupted run resumed from
    any checkpoint walks the identical boundary schedule.
    """
    boundaries = []
    t = config.checkpoint_every_ns
    while t <= config.horizon_ns:
        if t > after_ns:
            boundaries.append(t)
        t += config.checkpoint_every_ns
    return boundaries


def run_soak(
    config: Optional[SoakConfig] = None,
    checkpoint_dir: Optional[Path] = None,
    resume: Optional[Path] = None,
    keep: int = KEEP_CHECKPOINTS,
) -> Tuple[SoakState, Dict[str, Any], List[Tuple[int, Path]]]:
    """Run (or resume) one soak; returns (state, summary, checkpoints).

    With ``resume`` the config travels inside the restored state and
    ``config`` must be None. At every boundary the trace evicts all
    complete digest windows behind it and (when ``checkpoint_dir`` is
    set) a verified checkpoint is written; only the last ``keep``
    boundary checkpoints stay on disk.
    """
    if resume is not None:
        if config is not None:
            raise ValueError("pass either config or resume, not both")
        restored = Checkpoint.load(resume).restore()
        if not isinstance(restored, SoakState):
            raise TypeError(f"{resume} is not a soak checkpoint")
        state = restored
        config = state.config
        resumed_from: Optional[int] = state.cell.sim.now
    else:
        if config is None:
            config = PROFILES["full"]
        state = build_soak_state(config)
        resumed_from = None
    written: List[Tuple[int, Path]] = []
    for boundary in _checkpoint_boundaries(config, state.cell.sim.now):
        drive_soak_to(state, boundary)
        state.cell.trace.evict_before(boundary)
        if checkpoint_dir is not None:
            path = Path(checkpoint_dir) / (
                f"soak_s{config.seed}_t{boundary}.ckpt"
            )
            Checkpoint.capture(
                state, label=f"soak seed={config.seed} t={boundary}"
            ).save(path)
            written.append((boundary, path))
            while len(written) > keep:
                _, stale = written.pop(0)
                stale.unlink(missing_ok=True)
    if state.cell.sim.now < config.horizon_ns:
        drive_soak_to(state, config.horizon_ns)
    summary = {
        "seed": config.seed,
        "horizon_ns": config.horizon_ns,
        "window_ns": config.window_ns,
        "checkpoint_every_ns": config.checkpoint_every_ns,
        "rolling_digest": state.cell.trace.rolling_digest(),
        "events_processed": state.cell.sim.events_processed,
        "evicted_events": state.cell.trace.evicted_events,
        "retained_events": len(state.cell.trace),
        "probe_deliveries": state.monitor.deliveries,
        "max_probe_gap_ms": round(state.monitor.max_gap_ns / 1e6, 3),
        "checkpoints_written": len(written),
        "resumed_from_ns": resumed_from,
        "plan": plan_summary(state.injector.plan),
    }
    return state, summary, written


def _verify_resume(
    written: Sequence[Tuple[int, Path]], expected_digest: str
) -> Dict[str, Any]:
    """Resume from the earliest retained checkpoint and re-finish.

    The resumed run must reproduce the uninterrupted run's rolling
    digest exactly — mid-horizon state, in-flight faults, evicted
    windows, and the gap monitor all restored bit-for-bit.
    """
    boundary, path = written[0]
    _, summary, _ = run_soak(resume=path)
    return {
        "resumed_from_ns": boundary,
        "rolling_digest": summary["rolling_digest"],
        "digest_matched": summary["rolling_digest"] == expected_digest,
        "max_probe_gap_ms": summary["max_probe_gap_ms"],
    }


def _chaos_baseline_digests() -> Dict[Tuple[str, int], str]:
    from repro.faults.campaign import default_bench_path

    path = default_bench_path()
    if not path.exists():
        return {}
    return {
        (entry["scenario"], entry["seed"]): entry["digest"]
        for entry in json.loads(path.read_text()).get("runs", [])
    }


#: Seeds the full profile's fork/cold comparison sweeps. Two seeds
#: double the branches per warm base, which is exactly the regime
#: forking exists for (many futures off one warm past).
FULL_FORK_SEEDS = (1, 2)


def _fork_section(
    quick: bool,
    jobs: int,
    checkpoint_dir: Path,
    measure_speedup: bool,
    seeds: Sequence[int] = (1,),
) -> Dict[str, Any]:
    """Forked sweep vs chaos baseline, optionally timed against cold.

    The speedup compares, at the same ``jobs``, a cold sweep (every
    (scenario, seed) rebuilt from scratch) against a forked sweep
    branching from **existing** warm-base checkpoints — the steady
    state of a continuously operating deployment, where warm
    checkpoints are already on disk (the soak writes them
    continuously). The one-time base construction is timed and
    reported separately (``base_build_wall_seconds``); it is amortized
    across every subsequent sweep that reuses the bases.
    """
    from repro.checkpoint.fork import ensure_fork_bases
    from repro.faults.campaign import run_campaign
    from repro.faults.scenarios import scenario_by_name, standard_scenarios

    if quick:
        catalog = scenario_by_name()
        scenarios = [catalog[name] for name in QUICK_FORK_SCENARIOS]
    else:
        scenarios = list(standard_scenarios())
    started = wall_ns()
    ensure_fork_bases(scenarios, seeds, checkpoint_dir, jobs=jobs)
    base_build_wall = (wall_ns() - started) / 1e9
    started = wall_ns()
    report, fork_info = forked_sweep(
        scenarios, seeds=seeds, checkpoint_dir=checkpoint_dir, jobs=jobs
    )
    forked_wall = (wall_ns() - started) / 1e9
    baseline = _chaos_baseline_digests()
    mismatched = [
        f"{run.scenario}/seed={run.seed}"
        for run in report.runs
        if baseline.get((run.scenario, run.seed)) != run.digest
    ]
    section: Dict[str, Any] = {
        "scenarios": [s.name for s in scenarios],
        "seeds": list(seeds),
        "jobs": jobs,
        "runs_total": len(report.runs),
        "all_passed": all(run.passed for run in report.runs),
        "digests_matched_chaos_baseline": not mismatched,
        "mismatched": mismatched,
        "base_build_wall_seconds": round(base_build_wall, 3),
        "forked_wall_seconds": round(forked_wall, 3),
        **fork_info,
    }
    if measure_speedup:
        started = wall_ns()
        cold = run_campaign(scenarios, seeds=seeds, replay=False, jobs=jobs)
        cold_wall = (wall_ns() - started) / 1e9
        cold_mismatch = [
            f"{run.scenario}/seed={run.seed}"
            for run in cold.runs
            if baseline.get((run.scenario, run.seed)) != run.digest
        ]
        section["cold_wall_seconds"] = round(cold_wall, 3)
        section["cold_digests_matched"] = not cold_mismatch
        section["speedup"] = (
            round(cold_wall / forked_wall, 3) if forked_wall > 0 else None
        )
    return section


def run_profile(
    profile: str, jobs: int, measure_speedup: bool
) -> Dict[str, Any]:
    """One recorded-baseline profile: soak + resume + forked sweep."""
    config = PROFILES[profile]
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        tmp_path = Path(tmp)
        _, soak, written = run_soak(config, checkpoint_dir=tmp_path / "soak")
        resume = _verify_resume(written, soak["rolling_digest"])
        fork = _fork_section(
            quick=(profile == "quick"),
            jobs=jobs,
            checkpoint_dir=tmp_path / "fork",
            measure_speedup=measure_speedup,
            seeds=(1,) if profile == "quick" else FULL_FORK_SEEDS,
        )
    return {"soak": soak, "resume": resume, "fork": fork}


def profile_passed(section: Dict[str, Any]) -> bool:
    return bool(
        section["resume"]["digest_matched"]
        and section["fork"]["all_passed"]
        and section["fork"]["digests_matched_chaos_baseline"]
    )


# ----------------------------------------------------------------------
# Experiment registry surface (python -m repro all / list)
# ----------------------------------------------------------------------
def run(horizon_s: float = 3.0, seed: int = 1, jobs: int = 1) -> Dict[str, Any]:
    """Experiment entrypoint: soak + crash-resume digest verification."""
    # At least two checkpoint intervals, so there is a boundary to
    # resume from and meaningful trace eviction behind it.
    config = SoakConfig(seed=seed, horizon_ns=max(int(horizon_s * 1e9), 1_000 * MS))
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        _, soak, written = run_soak(config, checkpoint_dir=Path(tmp))
        resume = _verify_resume(written, soak["rolling_digest"])
    return {"soak": soak, "resume": resume, "jobs": jobs}


def summarize(result: Dict[str, Any]) -> str:
    soak = result["soak"]
    resume = result["resume"]
    plan = soak["plan"]
    lines = [
        f"soak: {soak['horizon_ns'] / 1e9:.1f} s horizon, seed {soak['seed']}",
        f"  background faults: {plan['faults_total']} ({plan['by_kind']})",
        f"  probe deliveries:  {soak['probe_deliveries']} "
        f"(max gap {soak['max_probe_gap_ms']:.2f} ms)",
        f"  trace: {soak['events_processed']} events, "
        f"{soak['evicted_events']} evicted, "
        f"{soak['retained_events']} retained",
        f"  rolling digest:    {soak['rolling_digest'][:16]}...",
        f"  crash-resume from {resume['resumed_from_ns'] / 1e6:.0f} ms: "
        + ("digest MATCHED" if resume["digest_matched"] else "digest MISMATCH"),
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI (python -m repro soak)
# ----------------------------------------------------------------------
def default_bench_path() -> Path:
    """Repo-local baseline location: ``benchmarks/BENCH_soak.json``."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_soak.json"


def check_against_baseline(
    fresh: Dict[str, Any], profile: str, baseline_path: Path
) -> List[str]:
    """Gate a fresh profile run against the recorded baseline.

    Deterministic fields (digests, verdicts) must match exactly; the
    recorded **full**-profile fork speedup must clear
    :data:`FORK_SPEEDUP_FLOOR` (wall times are machine facts, so the
    gate trusts the recorded measurement rather than re-timing).
    """
    failures: List[str] = []
    if not baseline_path.exists():
        return [f"baseline {baseline_path} does not exist (record it first)"]
    recorded_all = json.loads(baseline_path.read_text())
    recorded = recorded_all.get("profiles", {}).get(profile)
    if recorded is None:
        return [f"baseline has no {profile!r} profile (re-record it)"]
    for key in ("rolling_digest", "events_processed", "probe_deliveries"):
        if fresh["soak"][key] != recorded["soak"][key]:
            failures.append(
                f"soak.{key}: {fresh['soak'][key]!r} != recorded "
                f"{recorded['soak'][key]!r}"
            )
    if not fresh["resume"]["digest_matched"]:
        failures.append("crash-resume digest did not match the soak digest")
    if fresh["resume"]["rolling_digest"] != recorded["resume"]["rolling_digest"]:
        failures.append("resume digest differs from recorded baseline")
    if not fresh["fork"]["digests_matched_chaos_baseline"]:
        failures.append(
            "forked sweep digests diverged from BENCH_chaos: "
            + ", ".join(fresh["fork"]["mismatched"])
        )
    if not fresh["fork"]["all_passed"]:
        failures.append("forked sweep had failing scenario runs")
    full = recorded_all.get("profiles", {}).get("full", {})
    speedup = full.get("fork", {}).get("speedup")
    if speedup is None:
        failures.append("baseline records no full-profile fork speedup")
    elif speedup < FORK_SPEEDUP_FLOOR:
        failures.append(
            f"recorded fork speedup {speedup}x below the "
            f"{FORK_SPEEDUP_FLOOR}x floor"
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cliopts import harness_options, resolve_jobs

    parser = argparse.ArgumentParser(
        prog="repro soak",
        description="Continuous-operation soak: background chaos, rolling "
        "digests, checkpoint/resume, and scenario forking.",
        parents=[harness_options()],
    )
    parser.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="CKPT",
        help="restore this checkpoint and finish its horizon",
    )
    parser.add_argument(
        "--ckpt-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for periodic checkpoints (default: temporary)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="soak seed (default: 1)"
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        metavar="S",
        help="simulated seconds (default: profile-specific)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    jobs = resolve_jobs(args.jobs, "repro soak")
    if jobs is None:
        return 2

    if args.resume is not None:
        _, summary, _ = run_soak(
            resume=args.resume, checkpoint_dir=args.ckpt_dir
        )
        print(
            f"resumed from {summary['resumed_from_ns'] / 1e6:.0f} ms, "
            f"finished at {summary['horizon_ns'] / 1e6:.0f} ms"
        )
        print(f"rolling digest: {summary['rolling_digest']}")
        return 0

    if args.check:
        profile = "quick" if args.quick else "full"
        fresh = run_profile(profile, jobs=jobs, measure_speedup=False)
        failures = check_against_baseline(
            fresh,
            profile,
            args.out if args.out is not None else default_bench_path(),
        )
        if failures:
            print(f"soak check FAILED ({len(failures)} mismatch(es)):")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(
            f"soak check passed ({profile} profile, "
            f"digest {fresh['soak']['rolling_digest'][:12]}...)"
        )
        return 0

    if args.horizon is not None or args.seed != 1:
        # One-off run (not the recorded baseline shape).
        config = SoakConfig(
            seed=args.seed,
            horizon_ns=int((args.horizon or 3.0) * 1e9),
        )
        ckpt_dir = args.ckpt_dir
        if ckpt_dir is None:
            with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
                _, summary, written = run_soak(config, checkpoint_dir=Path(tmp))
                resume = _verify_resume(written, summary["rolling_digest"])
        else:
            _, summary, written = run_soak(config, checkpoint_dir=ckpt_dir)
            resume = _verify_resume(written, summary["rolling_digest"])
        print(summarize({"soak": summary, "resume": resume, "jobs": jobs}))
        return 0 if resume["digest_matched"] else 1

    report = {
        "benchmark": "soak",
        "profiles": {
            "quick": run_profile("quick", jobs=jobs, measure_speedup=False),
            "full": run_profile("full", jobs=jobs, measure_speedup=True),
        },
    }
    passed = all(profile_passed(p) for p in report["profiles"].values())
    out = args.out if args.out is not None else default_bench_path()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    full_fork = report["profiles"]["full"]["fork"]
    print(
        f"soak baseline written to {out}\n"
        f"  fork speedup: {full_fork.get('speedup')}x "
        f"(cold {full_fork.get('cold_wall_seconds')}s vs "
        f"forked {full_fork.get('forked_wall_seconds')}s at jobs={jobs})"
    )
    return 0 if passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
