"""Scenario forking: branch one warm checkpoint into many chaos futures.

Every chaos scenario spends its first ~540 ms identically: build the
cell, attach the UE, start the probe, idle until the fault window. A
cold sweep pays that warmup once per (scenario, seed); a *forked* sweep
pays it once per **fork base** — a warm, unarmed
:class:`~repro.faults.campaign.ProbeHarness` checkpointed just before
the earliest fault of the scenarios it serves — and then branches the
checkpoint into every scenario by restoring, arming the plan, and
running the remainder.

Digest-exactness is not approximate: link impairments draw RNG only
inside their spec windows (fixed per-frame draw order), process/clock
transitions are scheduled at absolute times, and registry streams are
seeded by name alone — so arming a plan at the fork point consumes
exactly the draws an at-build arm would have, and every forked branch's
canonical trace digest equals the cold run's. ``--check`` and the
tier-1 tests assert this against ``BENCH_chaos.json``.

Fork bases are keyed by ``(seed, num_phy_servers, fork_ns)``: most
scenarios share one base (fault at :data:`~repro.faults.scenarios.FAULT_AT_NS`),
``clock_drift`` needs an earlier branch point (its clock fault leads
the crash by 100 ms), and ``no_secondary`` runs a one-PHY cell.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.snapshot import Checkpoint
from repro.faults.campaign import (
    CampaignReport,
    ProbeHarness,
    arm_plan,
    build_probe_harness,
    drive_to,
    judge_execution,
)
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import ChaosScenario, RUN_END_NS
from repro.parallel.pool import run_shards
from repro.sim.units import MS

#: Branch this long before a scenario's earliest fault: late enough to
#: amortize warmup, early enough that every plan-scheduled transition
#: is still in the future when the restored harness arms it.
FORK_MARGIN_NS = 10 * MS

#: ``(seed, num_phy_servers, fork_ns)`` — one warm base per key.
ForkKey = Tuple[int, int, int]


def earliest_fault_ns(plan: FaultPlan) -> int:
    """The first absolute time at which a plan touches the cell."""
    times = (
        [spec.at_ns for spec in plan.process_faults]
        + [spec.start_ns for spec in plan.link_faults]
        + [spec.at_ns for spec in plan.clock_faults]
    )
    if not times:
        raise ValueError(f"plan {plan.name!r} has no faults to fork before")
    return min(times)


def fork_key(scenario: ChaosScenario, seed: int) -> ForkKey:
    """The warm-base key serving one (scenario, seed) branch."""
    return (
        seed,
        scenario.num_phy_servers,
        earliest_fault_ns(scenario.plan) - FORK_MARGIN_NS,
    )


def build_fork_base(key: ForkKey) -> Checkpoint:
    """Build and checkpoint one warm, unarmed harness at its fork point."""
    seed, num_phy_servers, fork_ns = key
    harness = build_probe_harness(seed, num_phy_servers=num_phy_servers)
    drive_to(harness, fork_ns)
    return Checkpoint.capture(
        harness, label=f"fork-base seed={seed} phys={num_phy_servers} t={fork_ns}"
    )


def run_forked_scenario(
    scenario: ChaosScenario, seed: int, checkpoint: Checkpoint
):
    """Branch one checkpoint into one scenario and judge the result."""
    harness = checkpoint.restore()
    assert isinstance(harness, ProbeHarness)
    arm_plan(harness, scenario.plan)
    drive_to(harness, RUN_END_NS)
    return judge_execution(scenario, seed, harness.cell, harness.injector)


def ensure_fork_bases(
    scenarios: Sequence[ChaosScenario],
    seeds: Sequence[int],
    checkpoint_dir: Path,
    jobs: int = 1,
) -> Tuple[Dict[ForkKey, Path], int]:
    """Build every warm base the matrix needs that is not already on disk.

    Bases are persistent, deterministic artifacts — the same key always
    produces the same checkpoint — so a base written by an earlier
    sweep (or by the soak's periodic checkpointing workflow) is simply
    reused; this is where the forked sweep's repeated-use speedup comes
    from. Missing bases build as independent shards on the same pool.

    Returns ``(key -> checkpoint path, number built this call)``.
    """
    from repro.parallel.workers import build_fork_base_shard

    checkpoint_dir = Path(checkpoint_dir)
    base_paths: Dict[ForkKey, Path] = {}
    for scenario in scenarios:
        for seed in seeds:
            key = fork_key(scenario, seed)
            if key not in base_paths:
                base_paths[key] = checkpoint_dir / (
                    f"base_s{key[0]}_p{key[1]}_t{key[2]}.ckpt"
                )
    missing = sorted(
        (key, path) for key, path in base_paths.items() if not path.exists()
    )
    if missing:
        run_shards(
            build_fork_base_shard,
            [(key, (*key, str(path))) for key, path in missing],
            jobs=jobs,
        )
    return base_paths, len(missing)


def forked_sweep(
    scenarios: Sequence[ChaosScenario],
    seeds: Sequence[int],
    checkpoint_dir: Path,
    jobs: int = 1,
    progress=None,
) -> Tuple[CampaignReport, Dict[str, object]]:
    """Run a (scenario x seed) matrix by forking warm checkpoints.

    Warm bases found under ``checkpoint_dir`` are reused; missing ones
    are built as independent shards first (:func:`ensure_fork_bases`).
    The branches then run through
    :func:`~repro.parallel.pool.run_shards` in canonical (scenario,
    seed) order — same merge/stream contract as the cold campaign, so
    the reports are comparable entry for entry.

    Returns the campaign report plus a fork accounting block (bases
    built vs reused, branches run, base reuse factor).
    """
    from repro.parallel.workers import run_forked_scenario_shard

    checkpoint_dir = Path(checkpoint_dir)
    pairs = [(scenario, seed) for scenario in scenarios for seed in seeds]
    base_paths, bases_built = ensure_fork_bases(
        scenarios, seeds, checkpoint_dir, jobs=jobs
    )

    shards = [
        (
            (scenario.name, seed),
            (scenario, seed, str(base_paths[fork_key(scenario, seed)])),
        )
        for scenario, seed in pairs
    ]
    outcome = run_shards(
        run_forked_scenario_shard,
        shards,
        jobs=jobs,
        progress=None if progress is None else (lambda key, run: progress(run)),
    )
    report = CampaignReport(
        runs=outcome.values(), execution=outcome.accounting()
    )
    fork_info = {
        "bases_total": len(base_paths),
        "bases_built": bases_built,
        "bases_reused": len(base_paths) - bases_built,
        "branches_run": len(pairs),
        "base_reuse": round(len(pairs) / len(base_paths), 2) if base_paths else 0,
        "fork_margin_ns": FORK_MARGIN_NS,
    }
    return report, fork_info


def fork_points(scenarios: Sequence[ChaosScenario]) -> Dict[str, int]:
    """Scenario name -> absolute fork time, for reports and docs."""
    return {
        scenario.name: earliest_fault_ns(scenario.plan) - FORK_MARGIN_NS
        for scenario in scenarios
    }
