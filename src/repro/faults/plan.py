"""Declarative fault plans.

A :class:`FaultPlan` says *what* goes wrong, *where*, *when*, and *for
how long* — nothing about how the faults are realized. The
:class:`~repro.faults.injector.FaultInjector` executes a plan against a
built cell; keeping the description pure data makes scenarios diffable,
serializable into campaign reports, and trivially seed-independent (all
randomness lives in the executor's named RNG streams).

Times are absolute simulated nanoseconds, matching the campaign's fixed
timeline (warmup, fault window, measurement window).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.net.packet import EtherType

#: "Until the end of the run" sentinel for open-ended fault windows.
FOREVER = 2**62


@dataclass(frozen=True)
class LinkFaultSpec:
    """Probabilistic impairment of the links whose name contains
    ``link_pattern``, active in ``[start_ns, end_ns)``.

    Per matching frame the impairment draws, in fixed order, one uniform
    each for loss, corruption, reordering, and duplication, so the RNG
    stream consumption is independent of which faults are enabled.
    """

    link_pattern: str
    start_ns: int = 0
    end_ns: int = FOREVER
    #: P(frame silently dropped).
    loss_prob: float = 0.0
    #: P(payload corrupted; receivers fail integrity checks and discard).
    corrupt_prob: float = 0.0
    #: P(delivery delayed by uniform(0, reorder_jitter_ns) — frames
    #: behind it can overtake, violating the link's FIFO contract).
    reorder_prob: float = 0.0
    reorder_jitter_ns: int = 0
    #: P(frame delivered twice).
    dup_prob: float = 0.0
    #: Restrict to these ethertypes (empty tuple = every frame).
    ethertypes: Tuple[EtherType, ...] = ()


@dataclass(frozen=True)
class ProcessFaultSpec:
    """A PHY-process fault.

    Kinds:

    * ``crash`` — fail-stop at ``at_ns`` (the paper's §8.2 injection).
    * ``crash_restart`` — crash, then restart ``duration_ns`` later and
      re-initialize the server as the cell's new hot standby (operator
      revival through Orion's stored-config replay, §6.3).
    * ``hang`` — gray failure: fronthaul heartbeats continue, FAPI
      responses stop. Invisible to the in-switch detector; exercises the
      L2-side Orion response watchdog. ``duration_ns`` 0 = forever.
    * ``slowdown`` — gray failure: every slot's uplink pipeline
      completion is delayed by ``slowdown_ns`` for ``duration_ns``.
    """

    phy_id: int
    kind: str
    at_ns: int
    duration_ns: int = 0
    slowdown_ns: int = 0
    #: After a crash_restart, revive the server as hot standby.
    reinit_secondary: bool = True

    KINDS = ("crash", "crash_restart", "hang", "slowdown")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown process fault kind {self.kind!r}")


@dataclass(frozen=True)
class ClockFaultSpec:
    """A PTP clock fault on one node (key into ``cell.ptp_clocks``).

    Any combination of a phase step, a drift-rate override, and a
    holdover window (sync lost for ``duration_ns``). The switch data
    plane is not time-synchronized (§5.1), so recovery must be — and the
    invariants assert it is — unaffected.
    """

    node: str
    at_ns: int
    step_ns: float = 0.0
    drift_ppm: Optional[float] = None
    holdover: bool = False
    duration_ns: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """One scenario's complete fault description."""

    name: str
    link_faults: Tuple[LinkFaultSpec, ...] = ()
    process_faults: Tuple[ProcessFaultSpec, ...] = ()
    clock_faults: Tuple[ClockFaultSpec, ...] = ()

    def describe(self) -> dict:
        """JSON-ready form for campaign reports."""

        def spec_dict(spec) -> dict:
            out = {}
            for f in fields(spec):
                value = getattr(spec, f.name)
                if isinstance(value, tuple):
                    value = [getattr(v, "name", v) for v in value]
                out[f.name] = value
            return out

        return {
            "name": self.name,
            "link_faults": [spec_dict(s) for s in self.link_faults],
            "process_faults": [spec_dict(s) for s in self.process_faults],
            "clock_faults": [spec_dict(s) for s in self.clock_faults],
        }
