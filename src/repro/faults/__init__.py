"""Deterministic chaos harness (fault injection + recovery invariants).

Slingshot's claim is sub-10 ms recovery *under failure* — so the repo
needs a way to produce failures richer than a single fail-stop
``kill_phy``: lossy/duplicating/reordering/corrupting links, gray PHY
failures (hangs that keep heartbeating, slowdowns), clock faults, and a
lossy control plane. This package provides:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` scenarios;
* :mod:`repro.faults.link_faults` — the per-link impairment hook;
* :mod:`repro.faults.injector` — arms a plan against a built cell;
* :mod:`repro.faults.invariants` — recovery invariants over the trace;
* :mod:`repro.faults.scenarios` — the standard scenario matrix;
* :mod:`repro.faults.campaign` — ``python -m repro chaos``.

Every random draw comes from ``faults.*`` registry streams (enforced by
slinglint's strict STREAM003 ownership), so any (scenario, seed) pair replays to the
bit-identical trace digest.
"""

from repro.faults.plan import (
    ClockFaultSpec,
    FaultPlan,
    LinkFaultSpec,
    ProcessFaultSpec,
)
from repro.faults.link_faults import CorruptedPayload, LinkImpairment
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantResult, RecoveryInvariants
from repro.faults.scenarios import ChaosScenario, standard_scenarios

__all__ = [
    "ChaosScenario",
    "ClockFaultSpec",
    "CorruptedPayload",
    "FaultInjector",
    "FaultPlan",
    "InvariantResult",
    "LinkFaultSpec",
    "LinkImpairment",
    "ProcessFaultSpec",
    "RecoveryInvariants",
    "standard_scenarios",
]
