"""Recovery invariants over a run's canonical trace.

The chaos campaign's pass/fail verdicts come from here, not from
eyeballing throughput plots. Each check consumes
``TraceRecorder.canonical_events()`` (so verdicts are independent of the
engine's arbitrary same-timestamp serialization) and states one property
Slingshot promises under faults:

* **bounded downtime** — the app-level probe flow's largest delivery gap
  inside the measurement window stays under the scenario's budget;
* **exactly-once migration** — each injected failure commits exactly the
  expected number of fronthaul flips, however many duplicated or
  retransmitted commands and notifications were in flight;
* **no stale frames** — after a boundary commits, the RU never sees two
  PHY sources in one slot, and its downlink source changes exactly once
  per committed migration;
* **degraded-mode visibility** — when no standby exists, the failure is
  reported (``orion.failover_impossible``) rather than silently eaten.

Seed-stability of the trace digest is checked by the campaign itself
(it replays the run and compares digests — an invariant *between* runs,
not within one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.trace import TraceEvent

#: Probe delivery events recorded by the campaign's measurement tee.
PROBE_RX = "chaos.rx"


@dataclass(frozen=True)
class InvariantResult:
    name: str
    passed: bool
    detail: str

    def as_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


class RecoveryInvariants:
    """Checks one run's canonical trace against its scenario's promises."""

    def __init__(
        self,
        events: Sequence[TraceEvent],
        *,
        window_start_ns: int,
        window_end_ns: int,
        downtime_budget_ns: Optional[int],
        expected_migrations: int,
        expect_failover_impossible: bool = False,
    ) -> None:
        self.events = events
        self.window_start_ns = window_start_ns
        self.window_end_ns = window_end_ns
        self.downtime_budget_ns = downtime_budget_ns
        self.expected_migrations = expected_migrations
        self.expect_failover_impossible = expect_failover_impossible

    # ------------------------------------------------------------------
    def _times(self, category: str) -> List[int]:
        return [e.time for e in self.events if e.category == category]

    def _of(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    # ------------------------------------------------------------------
    def max_probe_gap_ns(self) -> Optional[int]:
        """Largest probe inter-delivery gap in the measurement window,
        with the window edges counting as virtual deliveries (so a flow
        that dies mid-window is charged up to the window end)."""
        arrivals = [
            t
            for t in self._times(PROBE_RX)
            if self.window_start_ns <= t <= self.window_end_ns
        ]
        if not arrivals:
            return None
        points = [self.window_start_ns] + arrivals + [self.window_end_ns]
        return max(b - a for a, b in zip(points, points[1:]))

    def check_bounded_downtime(self) -> InvariantResult:
        name = "bounded_downtime"
        if self.downtime_budget_ns is None:
            return InvariantResult(name, True, "skipped (no live standby)")
        gap = self.max_probe_gap_ns()
        if gap is None:
            return InvariantResult(name, False, "no probe deliveries in window")
        detail = (
            f"max probe gap {gap / 1e6:.2f} ms"
            f" (budget {self.downtime_budget_ns / 1e6:.2f} ms)"
        )
        return InvariantResult(name, gap <= self.downtime_budget_ns, detail)

    # ------------------------------------------------------------------
    def check_exactly_once_migration(self) -> InvariantResult:
        name = "exactly_once_migration"
        committed = len(self._of("mbox.migration_committed"))
        detail = (
            f"{committed} committed (expected {self.expected_migrations})"
        )
        return InvariantResult(name, committed == self.expected_migrations, detail)

    # ------------------------------------------------------------------
    def check_no_stale_frames(self) -> InvariantResult:
        """Post-boundary isolation at the RU: no slot ever mixes two PHY
        sources, and the downlink source flips exactly once per
        committed migration (the first event, from source None, is the
        initial binding, not a flip)."""
        name = "no_stale_frames"
        conflicts = len(self._of("ru.conflicting_sources"))
        changes = [
            e
            for e in self._of("ru.source_changed")
            if e.get("previous") is not None
        ]
        committed = len(self._of("mbox.migration_committed"))
        problems = []
        if conflicts:
            problems.append(f"{conflicts} conflicting-source slots")
        if len(changes) != committed:
            problems.append(
                f"{len(changes)} source transitions vs {committed} commits"
            )
        detail = "; ".join(problems) if problems else (
            f"{committed} commits, {len(changes)} transitions, 0 conflicts"
        )
        return InvariantResult(name, not problems, detail)

    # ------------------------------------------------------------------
    def check_degraded_mode_visible(self) -> InvariantResult:
        name = "degraded_mode_visible"
        if not self.expect_failover_impossible:
            return InvariantResult(name, True, "not applicable")
        count = len(self._of("orion.failover_impossible"))
        return InvariantResult(
            name, count >= 1, f"{count} failover_impossible events"
        )

    # ------------------------------------------------------------------
    def check_all(self) -> List[InvariantResult]:
        return [
            self.check_bounded_downtime(),
            self.check_exactly_once_migration(),
            self.check_no_stale_frames(),
            self.check_degraded_mode_visible(),
        ]
