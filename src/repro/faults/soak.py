"""Continuous-operation (soak) state: background chaos + probe monitor.

A soak run is a long-horizon cell execution with fault arrivals spread
across the whole horizon instead of the campaign's single fixed fault
window. Everything with *mutable runtime state* lives in this module —
inside the ``faults`` subsystem — so the checkpoint state inventory
(CKPT001/CKPT003) audits it like any other component, and the whole
:class:`SoakState` graph is the checkpoint root that
``python -m repro soak`` snapshots and resumes.

Determinism contract: the background :class:`~repro.faults.plan.FaultPlan`
is pre-drawn **once at build time** from the reserved
``faults.soak.plan`` registry stream, before any cell event runs. From
then on the plan is pure data executed by the ordinary
:class:`~repro.faults.injector.FaultInjector`, so an interrupted soak
restored from a checkpoint replays the exact same fault arrivals — the
in-flight injector state (scheduled transitions, armed link
impairments) rides along inside the pickled graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.apps.dispatch import UplinkTransmit
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.faults.campaign import (
    PROBE_BEARER_ID,
    PROBE_BITRATE_BPS,
    PROBE_FLOW_ID,
    PROBE_PACKET_BYTES,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import PROBE_RX
from repro.faults.plan import FaultPlan, LinkFaultSpec, ProcessFaultSpec
from repro.sim.rng import RngRegistry
from repro.sim.units import MS
from repro.transport.packet import FlowDirection, Packet
from repro.transport.udp import UdpSender, UdpSink

#: Reserved registry stream the background plan is pre-drawn from.
SOAK_PLAN_STREAM = "faults.soak.plan"

#: Soak probe starts after UE attach settles (same as the campaign).
SOAK_PROBE_START_NS = 300 * MS

#: Background fault menu: each arrival picks one by a single uniform.
_CRASH_RESTART_DURATION_NS = 120 * MS
_SLOWDOWN_DURATION_NS = 100 * MS
_SLOWDOWN_NS = 2 * MS
_LINK_WINDOW_NS = 100 * MS
_LINK_LOSS_PROB = 0.03
#: Quiet margin after a fault's own window before the next may land, so
#: background faults never overlap (two concurrent crash_restarts could
#: take down both PHYs at once, which is the no_secondary scenario's
#: job, not the soak's).
_FAULT_MARGIN_NS = 80 * MS


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run; lives inside every checkpoint.

    ``checkpoint_every_ns`` must be a multiple of ``window_ns`` so
    trace eviction at checkpoint boundaries folds only complete digest
    windows.
    """

    seed: int = 1
    horizon_ns: int = 3_000 * MS
    window_ns: int = 250 * MS
    checkpoint_every_ns: int = 500 * MS
    first_fault_ns: int = 600 * MS
    mean_fault_gap_ns: int = 450 * MS
    num_phy_servers: int = 2

    def __post_init__(self) -> None:
        if self.window_ns <= 0 or self.checkpoint_every_ns <= 0:
            raise ValueError("window_ns and checkpoint_every_ns must be > 0")
        if self.checkpoint_every_ns % self.window_ns != 0:
            raise ValueError(
                "checkpoint_every_ns must be a multiple of window_ns "
                f"({self.checkpoint_every_ns} % {self.window_ns} != 0)"
            )
        if self.first_fault_ns <= SOAK_PROBE_START_NS:
            raise ValueError("first_fault_ns must be after the probe start")


def generate_soak_plan(rng: RngRegistry, config: SoakConfig) -> FaultPlan:
    """Pre-draw the background fault arrivals for one soak horizon.

    All randomness comes from the reserved ``faults.soak.plan`` stream
    in one serial pass, so the plan depends only on the seed and the
    config — never on execution interleaving. Arrivals alternate target
    bookkeeping with the cell's failover behaviour: a ``crash_restart``
    of the current primary hands the primary role to the standby, so
    the tracker flips with each one and gray faults always land on the
    node actually serving traffic.
    """
    stream = rng.stream("faults.soak.plan")
    process_faults: List[ProcessFaultSpec] = []
    link_faults: List[LinkFaultSpec] = []
    primary = 0
    at_ns = config.first_fault_ns
    while at_ns < config.horizon_ns - _CRASH_RESTART_DURATION_NS:
        draw = stream.random()
        gap_scale = 0.75 + 0.5 * stream.random()
        if draw < 0.4 and config.num_phy_servers > 1:
            process_faults.append(
                ProcessFaultSpec(
                    phy_id=primary,
                    kind="crash_restart",
                    at_ns=at_ns,
                    duration_ns=_CRASH_RESTART_DURATION_NS,
                )
            )
            primary = 1 - primary
            fault_end = at_ns + _CRASH_RESTART_DURATION_NS
        elif draw < 0.7:
            process_faults.append(
                ProcessFaultSpec(
                    phy_id=primary,
                    kind="slowdown",
                    at_ns=at_ns,
                    duration_ns=_SLOWDOWN_DURATION_NS,
                    slowdown_ns=_SLOWDOWN_NS,
                )
            )
            fault_end = at_ns + _SLOWDOWN_DURATION_NS
        else:
            link_faults.append(
                LinkFaultSpec(
                    link_pattern="ru0",
                    start_ns=at_ns,
                    end_ns=at_ns + _LINK_WINDOW_NS,
                    loss_prob=_LINK_LOSS_PROB,
                )
            )
            fault_end = at_ns + _LINK_WINDOW_NS
        at_ns = fault_end + _FAULT_MARGIN_NS
        at_ns += int(config.mean_fault_gap_ns * gap_scale)
    return FaultPlan(
        name=f"soak-seed{config.seed}",
        link_faults=tuple(link_faults),
        process_faults=tuple(process_faults),
    )


class ProbeGapMonitor:
    """Incremental max-probe-gap tracker.

    The campaign computes its gap metric from the full trace; a soak
    run evicts trace windows, so the gap must be folded incrementally
    at delivery time. Lives in the checkpointed graph — a restored soak
    continues the same running maximum.
    """

    __slots__ = ("last_rx_ns", "max_gap_ns", "deliveries")

    def __init__(self, start_ns: int) -> None:
        self.last_rx_ns = start_ns
        self.max_gap_ns = 0
        self.deliveries = 0

    def on_delivery(self, now_ns: int) -> None:
        gap = now_ns - self.last_rx_ns
        if gap > self.max_gap_ns:
            self.max_gap_ns = gap
        self.last_rx_ns = now_ns
        self.deliveries += 1


class SoakProbeTap:
    """Server-side probe sink: trace ``PROBE_RX``, fold the gap, deliver."""

    __slots__ = ("cell", "sink", "monitor")

    def __init__(self, cell: Any, sink: UdpSink, monitor: ProbeGapMonitor) -> None:
        self.cell = cell
        self.sink = sink
        self.monitor = monitor

    def __call__(self, packet: Packet) -> None:
        now = self.cell.sim.now
        self.cell.trace.record(now, PROBE_RX, seq=packet.seq)
        self.monitor.on_delivery(now)
        self.sink.on_packet(packet)


@dataclass
class SoakState:
    """The checkpoint root of one soak run.

    Carries the whole simulation (cell = engine + trace + RNG registry
    + components), the armed background injector, the probe endpoints,
    and the incremental monitor — restoring this one object resumes the
    run exactly where it paused.
    """

    config: SoakConfig
    cell: Any
    injector: FaultInjector
    sender: UdpSender
    sink: UdpSink
    monitor: ProbeGapMonitor
    probe_started: bool = False


def build_soak_state(config: SoakConfig) -> SoakState:
    """Build a fresh soak run: cell, pre-drawn plan, probe wiring."""
    cell = build_slingshot_cell(
        CellConfig(
            seed=config.seed,
            num_phy_servers=config.num_phy_servers,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
        )
    )
    cell.trace.window_ns = config.window_ns
    plan = generate_soak_plan(cell.rng, config)
    injector = FaultInjector(cell, plan)
    injector.arm()
    sink = UdpSink(cell.sim, PROBE_FLOW_ID)
    ue = cell.ue(1)
    sender = UdpSender(
        cell.sim,
        PROBE_FLOW_ID,
        ue.ue_id,
        PROBE_BEARER_ID,
        FlowDirection.UPLINK,
        transmit=UplinkTransmit(ue, PROBE_BEARER_ID),
        bitrate_bps=PROBE_BITRATE_BPS,
        packet_bytes=PROBE_PACKET_BYTES,
    )
    monitor = ProbeGapMonitor(SOAK_PROBE_START_NS)
    cell.server.register_flow(PROBE_FLOW_ID, SoakProbeTap(cell, sink, monitor))
    return SoakState(
        config=config,
        cell=cell,
        injector=injector,
        sender=sender,
        sink=sink,
        monitor=monitor,
    )


def drive_soak_to(state: SoakState, until_ns: int) -> None:
    """Advance a soak run to an absolute time, starting the probe on
    the way past :data:`SOAK_PROBE_START_NS`. Any split into multiple
    calls — including across checkpoint/restore — is behaviour-identical
    to one call."""
    cell = state.cell
    if not state.probe_started:
        if until_ns < SOAK_PROBE_START_NS:
            cell.run_until(until_ns)
            return
        cell.run_until(SOAK_PROBE_START_NS)
        state.sender.start()
        state.probe_started = True
    cell.run_until(until_ns)


def plan_summary(plan: FaultPlan) -> dict:
    """Compact JSON summary of a background plan for soak reports."""
    kinds: dict = {}
    for spec in plan.process_faults:
        kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
    if plan.link_faults:
        kinds["link_window"] = len(plan.link_faults)
    first = min(
        [s.at_ns for s in plan.process_faults]
        + [s.start_ns for s in plan.link_faults],
        default=None,
    )
    last = max(
        [s.at_ns for s in plan.process_faults]
        + [s.start_ns for s in plan.link_faults],
        default=None,
    )
    return {
        "name": plan.name,
        "faults_total": len(plan.process_faults) + len(plan.link_faults),
        "by_kind": dict(sorted(kinds.items())),
        "first_fault_ns": first,
        "last_fault_ns": last,
    }
