"""Chaos campaign driver + ``python -m repro chaos`` CLI.

Runs a scenario matrix x seeds, checks the recovery invariants on each
run, optionally replays every (scenario, seed) pair to prove the trace
digest is seed-stable, and emits a JSON report (by default into
``benchmarks/BENCH_chaos.json``).

``--jobs N`` fans the independent ``(scenario, seed)`` shards out to a
process pool (:mod:`repro.parallel`). Every shard rebuilds its cell
from its own seed, results merge in canonical ``(scenario, seed)``
order, and per-run output streams as shards complete (ordered flush) —
so the report, the printed lines, and every canonical-trace digest are
bit-identical to the serial run. Only the ``execution`` accounting
block (wall times, peak RSS, measured speedup) differs between jobs
values, and it is kept out of :meth:`CampaignReport.as_dict` so
determinism stays mechanically checkable.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.apps.dispatch import UplinkTransmit
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.faults.injector import FaultInjector
from repro.faults.invariants import PROBE_RX, RecoveryInvariants
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import (
    ChaosScenario,
    MEASURE_END_NS,
    MEASURE_START_NS,
    PROBE_START_NS,
    RUN_END_NS,
    scenario_by_name,
    standard_scenarios,
)
from repro.parallel.pool import run_shards
from repro.parallel.workers import run_campaign_shard
from repro.telemetry.metrics import active as _telemetry_active
from repro.transport.packet import FlowDirection, Packet
from repro.transport.udp import UdpSender, UdpSink

#: Probe flow parameters: ~8 Mbps of 1200 B datagrams is one packet per
#: ~1.2 ms — fine-grained enough to resolve sub-10 ms outages, light
#: enough that the cell never saturates.
PROBE_BITRATE_BPS = 8e6
PROBE_PACKET_BYTES = 1200
PROBE_FLOW_ID = "chaos-probe"
PROBE_BEARER_ID = 1


@dataclass
class ScenarioRun:
    """One (scenario, seed) execution's verdicts and evidence."""

    scenario: str
    seed: int
    digest: str
    invariants: List[dict]
    passed: bool
    max_probe_gap_ms: Optional[float]
    migrations_committed: int
    detection: Dict[str, int]
    link_faults: List[dict]
    replay_digest_matched: Optional[bool] = None
    #: FailoverTimeline.as_dict(), populated only when telemetry is
    #: enabled; excluded from :meth:`as_dict` so the chaos report (and
    #: its serial-vs-parallel equality) is identical either way.
    timeline: Optional[dict] = None

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "digest": self.digest,
            "passed": self.passed,
            "max_probe_gap_ms": self.max_probe_gap_ms,
            "migrations_committed": self.migrations_committed,
            "detection": self.detection,
            "invariants": self.invariants,
            "link_faults": self.link_faults,
            "replay_digest_matched": self.replay_digest_matched,
        }


@dataclass
class CampaignReport:
    runs: List[ScenarioRun] = field(default_factory=list)
    #: Wall-clock/RSS accounting from the shard runner (jobs, per-shard
    #: wall time, measured speedup). Machine facts, not behaviour: kept
    #: out of :meth:`as_dict` so serial-vs-parallel comparisons stay
    #: bit-exact; :meth:`bench_dict` includes it for the BENCH json.
    execution: Optional[dict] = None

    @property
    def passed(self) -> bool:
        return all(
            run.passed and run.replay_digest_matched is not False
            for run in self.runs
        )

    def as_dict(self) -> dict:
        return {
            "benchmark": "chaos",
            "scenarios": sorted({r.scenario for r in self.runs}),
            "seeds": sorted({r.seed for r in self.runs}),
            "runs_total": len(self.runs),
            "runs_failed": sum(1 for r in self.runs if not r.passed),
            "replays_mismatched": sum(
                1 for r in self.runs if r.replay_digest_matched is False
            ),
            "passed": self.passed,
            "runs": [r.as_dict() for r in self.runs],
        }

    def bench_dict(self) -> dict:
        """The persisted report: deterministic verdicts + execution facts."""
        data = self.as_dict()
        if self.execution is not None:
            data["execution"] = self.execution
        return data


class ProbeTap:
    """Server-side probe sink: trace ``PROBE_RX`` then deliver.

    A plain callable class (not a closure) so a probed cell's whole
    object graph stays picklable for checkpoint/restore.
    """

    __slots__ = ("cell", "sink")

    def __init__(self, cell, sink: UdpSink) -> None:
        self.cell = cell
        self.sink = sink

    def __call__(self, packet: Packet) -> None:
        self.cell.trace.record(self.cell.sim.now, PROBE_RX, seq=packet.seq)
        self.sink.on_packet(packet)


@dataclass
class ProbeHarness:
    """One probed cell plus its probe endpoints — the checkpoint root.

    Everything a paused scenario execution needs to resume lives here:
    the cell (simulator, trace, RNG registry, every component), the
    armed injector (None until a plan is armed — warm fork bases are
    built unarmed), and the probe sender/sink. ``probe_started`` makes
    :func:`drive_to` idempotent across checkpoint/restore boundaries.
    """

    cell: Any
    injector: Optional[FaultInjector]
    sender: UdpSender
    sink: UdpSink
    seed: int
    probe_started: bool = False


def build_probe_harness(
    seed: int, num_phy_servers: int = 2, plan: Optional[FaultPlan] = None
) -> ProbeHarness:
    """Build one probed cell; arm ``plan`` against it when given.

    With ``plan=None`` the harness is a scenario-independent warm base:
    :func:`arm_plan` attaches a fault plan later (scenario forking), and
    because every fault draws from its own named ``faults.*`` stream,
    late arming consumes exactly the draws an at-build arm would have.
    """
    config = CellConfig(
        seed=seed,
        num_phy_servers=num_phy_servers,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )
    cell = build_slingshot_cell(config)
    injector = None
    if plan is not None:
        injector = FaultInjector(cell, plan)
        injector.arm()

    # App-level probe flow (uplink UDP): the downtime metric is the gap
    # between deliveries at the server-side sink, recorded as trace
    # events so the invariant checker sees them in canonical order.
    sink = UdpSink(cell.sim, PROBE_FLOW_ID)
    ue = cell.ue(1)
    sender = UdpSender(
        cell.sim,
        PROBE_FLOW_ID,
        ue.ue_id,
        PROBE_BEARER_ID,
        FlowDirection.UPLINK,
        transmit=UplinkTransmit(ue, PROBE_BEARER_ID),
        bitrate_bps=PROBE_BITRATE_BPS,
        packet_bytes=PROBE_PACKET_BYTES,
    )
    cell.server.register_flow(PROBE_FLOW_ID, ProbeTap(cell, sink))
    return ProbeHarness(
        cell=cell, injector=injector, sender=sender, sink=sink, seed=seed
    )


def arm_plan(harness: ProbeHarness, plan: FaultPlan) -> FaultInjector:
    """Arm a fault plan on a (restored) harness — the fork branch point.

    Every transition the plan schedules must still be in the future
    (the injector schedules with ``sim.at``, which refuses past times).
    """
    if harness.injector is not None:
        raise RuntimeError("harness already has an armed plan")
    harness.injector = FaultInjector(harness.cell, plan)
    harness.injector.arm()
    return harness.injector


def drive_to(harness: ProbeHarness, until_ns: int) -> None:
    """Advance a harness to an absolute time, starting the probe on the
    way past ``PROBE_START_NS``. Splitting a run into any sequence of
    ``drive_to`` calls is behaviour-identical to one call — which is
    what lets checkpoints pause an execution anywhere."""
    cell = harness.cell
    if not harness.probe_started:
        if until_ns < PROBE_START_NS:
            cell.run_until(until_ns)
            return
        cell.run_until(PROBE_START_NS)
        harness.sender.start()
        harness.probe_started = True
    cell.run_until(until_ns)


def _execute(scenario: ChaosScenario, seed: int):
    """Build, arm, probe, and run one scenario; returns (cell, injector)."""
    harness = build_probe_harness(
        seed, num_phy_servers=scenario.num_phy_servers, plan=scenario.plan
    )
    drive_to(harness, RUN_END_NS)
    return harness.cell, harness.injector


def judge_execution(
    scenario: ChaosScenario, seed: int, cell, injector: FaultInjector
) -> ScenarioRun:
    """Judge one finished execution against the scenario's invariants.

    Shared by the normal campaign path and the checkpoint/fork paths —
    a restored or forked execution must produce byte-identical verdicts,
    so there is exactly one judging code path.
    """
    events = cell.trace.canonical_events()
    digest = cell.trace.digest()
    checker = RecoveryInvariants(
        events,
        window_start_ns=MEASURE_START_NS,
        window_end_ns=MEASURE_END_NS,
        downtime_budget_ns=scenario.downtime_budget_ns,
        expected_migrations=scenario.expected_migrations,
        expect_failover_impossible=scenario.expect_failover_impossible(),
    )
    results = checker.check_all()
    gap = checker.max_probe_gap_ns()
    run = ScenarioRun(
        scenario=scenario.name,
        seed=seed,
        digest=digest,
        invariants=[r.as_dict() for r in results],
        passed=all(r.passed for r in results),
        max_probe_gap_ms=None if gap is None else round(gap / 1e6, 3),
        migrations_committed=cell.trace.count("mbox.migration_committed"),
        detection={
            "switch_detector": cell.trace.count("mbox.failure_detected"),
            "response_watchdog": cell.trace.count(
                "orion.response_watchdog_fired"
            ),
            "failover_impossible": cell.trace.count("orion.failover_impossible"),
        },
        link_faults=injector.link_fault_stats(),
    )
    return run


def run_scenario(
    scenario: ChaosScenario, seed: int, replay: bool = False
) -> ScenarioRun:
    """Execute one (scenario, seed) pair and judge it."""
    cell, injector = _execute(scenario, seed)
    run = judge_execution(scenario, seed, cell, injector)
    digest = run.digest
    events = cell.trace.canonical_events()
    metrics = _telemetry_active()
    if metrics is not None:
        # Per-scenario recovery span: fault (or window start, for pure
        # link-noise scenarios) through recovery (or window end). The
        # timeline reconstructor recomputes the full decomposition; the
        # span is the coarse sim-time interval that decomposition covers.
        from repro.telemetry.timeline import FailoverTimeline

        timeline = FailoverTimeline.from_events(
            events,
            window_start_ns=MEASURE_START_NS,
            window_end_ns=MEASURE_END_NS,
        )
        start = timeline.fault_ns
        end = timeline.first_good_ns
        metrics.span(
            "chaos.recovery",
            MEASURE_START_NS if start is None else start,
            MEASURE_END_NS if end is None else end,
            scenario=scenario.name,
            seed=seed,
            downtime_ns=timeline.downtime_ns,
        )
        run.timeline = timeline.as_dict()
    if replay:
        replay_cell, _ = _execute(scenario, seed)
        run.replay_digest_matched = replay_cell.trace.digest() == digest
    return run


def run_campaign(
    scenarios: Optional[Sequence[ChaosScenario]] = None,
    seeds: Sequence[int] = (1, 2, 3),
    replay: bool = False,
    progress=None,
    jobs: int = 1,
) -> CampaignReport:
    """Run the (scenario x seed) matrix, optionally on ``jobs`` workers.

    The shard key is the canonical ``(scenario name, seed)`` pair;
    results merge — and ``progress`` streams — in that order at every
    jobs value, so the returned report is identical to a serial run.
    """
    selected = list(scenarios) if scenarios is not None else list(standard_scenarios())
    shards = [
        ((scenario.name, seed), (scenario, seed, replay))
        for scenario in selected
        for seed in seeds
    ]
    outcome = run_shards(
        run_campaign_shard,
        shards,
        jobs=jobs,
        progress=None if progress is None else (lambda key, run: progress(run)),
    )
    return CampaignReport(runs=outcome.values(), execution=outcome.accounting())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _format_run(run: ScenarioRun) -> str:
    verdict = "PASS" if run.passed else "FAIL"
    if run.replay_digest_matched is False:
        verdict = "FAIL(replay)"
    gap = "-" if run.max_probe_gap_ms is None else f"{run.max_probe_gap_ms:8.2f}"
    failed = [r["name"] for r in run.invariants if not r["passed"]]
    suffix = f"  !{','.join(failed)}" if failed else ""
    return (
        f"{run.scenario:<18} seed={run.seed:<3} {verdict:<12} "
        f"gap_ms={gap}  migrations={run.migrations_committed}{suffix}"
    )


def default_bench_path() -> Path:
    """Repo-local baseline location: ``benchmarks/BENCH_chaos.json``."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_chaos.json"


def check_against_baseline(report: CampaignReport, baseline_path: Path) -> List[str]:
    """Compare a fresh campaign's digests to the recorded baseline.

    Only the runs actually executed are compared (so ``--check`` composes
    with ``--scenario``/``--quick`` subsets); a run missing from the
    baseline is a failure — the baseline must be re-recorded to cover it.
    """
    failures: List[str] = []
    if not baseline_path.exists():
        return [f"baseline {baseline_path} does not exist (record it first)"]
    recorded = json.loads(baseline_path.read_text())
    by_key = {
        (entry["scenario"], entry["seed"]): entry
        for entry in recorded.get("runs", [])
    }
    for run in report.runs:
        entry = by_key.get((run.scenario, run.seed))
        if entry is None:
            failures.append(
                f"{run.scenario}/seed={run.seed}: not in baseline"
            )
        elif entry["digest"] != run.digest:
            failures.append(
                f"{run.scenario}/seed={run.seed}: digest "
                f"{run.digest[:12]}... != recorded {entry['digest'][:12]}..."
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cliopts import harness_options, resolve_jobs

    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Deterministic fault-injection campaign with "
        "recovery-invariant checking.",
        parents=[harness_options()],
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="scenario seeds (default: 1 2 3; --quick: 1)",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the digest-stability replay of each run (faster)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    catalog = scenario_by_name()
    if args.list:
        for name, scenario in catalog.items():
            print(f"{name:<18} {scenario.description}")
        return 0
    if args.scenarios:
        unknown = [n for n in args.scenarios if n not in catalog]
        if unknown:
            print(f"repro chaos: unknown scenario(s): {unknown}", file=sys.stderr)
            return 2
        selected = [catalog[n] for n in args.scenarios]
    else:
        selected = list(standard_scenarios())

    jobs = resolve_jobs(args.jobs, "repro chaos")
    if jobs is None:
        return 2
    seeds = args.seeds if args.seeds is not None else ([1] if args.quick else [1, 2, 3])
    replay = not (args.no_replay or args.quick)

    def progress(run: ScenarioRun) -> None:
        if args.format == "text":
            print(_format_run(run), flush=True)

    report = run_campaign(
        selected, seeds=seeds, replay=replay,
        progress=progress, jobs=jobs,
    )
    if args.format == "json":
        print(json.dumps(report.bench_dict(), indent=2))
    else:
        failed = sum(1 for r in report.runs if not r.passed)
        mismatched = sum(
            1 for r in report.runs if r.replay_digest_matched is False
        )
        summary = (
            f"\n{len(report.runs)} runs, {failed} failed, "
            f"{mismatched} replay mismatches"
        )
        if report.execution is not None:
            speedup = report.execution.get("parallel_speedup")
            summary += (
                f"  [jobs={report.execution['effective_jobs']}"
                + (f", speedup {speedup:.2f}x" if speedup else "")
                + "]"
            )
        print(summary)
    if args.check:
        failures = check_against_baseline(
            report, args.out if args.out is not None else default_bench_path()
        )
        if failures:
            print(f"\nchaos check FAILED ({len(failures)} mismatch(es)):")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"\nchaos check passed ({len(report.runs)} run(s))")
    elif args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report.bench_dict(), indent=2) + "\n")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
