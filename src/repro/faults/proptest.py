"""Property-based chaos-case generation for the fleet pool.

Hand-written scenarios pin the failure modes someone thought of; the
property harness samples the space nobody enumerated.  Cases are drawn
from the reserved ``faults.prop`` stream of a **private**
:class:`~repro.sim.rng.RngRegistry` (its own seed universe, so test
generation can never perturb a simulation stream), and every case
carries its *expected* pool outcome computed independently of the
simulator — greedy token math over the drawn failure times:

* with re-warm pushed past the horizon, a pool of M tokens grants the
  first ``min(K, M)`` of K failures in detection order;
* failure times are spaced further apart than the slowest detection
  path (the ~4 ms response watchdog), so detection order equals
  injection order and the expected winner set is exact;
* *contention* cases instead fail every cell at the same nanosecond
  against a single token — which cell wins is tie-order dependent by
  design, so only the aggregate counts (exactly ``min(K, M)``
  promotions, no double-assign) are expected.

A sampled subset of cases additionally duplicates Orion's transport
frames (``dup_prob`` on the ``l2`` links): duplicated failure
notifications must not double-claim the pool or double-migrate — the
exactly-once property under the kind of network the paper's §5.2
control plane actually rides on.

One model limitation this harness surfaced (and now pins as bounded):
failing over from a *hung* PHY — which, unlike a crashed one, keeps
transmitting fronthaul downlink — can deliver one stale in-flight frame
for the migration boundary slot to the RU, because the watchdog's
``failover_slot_margin`` is a single slot.  The property tests allow at
most that one boundary-slot conflict for hang promotions and zero
conflicts everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.faults.plan import FaultPlan, LinkFaultSpec, ProcessFaultSpec
from repro.net.packet import EtherType
from repro.sim.rng import RngRegistry
from repro.sim.units import MS

#: The reserved property-generation stream (strict ``faults.*`` family).
PROP_STREAM = "faults.prop"

#: Case timeline: faults start past cell warmup, spaced further apart
#: than the watchdog's ~4 ms detection bound, inside a fixed horizon.
PROP_FAULT_START_NS = 60 * MS
PROP_FAULT_SPACING_NS = 12 * MS
PROP_RUN_END_NS = 150 * MS
#: crash_restart revival delay (within the horizon).
PROP_RESTART_NS = 30 * MS
#: Re-warm pushed past the horizon so the greedy token math is exact.
PROP_REWARM_NS = 10_000 * MS

PROP_KINDS = ("crash", "crash_restart", "hang")


@dataclass(frozen=True)
class PropCase:
    """One generated mini-fleet chaos case plus its expected outcome."""

    case_id: int
    num_cells: int
    pool_size: int
    #: (cell index, fault spec) in injection-time order.
    faults: Tuple[Tuple[int, ProcessFaultSpec], ...]
    #: Orion-transport duplication applied to every faulted cell (or None).
    link_dup: Optional[LinkFaultSpec]
    #: Same-instant failures against one token: winners unspecified.
    contention: bool
    #: Cell indices expected to win a pool token (None for contention).
    expected_promoted: Optional[Tuple[int, ...]]

    @property
    def expected_promotions(self) -> int:
        return min(len(self.faults), self.pool_size)

    @property
    def expected_exhaustions(self) -> int:
        return len(self.faults) - self.expected_promotions

    def plan_for(self, cell_index: int) -> Optional[FaultPlan]:
        """The per-cell fault plan (cells without faults get None)."""
        specs = tuple(
            spec for faulted_cell, spec in self.faults if faulted_cell == cell_index
        )
        if not specs:
            return None
        link_faults = () if self.link_dup is None else (self.link_dup,)
        return FaultPlan(
            name=f"prop-case{self.case_id}-cell{cell_index}",
            process_faults=specs,
            link_faults=link_faults,
        )


def _draw_spec(stream, kind: str, at_ns: int) -> ProcessFaultSpec:
    if kind == "crash_restart":
        return ProcessFaultSpec(
            phy_id=0, kind=kind, at_ns=at_ns, duration_ns=PROP_RESTART_NS
        )
    return ProcessFaultSpec(phy_id=0, kind=kind, at_ns=at_ns)


def generate_cases(
    master_seed: int = 2026, count: int = 50, contention_every: int = 5
) -> Tuple[PropCase, ...]:
    """Draw ``count`` cases; every ``contention_every``-th is same-instant."""
    registry = RngRegistry(seed=master_seed)  # Private seed universe.
    stream = registry.stream("faults.prop")  # == PROP_STREAM (literal for lint)
    cases = []
    for case_id in range(count):
        num_cells = int(stream.integers(2, 4))
        if contention_every and case_id % contention_every == 0:
            # Every cell crashes at the same nanosecond, one token.
            at_ns = PROP_FAULT_START_NS + int(stream.integers(0, 5)) * MS
            faults = tuple(
                (cell, _draw_spec(stream, "crash", at_ns))
                for cell in range(num_cells)
            )
            cases.append(
                PropCase(
                    case_id=case_id,
                    num_cells=num_cells,
                    pool_size=1,
                    faults=faults,
                    link_dup=None,
                    contention=True,
                    expected_promoted=None,
                )
            )
            continue
        num_failures = int(stream.integers(1, num_cells + 1))
        failing_cells = sorted(
            int(c) for c in stream.choice(num_cells, size=num_failures, replace=False)
        )
        pool_size = int(stream.integers(0, 4))
        faults = []
        for position, cell in enumerate(failing_cells):
            at_ns = (
                PROP_FAULT_START_NS
                + position * PROP_FAULT_SPACING_NS
                + int(stream.integers(0, 4)) * MS
            )
            kind = PROP_KINDS[int(stream.integers(0, len(PROP_KINDS)))]
            faults.append((cell, _draw_spec(stream, kind, at_ns)))
        link_dup = None
        if stream.random() < 0.3:
            link_dup = LinkFaultSpec(
                link_pattern="l2",
                start_ns=PROP_FAULT_START_NS - 10 * MS,
                end_ns=PROP_RUN_END_NS,
                dup_prob=round(0.05 + 0.15 * float(stream.random()), 4),
                ethertypes=(EtherType.IPV4,),
            )
        winners = tuple(
            cell for cell, _ in faults[: min(num_failures, pool_size)]
        )
        cases.append(
            PropCase(
                case_id=case_id,
                num_cells=num_cells,
                pool_size=pool_size,
                faults=tuple(faults),
                link_dup=link_dup,
                contention=False,
                expected_promoted=winners,
            )
        )
    return tuple(cases)
