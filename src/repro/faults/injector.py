"""Executes a :class:`~repro.faults.plan.FaultPlan` against a built cell.

The injector is purely a scheduler: at arm() time it attaches
:class:`~repro.faults.link_faults.LinkImpairment` hooks to every switch
link whose name matches a spec, and schedules the process/clock fault
transitions as ordinary simulator events. All randomness is drawn from
``faults.*`` registry streams (slinglint STREAM003), so a plan replays
bit-identically for a given cell seed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.faults.link_faults import LinkImpairment
from repro.faults.plan import ClockFaultSpec, FaultPlan, ProcessFaultSpec
from repro.net.link import Link


class FaultInjector:
    """Arms one plan against one cell (Slingshot or baseline)."""

    def __init__(self, cell, plan: FaultPlan) -> None:
        self.cell = cell
        self.plan = plan
        #: Link name -> attached impairment (for stats inspection).
        self.impairments: Dict[str, LinkImpairment] = {}
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Attach hooks and schedule every fault transition."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for link in self._switch_links():
            specs = tuple(
                s for s in self.plan.link_faults if s.link_pattern in link.name
            )
            if not specs:
                continue
            impairment = LinkImpairment(
                specs,
                self.cell.rng.stream(f"faults.link.{link.name}"),
                trace=self.cell.trace,
            )
            link.impairment = impairment
            self.impairments[link.name] = impairment
        for spec in self.plan.process_faults:
            self._arm_process_fault(spec)
        for spec in self.plan.clock_faults:
            self._arm_clock_fault(spec)

    def _switch_links(self) -> Iterator[Link]:
        switch = self.cell.switch
        for number in switch.port_numbers():
            port = switch.port(number)
            ingress = getattr(port, "ingress_link", None)
            if ingress is not None:
                yield ingress
            if port.egress is not None:
                yield port.egress

    # ------------------------------------------------------------------
    # Process faults
    # ------------------------------------------------------------------
    def _arm_process_fault(self, spec: ProcessFaultSpec) -> None:
        sim = self.cell.sim
        phy = self.cell.phy_servers[spec.phy_id].phy
        if spec.kind == "crash":
            sim.at(spec.at_ns, phy.crash, "chaos", label="fault.crash")
        elif spec.kind == "crash_restart":
            sim.at(spec.at_ns, phy.crash, "chaos", label="fault.crash")
            sim.at(
                spec.at_ns + spec.duration_ns,
                self._revive_phy,
                spec.phy_id,
                spec.reinit_secondary,
                label="fault.restart",
            )
        elif spec.kind == "hang":
            sim.at(spec.at_ns, phy.hang, "chaos", label="fault.hang")
            if spec.duration_ns:
                sim.at(
                    spec.at_ns + spec.duration_ns, phy.unhang, label="fault.unhang"
                )
        elif spec.kind == "slowdown":
            sim.at(
                spec.at_ns,
                self._set_inflation,
                spec.phy_id,
                spec.slowdown_ns,
                label="fault.slowdown",
            )
            if spec.duration_ns:
                sim.at(
                    spec.at_ns + spec.duration_ns,
                    self._set_inflation,
                    spec.phy_id,
                    0,
                    label="fault.slowdown-end",
                )

    def _set_inflation(self, phy_id: int, inflation_ns: int) -> None:
        phy = self.cell.phy_servers[phy_id].phy
        phy.service_inflation_ns = inflation_ns
        if self.cell.trace is not None:
            self.cell.trace.record(
                self.cell.sim.now,
                "fault.slowdown",
                phy=phy_id,
                inflation_ns=inflation_ns,
            )

    def _revive_phy(self, phy_id: int, reinit_secondary: bool) -> None:
        """Operator revival: restart the process and (optionally) stand
        it back up as hot standby for every cell that lost its own."""
        phy = self.cell.phy_servers[phy_id].phy
        phy.restart()
        if not reinit_secondary:
            return
        l2_orion = getattr(self.cell, "l2_orion", None)
        if l2_orion is None:
            return
        for cell_id in sorted(l2_orion.cells):
            assignment = l2_orion.cells[cell_id]
            if assignment.secondary_phy is not None:
                continue
            if assignment.primary_phy == phy_id:
                continue
            # The operator explicitly clears the server's failure record.
            assignment.failed_phys.discard(phy_id)
            l2_orion.initialize_secondary(cell_id, phy_id)

    # ------------------------------------------------------------------
    # Clock faults
    # ------------------------------------------------------------------
    def _arm_clock_fault(self, spec: ClockFaultSpec) -> None:
        sim = self.cell.sim
        sim.at(spec.at_ns, self._apply_clock_fault, spec, label="fault.clock")
        if spec.holdover and spec.duration_ns:
            sim.at(
                spec.at_ns + spec.duration_ns,
                self._end_holdover,
                spec,
                label="fault.clock-resync",
            )

    def _apply_clock_fault(self, spec: ClockFaultSpec) -> None:
        clock = self.cell.ptp_clocks[spec.node]
        now = self.cell.sim.now
        if spec.step_ns:
            clock.apply_step(now, spec.step_ns)
        if spec.drift_ppm is not None:
            clock.set_drift_ppm(now, spec.drift_ppm)
        if spec.holdover:
            clock.set_disciplined(now, False)
        if self.cell.trace is not None:
            self.cell.trace.record(
                now,
                "fault.clock",
                node=spec.node,
                step_ns=spec.step_ns,
                drift_ppm=spec.drift_ppm,
                holdover=spec.holdover,
            )

    def _end_holdover(self, spec: ClockFaultSpec) -> None:
        clock = self.cell.ptp_clocks[spec.node]
        clock.set_disciplined(self.cell.sim.now, True)

    # ------------------------------------------------------------------
    def link_fault_stats(self) -> List[dict]:
        """JSON-ready per-link impairment counters."""
        out = []
        for name in sorted(self.impairments):
            stats = self.impairments[name].stats
            out.append(
                {
                    "link": name,
                    "frames_seen": stats.frames_seen,
                    "dropped": stats.dropped,
                    "corrupted": stats.corrupted,
                    "reordered": stats.reordered,
                    "duplicated": stats.duplicated,
                }
            )
        return out
