"""The standard chaos scenario matrix.

Every scenario shares one timeline so results are comparable:

* warmup + UE attach: 0 .. PROBE_START_NS
* probe flow starts at PROBE_START_NS (uplink UDP, ~1.2 ms/packet)
* measurement window: MEASURE_START_NS .. MEASURE_END_NS
* the fault lands at FAULT_AT_NS (link fault windows open there)
* the run ends at RUN_END_NS

Downtime budgets are per-scenario: failovers must recover within the
paper's sub-10 ms envelope plus probe-cadence slack; pure link noise has
a looser budget covering HARQ/scheduler retries under sustained loss.
A budget of ``None`` means user-visible downtime is unbounded by design
(no standby exists) and the run is judged on degraded-mode visibility
instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.plan import (
    ClockFaultSpec,
    FaultPlan,
    LinkFaultSpec,
    ProcessFaultSpec,
)
from repro.net.packet import EtherType
from repro.sim.units import MS

#: Shared campaign timeline (absolute simulated times).
PROBE_START_NS = 300 * MS
MEASURE_START_NS = 350 * MS
FAULT_AT_NS = 550 * MS
MEASURE_END_NS = 1_000 * MS
RUN_END_NS = 1_050 * MS

#: Link-fault windows close before the measurement window ends so the
#: flow's tail confirms recovery after the noise stops.
FAULT_END_NS = 850 * MS


@dataclass(frozen=True)
class ChaosScenario:
    """One named entry of the campaign matrix."""

    name: str
    plan: FaultPlan
    #: Fronthaul boundary commits the run must produce — exactly.
    expected_migrations: int
    #: Max tolerated probe-delivery gap (None = downtime unbounded by
    #: design; the degraded-mode invariant applies instead).
    downtime_budget_ns: Optional[int]
    num_phy_servers: int = 2
    #: Documentation: which detection path should catch the fault.
    detection_path: str = "none"
    description: str = ""

    def expect_failover_impossible(self) -> bool:
        return self.downtime_budget_ns is None


def _fronthaul(spec_kwargs: dict) -> LinkFaultSpec:
    return LinkFaultSpec(
        link_pattern="ru0",
        start_ns=FAULT_AT_NS,
        end_ns=FAULT_END_NS,
        **spec_kwargs,
    )


def _orion_transport(spec_kwargs: dict) -> LinkFaultSpec:
    return LinkFaultSpec(
        link_pattern="l2",
        start_ns=FAULT_AT_NS,
        end_ns=FAULT_END_NS,
        ethertypes=(EtherType.IPV4,),
        **spec_kwargs,
    )


def standard_scenarios() -> Tuple[ChaosScenario, ...]:
    """The default matrix swept by ``python -m repro chaos``."""
    return (
        ChaosScenario(
            name="fh_loss",
            plan=FaultPlan(
                name="fh_loss",
                link_faults=(_fronthaul({"loss_prob": 0.05}),),
            ),
            expected_migrations=0,
            downtime_budget_ns=30 * MS,
            detection_path="HARQ/scheduler retries",
            description="5% loss on both fronthaul directions",
        ),
        ChaosScenario(
            name="fh_corrupt",
            plan=FaultPlan(
                name="fh_corrupt",
                link_faults=(_fronthaul({"corrupt_prob": 0.05}),),
            ),
            expected_migrations=0,
            downtime_budget_ns=30 * MS,
            detection_path="payload integrity checks",
            description="5% payload corruption on the fronthaul",
        ),
        ChaosScenario(
            name="fh_reorder",
            plan=FaultPlan(
                name="fh_reorder",
                link_faults=(
                    _fronthaul(
                        {"reorder_prob": 0.25, "reorder_jitter_ns": 150_000}
                    ),
                ),
            ),
            expected_migrations=0,
            downtime_budget_ns=25 * MS,
            detection_path="slot-deadline discipline",
            description="25% of fronthaul frames jittered by up to 150 us",
        ),
        ChaosScenario(
            name="orion_loss",
            plan=FaultPlan(
                name="orion_loss",
                link_faults=(_orion_transport({"loss_prob": 0.03}),),
            ),
            expected_migrations=0,
            downtime_budget_ns=30 * MS,
            detection_path="Orion gap repair + per-slot watchdog nulls",
            description="3% loss on the inter-Orion UDP transport",
        ),
        ChaosScenario(
            name="orion_dup",
            plan=FaultPlan(
                name="orion_dup",
                link_faults=(_orion_transport({"dup_prob": 0.3}),),
            ),
            expected_migrations=0,
            downtime_budget_ns=20 * MS,
            detection_path="idempotent FAPI bookkeeping",
            description="30% duplication on the inter-Orion UDP transport",
        ),
        ChaosScenario(
            name="crash",
            plan=FaultPlan(
                name="crash",
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="crash", at_ns=FAULT_AT_NS),
                ),
            ),
            expected_migrations=1,
            downtime_budget_ns=15 * MS,
            detection_path="in-switch heartbeat detector",
            description="fail-stop crash of the primary PHY",
        ),
        ChaosScenario(
            name="crash_restart",
            plan=FaultPlan(
                name="crash_restart",
                process_faults=(
                    ProcessFaultSpec(
                        phy_id=0,
                        kind="crash_restart",
                        at_ns=FAULT_AT_NS,
                        duration_ns=200 * MS,
                    ),
                ),
            ),
            expected_migrations=1,
            downtime_budget_ns=15 * MS,
            detection_path="in-switch detector; revival via stored config",
            description="primary crashes, restarts 200 ms later as standby",
        ),
        ChaosScenario(
            name="hang",
            plan=FaultPlan(
                name="hang",
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="hang", at_ns=FAULT_AT_NS),
                ),
            ),
            expected_migrations=1,
            downtime_budget_ns=20 * MS,
            detection_path="L2-Orion response watchdog (gray failure)",
            description="primary wedges: heartbeats continue, FAPI stops",
        ),
        ChaosScenario(
            name="slowdown",
            plan=FaultPlan(
                name="slowdown",
                process_faults=(
                    ProcessFaultSpec(
                        phy_id=0,
                        kind="slowdown",
                        at_ns=FAULT_AT_NS,
                        duration_ns=200 * MS,
                        slowdown_ns=3 * MS,
                    ),
                ),
            ),
            expected_migrations=0,
            downtime_budget_ns=20 * MS,
            detection_path="none (degraded, not failed)",
            description="uplink pipeline inflated by 3 ms for 200 ms",
        ),
        ChaosScenario(
            name="clock_drift",
            plan=FaultPlan(
                name="clock_drift",
                clock_faults=(
                    ClockFaultSpec(
                        node="phy0",
                        at_ns=FAULT_AT_NS - 100 * MS,
                        step_ns=200_000.0,
                        drift_ppm=500.0,
                        holdover=True,
                        duration_ns=400 * MS,
                    ),
                ),
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="crash", at_ns=FAULT_AT_NS),
                ),
            ),
            expected_migrations=1,
            downtime_budget_ns=15 * MS,
            detection_path="in-switch detector (clock-independent)",
            description=(
                "primary's PTP clock steps 200 us and free-runs at 500 ppm "
                "before the crash — recovery is slot-field driven, not "
                "clock driven, so failover must be unaffected"
            ),
        ),
        ChaosScenario(
            name="cmd_drop",
            plan=FaultPlan(
                name="cmd_drop",
                link_faults=(
                    LinkFaultSpec(
                        link_pattern="l2->edge-switch",
                        start_ns=FAULT_AT_NS,
                        end_ns=FAULT_END_NS,
                        loss_prob=0.5,
                        ethertypes=(EtherType.SLINGSHOT,),
                    ),
                ),
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="crash", at_ns=FAULT_AT_NS),
                ),
            ),
            expected_migrations=1,
            downtime_budget_ns=25 * MS,
            detection_path="command retransmission + idempotent commits",
            description="50% of migrate_on_slot/set_monitor commands lost",
        ),
        ChaosScenario(
            name="notification_dup",
            plan=FaultPlan(
                name="notification_dup",
                link_faults=(
                    LinkFaultSpec(
                        link_pattern="edge-switch->l2",
                        start_ns=FAULT_AT_NS,
                        end_ns=FAULT_END_NS,
                        loss_prob=0.3,
                        dup_prob=1.0,
                        ethertypes=(EtherType.SLINGSHOT,),
                    ),
                ),
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="crash", at_ns=FAULT_AT_NS),
                ),
            ),
            expected_migrations=1,
            downtime_budget_ns=20 * MS,
            detection_path="duplicate suppression; watchdog backstop on loss",
            description=(
                "failure notifications duplicated, 30% chance the only "
                "notification is lost (response watchdog then recovers)"
            ),
        ),
        ChaosScenario(
            name="no_secondary",
            plan=FaultPlan(
                name="no_secondary",
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="crash", at_ns=FAULT_AT_NS),
                ),
            ),
            expected_migrations=0,
            downtime_budget_ns=None,
            num_phy_servers=1,
            detection_path="in-switch detector; failover impossible",
            description="crash with no standby: degraded mode must be visible",
        ),
    )


def scenario_by_name() -> Dict[str, ChaosScenario]:
    return {s.name: s for s in standard_scenarios()}
