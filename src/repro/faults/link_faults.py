"""Per-link probabilistic impairments.

A :class:`LinkImpairment` implements the
:class:`repro.net.link.LinkImpairmentHook` protocol: the link calls
``on_transmit`` once per frame and schedules whatever deliveries the
hook returns. All randomness comes from one ``faults.link.<name>``
registry stream per link, and the hook draws a fixed number of uniforms
per matching frame regardless of outcome, so enabling one fault kind
never perturbs another kind's draws.

Corruption is modeled at the payload level: the frame still occupies the
wire (serialization/latency unchanged) but its payload is wrapped in
:class:`CorruptedPayload`, which no receiver's ``isinstance`` dispatch
recognizes — switch pipelines count it as unknown and endpoints discard
it, exactly like a frame that fails its integrity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.faults.plan import LinkFaultSpec
from repro.net.link import Link
from repro.net.packet import EthernetFrame
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class CorruptedPayload:
    """Marker wrapper for a payload mangled on the wire."""

    original: Any


@dataclass
class ImpairmentStats:
    frames_seen: int = 0
    dropped: int = 0
    corrupted: int = 0
    reordered: int = 0
    duplicated: int = 0


class LinkImpairment:
    """All of one link's active fault specs plus their RNG stream."""

    def __init__(
        self,
        specs: Tuple[LinkFaultSpec, ...],
        rng: np.random.Generator,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.specs = specs
        self.rng = rng
        self.trace = trace
        self.stats = ImpairmentStats()

    def on_transmit(
        self, link: Link, frame: EthernetFrame, arrival: int
    ) -> List[Tuple[int, EthernetFrame]]:
        now = link.sim.now
        self.stats.frames_seen += 1
        delivered = frame
        deliver_at = arrival
        duplicate = False
        for spec in self.specs:
            if not spec.start_ns <= now < spec.end_ns:
                continue
            if spec.ethertypes and frame.ethertype not in spec.ethertypes:
                continue
            # Fixed draw order — loss, corrupt, reorder(+jitter), dup —
            # keeps stream consumption identical across outcomes.
            u_loss = float(self.rng.random())
            u_corrupt = float(self.rng.random())
            u_reorder = float(self.rng.random())
            jitter = float(self.rng.random())
            u_dup = float(self.rng.random())
            if u_loss < spec.loss_prob:
                self.stats.dropped += 1
                self._record("fault.link_drop", link, frame)
                return []
            if u_corrupt < spec.corrupt_prob and not isinstance(
                delivered.payload, CorruptedPayload
            ):
                delivered = EthernetFrame(
                    src=delivered.src,
                    dst=delivered.dst,
                    ethertype=delivered.ethertype,
                    payload=CorruptedPayload(delivered.payload),
                    wire_bytes=delivered.wire_bytes,
                )
                self.stats.corrupted += 1
                self._record("fault.link_corrupt", link, frame)
            if u_reorder < spec.reorder_prob and spec.reorder_jitter_ns > 0:
                deliver_at += round(jitter * spec.reorder_jitter_ns)
                self.stats.reordered += 1
                self._record("fault.link_reorder", link, frame)
            if u_dup < spec.dup_prob:
                duplicate = True
        deliveries = [(deliver_at, delivered)]
        if duplicate:
            self.stats.duplicated += 1
            self._record("fault.link_dup", link, frame)
            deliveries.append((deliver_at + 1_000, delivered))
        return deliveries

    def _record(self, category: str, link: Link, frame: EthernetFrame) -> None:
        if self.trace is not None:
            self.trace.record(
                link.sim.now,
                category,
                link=link.name,
                ethertype=int(frame.ethertype),
            )
