"""repro — a simulation-based reproduction of Slingshot (SIGCOMM 2023).

Slingshot provides resilient baseband (PHY) processing for virtualized
RANs: transparent PHY failover and zero-downtime upgrades built from an
in-switch fronthaul middlebox, an in-switch failure detector, and a
software FAPI middlebox (Orion) — with no changes to the vRAN software.

This package implements the full system and every substrate it depends
on (discrete-event simulator, 5G PHY signal processing, O-RAN fronthaul,
FAPI, L2 MAC/RLC, UEs, core network, transports, and applications), plus
the baselines and experiment harnesses that regenerate each figure and
table of the paper's evaluation. See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import build_slingshot_cell, run_for_ns, seconds

    cell = build_slingshot_cell()
    cell.kill_phy_at(0, seconds(2.0))   # SIGKILL the primary PHY at t=2s
    run_for_ns(cell, seconds(4.0))
    print(cell.middlebox.stats)          # failover executed in-switch
"""

from repro.cell import (
    BaselineCell,
    CellConfig,
    SlingshotCell,
    UeProfile,
    build_baseline_cell,
    build_slingshot_cell,
)
from repro.core import (
    FailureDetector,
    FronthaulMiddlebox,
    L2SideOrion,
    MigrationController,
    PhySideOrion,
)
from repro.sim import (
    Simulator,
    ms_to_ns,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
    run_for_ns,
    run_until_ns,
    s_to_ns,
    seconds,
    us_to_ns,
)

__version__ = "1.0.0"

__all__ = [
    "BaselineCell",
    "CellConfig",
    "SlingshotCell",
    "UeProfile",
    "build_baseline_cell",
    "build_slingshot_cell",
    "FailureDetector",
    "FronthaulMiddlebox",
    "L2SideOrion",
    "MigrationController",
    "PhySideOrion",
    "Simulator",
    "ms_to_ns",
    "ns_to_ms",
    "ns_to_s",
    "ns_to_us",
    "run_for_ns",
    "run_until_ns",
    "s_to_ns",
    "seconds",
    "us_to_ns",
    "__version__",
]
