"""Deterministic scenario runners shared by benchmarks and digest tests.

Each runner builds a full Slingshot cell, drives a short, fixed workload
through a resilience event, and returns the cell so callers can read
``cell.trace`` and ``cell.sim``. Two consumers share these functions:

* the **macro benchmarks** (``python -m repro perf``), which time them
  and report events/sec and the sim-time/wall-time ratio;
* the **digest-equivalence regression tests**
  (``tests/test_perf_digests.py``), which pin each scenario's canonical
  trace digest as a golden value.

Because both consumers run the *same* code with the *same* durations,
any performance work that changes behaviour — an event reordered, an RNG
draw added, a float perturbed — flips a golden digest and fails tier-1
loudly. Durations are deliberately short (about a second of simulated
time) so the digest tests stay cheap; the harness's ``repeats`` knob, not
longer scenarios, provides measurement stability.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.apps.dispatch import FlowDispatch
from repro.apps.iperf import UdpIperfUplink
from repro.apps.ping import PingClient, UePingResponder
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, run_for_ns, run_until_ns, s_to_ns, seconds


def run_fig9_cell(
    duration_s: float = 1.2,
    failure_at_s: float = 0.6,
    seed: int = 0,
    pause_at_s: Optional[float] = None,
    on_pause: Optional[Callable] = None,
):
    """Fig 9 shape: three UEs pinging every 10 ms through a PHY failover.

    ``pause_at_s``/``on_pause`` split the final run at an intermediate
    time and hand the live cell to the callback — the checkpoint tests
    capture there. Splitting ``run_until`` is behaviour-identical to one
    call, so the golden digest is unaffected.
    """
    cell = build_slingshot_cell(CellConfig(seed=seed))
    clients = {}
    for ue_id, ue in cell.ues.items():
        flow = f"ping-{ue_id}"
        responder = UePingResponder(ue, flow, bearer_id=1)
        ue.dl_sink = FlowDispatch(flow, responder.on_packet, ue.dl_sink)
        clients[ue.name] = PingClient(
            cell.sim,
            cell.server,
            ue_id=ue_id,
            flow_id=flow,
            bearer_id=1,
            interval_ns=10 * MS,
        )
    run_for_ns(cell, seconds(0.2))
    for client in clients.values():
        client.start()
    cell.kill_phy_at(0, s_to_ns(failure_at_s))
    if pause_at_s is not None:
        run_until_ns(cell, seconds(pause_at_s))
        if on_pause is not None:
            on_pause(cell)
    run_until_ns(cell, seconds(duration_s))
    return cell


def run_fig10_smoke_cell(
    duration_s: float = 1.0,
    event_at_s: float = 0.6,
    seed: int = 0,
    pause_at_s: Optional[float] = None,
    on_pause: Optional[Callable] = None,
):
    """Fig 10 smoke: one UE, uplink UDP iperf through a PHY failover.

    ``pause_at_s``/``on_pause``: see :func:`run_fig9_cell`.
    """
    cell = build_slingshot_cell(
        CellConfig(
            seed=seed,
            ue_profiles=[
                UeProfile(
                    ue_id=1, name="UE", mean_snr_db=17.0,
                    shadow_sigma_db=0.6, fade_probability=0.0,
                )
            ],
        )
    )
    ue = cell.ue(1)
    flow = UdpIperfUplink(
        cell.sim, cell.server, ue, "iperf", 1, bitrate_bps=15.8e6
    )
    run_for_ns(cell, seconds(0.2))
    flow.start()
    cell.kill_phy_at(0, s_to_ns(event_at_s))
    if pause_at_s is not None:
        run_until_ns(cell, seconds(pause_at_s))
        if on_pause is not None:
            on_pause(cell)
    run_until_ns(cell, seconds(duration_s))
    return cell


def run_chaos_cell(scenario_name: str, seed: int = 1):
    """One (scenario, seed) run of the chaos campaign's standard matrix."""
    from repro.faults.campaign import _execute
    from repro.faults.scenarios import scenario_by_name

    cell, _injector = _execute(scenario_by_name()[scenario_name], seed)
    return cell


def _chaos_runner(scenario_name: str, seed: int) -> Callable:
    def run():
        return run_chaos_cell(scenario_name, seed)

    run.__name__ = f"run_chaos_{scenario_name}"
    return run


#: Scenario name -> zero-argument runner returning a finished cell.
#: These four are the golden-digest set; the macro benchmarks reuse them.
DIGEST_SCENARIOS: Dict[str, Callable] = {
    "fig9": run_fig9_cell,
    "fig10_smoke": run_fig10_smoke_cell,
    "chaos_cmd_drop": _chaos_runner("cmd_drop", seed=1),
    "chaos_crash_restart": _chaos_runner("crash_restart", seed=1),
}


def scenario_digest(name: str) -> str:
    """Canonical trace digest of one named scenario (fresh run)."""
    return DIGEST_SCENARIOS[name]().trace.digest()
