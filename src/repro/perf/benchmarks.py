"""The named benchmark catalog for ``python -m repro perf``.

Micro benchmarks time one hot subsystem in isolation (event-engine churn,
cancel/reschedule watchdog load, FAPI encode/decode, eCPRI header
framing, link delivery); macro benchmarks time the full-cell scenarios
from :mod:`repro.perf.scenarios` and also report the sim-time/wall-time
ratio and the scenario's canonical trace digest.

Several catalog entries exist purely as *baselines*:
``engine_churn_legacy`` and ``engine_churn_wheel_legacy`` run their
workloads on the frozen pre-optimization engine
(:mod:`repro.perf.legacy`), ``fapi_codec_reference`` runs the codec
workload through the normative slow paths, and ``fleet_slot_legacy``
drives a full composed fleet on the legacy engine with per-cell encode —
the harness derives the optimization speedups from these pairs, and
``--check`` gates on them. The ``fleet_slot`` pair is ``fanout=False``
not because it manages a pool but because its legs form a measured
*ratio*: co-running shards would perturb the two legs unequally.

Every workload is deterministic: sizes are fixed per (quick, full) mode,
randomized message content comes from a reserved
:class:`~repro.sim.rng.RngRegistry` stream, and the macro scenarios use
the *same* durations in quick and full mode so their digests are
comparable across modes and across machines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.fapi import codec
from repro.fapi import messages as m
from repro.fronthaul import ecpri
from repro.net.addresses import MacAllocator
from repro.net.link import Link
from repro.net.packet import EthernetFrame, EtherType
from repro.perf.legacy import LegacySimulator
from repro.perf.scenarios import DIGEST_SCENARIOS
from repro.perf.timing import wall_ns
from repro.phy.modulation import Modulation
from repro.phy.numerology import SlotAddress
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

#: Seed for the benchmark corpus stream (reserved; nothing else uses it).
CORPUS_SEED = 20260

#: Microsecond per watchdog re-arm / response in the watchdog workload.
_WATCHDOG_TIMEOUT_NS = 1_000_000
_WATCHDOG_RESPONSE_NS = 1_000


@dataclass
class RawRun:
    """One benchmark execution, before the harness derives rates."""

    events: int
    wall_seconds: float
    sim_ns: Optional[int] = None
    digest: Optional[str] = None
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: ``run(quick)`` returns a :class:`RawRun`."""

    name: str
    kind: str  # "micro" | "macro"
    description: str
    run: Callable[[bool], RawRun]
    #: For macro specs: the zero-arg scenario runner, re-run under the
    #: sampler when profiling (separately from the timed run).
    scenario: Optional[Callable[[], Any]] = None
    #: False for benchmarks that must run in the parent process even
    #: under ``perf --jobs N`` — the shard-runner pair manages its own
    #: pool, and nesting pools would corrupt its measurement.
    fanout: bool = True


# ----------------------------------------------------------------------
# Event-engine workloads
# ----------------------------------------------------------------------
def _churn_workload(sim: Any, events: int, chains: int = 64) -> RawRun:
    """Self-rescheduling event chains: the schedule/pop steady state that
    dominates engine time in long runs. Runs on any engine exposing
    ``schedule``/``run``/``events_processed``."""
    remaining = [events]
    schedule = sim.schedule

    def tick(i: int) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            schedule(100 + (i & 7), tick, i + 1)

    for chain in range(chains):
        schedule(chain & 3, tick, chain)
    start = wall_ns()
    sim.run()
    wall = (wall_ns() - start) / 1e9
    return RawRun(events=sim.events_processed, wall_seconds=wall, sim_ns=sim.now)


def _run_engine_churn(quick: bool) -> RawRun:
    return _churn_workload(Simulator(), events=60_000 if quick else 240_000)


def _run_engine_churn_legacy(quick: bool) -> RawRun:
    return _churn_workload(LegacySimulator(), events=60_000 if quick else 240_000)


def _run_engine_cancel_watchdog(quick: bool) -> RawRun:
    """Orion's watchdog pattern: every response cancels the pending
    timeout and re-arms it, so almost every scheduled event is cancelled.
    Exercises compaction; ``extra`` records the heap-growth evidence."""
    responses = 20_000 if quick else 80_000
    sim = Simulator()
    state = {"left": responses, "watchdog": None, "timeouts": 0, "max_heap": 0}

    def on_timeout() -> None:
        state["timeouts"] += 1

    def on_response() -> None:
        watchdog = state["watchdog"]
        if watchdog is not None:
            watchdog.cancel()
        state["watchdog"] = sim.schedule(_WATCHDOG_TIMEOUT_NS, on_timeout)
        heap = sim.queued_entries
        if heap > state["max_heap"]:
            state["max_heap"] = heap
        if state["left"] > 0:
            state["left"] -= 1
            sim.schedule(_WATCHDOG_RESPONSE_NS, on_response)

    # Sole event at t=0; no tie to order against.
    sim.schedule(0, on_response)  # slinglint: disable=EVT002
    start = wall_ns()
    sim.run()
    wall = (wall_ns() - start) / 1e9
    return RawRun(
        events=sim.events_processed,
        wall_seconds=wall,
        sim_ns=sim.now,
        extra={
            "compactions": float(sim.compactions),
            "max_heap_entries": float(state["max_heap"]),
            "timeouts_fired": float(state["timeouts"]),
        },
    )


def _best_of(runner: Callable[[], RawRun], repeats: int) -> RawRun:
    """Min-wall-time of ``repeats`` runs of a deterministic workload.

    The gated speedup pairs use this in full mode: their legs do
    identical event counts every repeat (and identical digests, when they
    record one), so keeping the fastest repeat per leg strips one-sided
    scheduler noise from the measured ratio without biasing it."""
    best: Optional[RawRun] = None
    for _ in range(repeats):
        raw = runner()
        if best is None or raw.wall_seconds < best.wall_seconds:
            best = raw
    assert best is not None
    return best


def _periodic_workload(sim: Any, duration_ns: int, lanes: int = 256) -> RawRun:
    """Periodic slot-tick lanes plus crash/restart-style cancel/re-arm
    churn: the steady state every deployed cell imposes on the engine.
    On the live engine the lanes ride the slot wheel (O(1) re-arm, epoch
    cancellation); on the legacy engine the ``schedule_periodic`` adapter
    self-reschedules through the heap — the pre-wheel cost this pair
    keeps measured. Runs on any engine exposing ``schedule_periodic`` /
    ``run_for`` / ``events_processed``."""
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    handles = [
        sim.schedule_periodic(100 + (i & 7), tick, label=f"lane{i}")
        for i in range(lanes)
    ]
    cursor = [0]

    def churn() -> None:
        # The crash/restart pattern: take a lane down, bring it back.
        i = cursor[0] % lanes
        cursor[0] += 1
        handle = handles[i]
        handle.cancel()
        handle.re_arm(start_offset=100 + (i & 7))

    sim.schedule_periodic(900, churn, label="churn")
    start = wall_ns()
    sim.run_for(duration_ns)
    wall = (wall_ns() - start) / 1e9
    extra: Dict[str, float] = {"ticks_fired": float(fired[0])}
    if hasattr(sim, "wheel_compactions"):
        extra["wheel_compactions"] = float(sim.wheel_compactions)
        extra["wheel_entries"] = float(sim.wheel_entries)
    return RawRun(
        events=sim.events_processed, wall_seconds=wall, sim_ns=sim.now,
        extra=extra,
    )


def _run_engine_churn_wheel(quick: bool) -> RawRun:
    return _best_of(
        lambda: _periodic_workload(
            Simulator(), duration_ns=60_000 if quick else 150_000
        ),
        repeats=1 if quick else 2,
    )


def _run_engine_churn_wheel_legacy(quick: bool) -> RawRun:
    return _best_of(
        lambda: _periodic_workload(
            LegacySimulator(), duration_ns=60_000 if quick else 150_000
        ),
        repeats=1 if quick else 2,
    )


# ----------------------------------------------------------------------
# FAPI codec workload
# ----------------------------------------------------------------------
def build_fapi_corpus(count: int = 400, seed: int = CORPUS_SEED) -> List[m.FapiMessage]:
    """A deterministic mixed-message corpus (reserved RNG stream)."""
    rng = RngRegistry(seed).stream("perf.fapi_corpus")
    modulations = list(Modulation)
    messages: List[m.FapiMessage] = []

    def pdus(cls: type, slot: int) -> List[Any]:
        n = int(rng.integers(1, 5))
        return [
            cls(
                ue_id=int(rng.integers(1, 16)),
                harq_process=int(rng.integers(0, 16)),
                modulation=modulations[int(rng.integers(0, len(modulations)))],
                prbs=int(rng.integers(1, 273)),
                new_data=bool(rng.integers(0, 2)),
                tb_id=slot * 16 + i,
                tb_bytes=int(rng.integers(32, 4096)),
                retx_index=int(rng.integers(0, 4)),
            )
            for i in range(n)
        ]

    def blob() -> bytes:
        return bytes(rng.integers(0, 256, size=int(rng.integers(8, 96))).tolist())

    for slot in range(count):
        kind = slot % 8
        if kind == 0:
            messages.append(m.UlTtiRequest(cell_id=0, slot=slot, pdus=pdus(m.PuschPdu, slot)))
        elif kind == 1:
            messages.append(m.DlTtiRequest(cell_id=0, slot=slot, pdus=pdus(m.PdschPdu, slot)))
        elif kind == 2:
            messages.append(
                m.TxDataRequest(
                    cell_id=0, slot=slot,
                    payloads=[(slot * 16 + i, blob()) for i in range(int(rng.integers(1, 4)))],
                )
            )
        elif kind == 3:
            messages.append(
                m.RxDataIndication(
                    cell_id=0, slot=slot,
                    payloads=[
                        (int(rng.integers(1, 16)), int(rng.integers(0, 16)),
                         slot * 16 + i, blob())
                        for i in range(int(rng.integers(1, 4)))
                    ],
                )
            )
        elif kind == 4:
            messages.append(
                m.CrcIndication(
                    cell_id=0, slot=slot,
                    results=[
                        m.CrcResult(
                            ue_id=int(rng.integers(1, 16)),
                            harq_process=int(rng.integers(0, 16)),
                            tb_id=slot * 16 + i,
                            crc_ok=bool(rng.integers(0, 2)),
                            measured_snr_db=float(round(rng.normal(15.0, 3.0), 3)),
                            retx_index=int(rng.integers(0, 4)),
                        )
                        for i in range(int(rng.integers(1, 4)))
                    ],
                )
            )
        elif kind == 5:
            messages.append(
                m.UciIndication(
                    cell_id=0, slot=slot,
                    feedback=[
                        m.HarqFeedback(
                            ue_id=int(rng.integers(1, 16)),
                            harq_process=int(rng.integers(0, 16)),
                            tb_id=slot * 16 + i,
                            ack=bool(rng.integers(0, 2)),
                        )
                        for i in range(int(rng.integers(1, 3)))
                    ],
                    bsr_reports=[(int(rng.integers(1, 16)), int(rng.integers(0, 65536)))],
                )
            )
        elif kind == 6:
            messages.append(m.SlotIndication(cell_id=0, slot=slot))
        else:
            messages.append(
                m.ErrorIndication(
                    cell_id=0, slot=slot,
                    error_code=int(rng.integers(1, 8)), detail="missing TTI request",
                )
            )
    return messages


def _codec_run(
    encode: Callable[[m.FapiMessage], bytes],
    decode: Callable[[bytes], m.FapiMessage],
    repeats: int,
) -> RawRun:
    corpus = build_fapi_corpus()
    processed = 0
    start = wall_ns()
    for _ in range(repeats):
        for message in corpus:
            decode(encode(message))
            processed += 1
    wall = (wall_ns() - start) / 1e9
    return RawRun(events=processed, wall_seconds=wall)


def _run_fapi_codec(quick: bool) -> RawRun:
    return _codec_run(codec.encode_message, codec.decode_message, 6 if quick else 24)


def _run_fapi_codec_reference(quick: bool) -> RawRun:
    return _codec_run(
        codec.encode_message_reference, codec.decode_message_reference,
        3 if quick else 12,
    )


# ----------------------------------------------------------------------
# eCPRI framing workload
# ----------------------------------------------------------------------
def _run_ecpri_framing(quick: bool) -> RawRun:
    """Header pack / full parse / timing-field parse over a rolling slot
    and sequence pattern (the shape a fronthaul burst produces)."""
    iterations = 30_000 if quick else 120_000
    addresses = [
        SlotAddress(frame=(i // 20) % 1024, subframe=(i // 2) % 10, slot=i % 2)
        for i in range(200)
    ]
    encode, decode, parse = (
        ecpri.encode_header, ecpri.decode_header, ecpri.parse_timing_fields
    )
    start = wall_ns()
    for i in range(iterations):
        data = encode(
            ecpri.ECPRI_TYPE_IQ_DATA,
            payload_bytes=1024 + (i & 0xFF),
            eaxc_id=i & 0x7,
            sequence=i & 0xFF,
            address=addresses[i % 200],
            symbol=i % 14,
        )
        decode(data)
        parse(data)
    wall = (wall_ns() - start) / 1e9
    return RawRun(events=iterations * 3, wall_seconds=wall)


# ----------------------------------------------------------------------
# Link delivery workload
# ----------------------------------------------------------------------
class _Collector:
    """Minimal endpoint counting deliveries."""

    __slots__ = ("received",)

    def __init__(self) -> None:
        self.received = 0

    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        self.received += 1


def _run_link_delivery(quick: bool) -> RawRun:
    frames = 20_000 if quick else 80_000
    sim = Simulator()
    collector = _Collector()
    link = Link(sim, collector, bandwidth_bps=100e9, latency_ns=1_000, name="bench")
    allocator = MacAllocator()
    src, dst = allocator.allocate(), allocator.allocate()
    payload = object()
    remaining = [frames]

    def send() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            link.send(EthernetFrame(src, dst, EtherType.ECPRI, payload, wire_bytes=1500))
            sim.schedule(500, send)

    # Sole event at t=0; no tie to order against.
    sim.schedule(0, send)  # slinglint: disable=EVT002
    start = wall_ns()
    sim.run()
    wall = (wall_ns() - start) / 1e9
    return RawRun(
        events=sim.events_processed,
        wall_seconds=wall,
        sim_ns=sim.now,
        extra={"frames_delivered": float(collector.received)},
    )


# ----------------------------------------------------------------------
# Batched PHY slot workload
# ----------------------------------------------------------------------
def _phy_slot_corpus(count: int = 24) -> List[Any]:
    """A deterministic mixed-modulation uplink slot's transport blocks
    (reserved RNG stream)."""
    from repro.phy.transport import LinkDirection, TransportBlock

    rng = RngRegistry(CORPUS_SEED).stream("perf.phy_slot")
    modulations = list(Modulation)
    return [
        TransportBlock(
            ue_id=1 + (i % 8),
            direction=LinkDirection.UPLINK,
            harq_process=i % 16,
            modulation=modulations[int(rng.integers(0, len(modulations)))],
            prbs=int(rng.integers(1, 273)),
            data=None,
            size_bytes=int(rng.integers(32, 4096)),
            new_data=True,
            retx_index=0,
            slot=0,
            tb_id=5000 + i,
        )
        for i in range(count)
    ]


def _phy_slot_run(batched: bool, repeats: int) -> RawRun:
    """Encode + soft-demodulate one slot's blocks, per-block or batched.

    Both legs do identical arithmetic (the batch kernels are pinned
    bit-identical to the per-block references), so the events/sec ratio
    is the pure batching speedup the harness gates on.
    """
    import numpy as np

    from repro.phy.batch import demodulate_llr_batch
    from repro.phy.codec import PhyCodec
    from repro.phy.modulation import demodulate_llr

    blocks = _phy_slot_corpus()
    codec = PhyCodec(np.random.default_rng(CORPUS_SEED))
    modulations = [block.modulation for block in blocks]
    noise_vars = [0.2 + 0.01 * i for i in range(len(blocks))]
    # Warm the caches (LDPC code, CRC position tables) outside the timing.
    codec.encode_blocks(blocks[:1])
    processed = 0
    start = wall_ns()
    for _ in range(repeats):
        if batched:
            symbols = codec.encode_blocks(blocks)
            demodulate_llr_batch(symbols, modulations, noise_vars)
        else:
            symbols = [codec.encode_block(block) for block in blocks]
            for sym, modulation, noise in zip(symbols, modulations, noise_vars):
                demodulate_llr(sym, modulation, noise)
        processed += len(blocks)
    wall = (wall_ns() - start) / 1e9
    return RawRun(events=processed, wall_seconds=wall)


def _run_phy_slot_scalar(quick: bool) -> RawRun:
    return _phy_slot_run(batched=False, repeats=30 if quick else 120)


def _run_phy_slot_batch(quick: bool) -> RawRun:
    return _phy_slot_run(batched=True, repeats=30 if quick else 120)


# ----------------------------------------------------------------------
# Sharded campaign workload (the scale-out pair)
# ----------------------------------------------------------------------
#: Worker count for the parallel leg of the campaign pair (the --check
#: gate is calibrated against :func:`repro.parallel.pool.measured_parallelism`
#: at this jobs value).
PARALLEL_BENCH_JOBS = 4

#: The (scenario, seed) shards both campaign legs run.
_CAMPAIGN_BENCH_SHARDS = (
    ("cmd_drop", 1),
    ("crash_restart", 1),
    ("cmd_drop", 2),
    ("crash_restart", 2),
)


def _campaign_shards_run(jobs: int) -> RawRun:
    """Run the fixed chaos shard set through the shard runner.

    Both legs go through :func:`repro.parallel.pool.run_shards` (jobs=1
    vs jobs=N) so the measured ratio is the pool's real speedup, not
    wrapper overhead. The digest is the SHA-256 over the per-shard
    canonical digests in shard order — identical at every jobs value,
    which makes the --check digest comparison double as the
    serial-vs-parallel determinism proof.
    """
    from repro.parallel.pool import measured_parallelism, run_shards
    from repro.parallel.workers import run_chaos_events_shard

    shards = [(key, key) for key in _CAMPAIGN_BENCH_SHARDS]
    start = wall_ns()
    outcome = run_shards(run_chaos_events_shard, shards, jobs=jobs)
    wall = (wall_ns() - start) / 1e9
    values = outcome.values()
    combined = hashlib.sha256(
        "".join(value["digest"] for value in values).encode("ascii")
    ).hexdigest()
    extra: Dict[str, float] = {"shards": float(len(values))}
    if jobs > 1:
        extra["effective_jobs"] = float(outcome.effective_jobs)
        extra["measured_parallelism"] = round(measured_parallelism(jobs), 3)
    return RawRun(
        events=sum(value["events"] for value in values),
        wall_seconds=wall,
        sim_ns=sum(value["sim_ns"] for value in values),
        digest=combined,
        extra=extra,
    )


def _run_campaign_shards_serial(quick: bool) -> RawRun:
    return _campaign_shards_run(jobs=1)


def _run_campaign_shards_parallel(quick: bool) -> RawRun:
    return _campaign_shards_run(jobs=PARALLEL_BENCH_JOBS)


# ----------------------------------------------------------------------
# Fleet slot workload (the per-TTI hot-path pair)
# ----------------------------------------------------------------------
#: Shape of the fleet both ``fleet_slot`` legs run: big enough that the
#: per-TTI periodic machinery and the encode path dominate, small enough
#: that the pair stays a single-digit-seconds benchmark.
_FLEET_BENCH_CELLS = 64
_FLEET_BENCH_TRACERS = 2
_FLEET_BENCH_SEED = 11
_FLEET_BENCH_RUN_NS = 30_000_000


def _fleet_slot_run(legacy: bool) -> RawRun:
    """One composed fleet driven for 30 ms of sim time.

    The optimized leg is the live engine (slot-wheel lanes) with the
    vectorized fleet-PHY backend; the baseline leg is the frozen legacy
    engine (self-rescheduling periodics) with per-cell encode — the full
    pre-optimization per-TTI hot path. Build time is excluded from the
    timing; the recorded digest is the canonical fleet digest, which is
    bit-identical across the two legs (the differential tests pin this),
    so the --check digest comparison doubles as the proof that neither
    the wheel nor the backend changed behaviour."""
    from repro.fleet.composer import FleetConfig, build_fleet, fleet_digest

    config = FleetConfig(
        seed=_FLEET_BENCH_SEED,
        num_cells=_FLEET_BENCH_CELLS,
        tracer_cells=_FLEET_BENCH_TRACERS,
        phy_backend="per-cell" if legacy else "vectorized",
    )
    sim = LegacySimulator() if legacy else None
    harness = build_fleet(config, sim=sim)
    start = wall_ns()
    harness.run_for(_FLEET_BENCH_RUN_NS)
    wall = (wall_ns() - start) / 1e9
    extra: Dict[str, float] = {"cells": float(_FLEET_BENCH_CELLS)}
    backend = harness.phy_backend
    if backend is not None:
        extra["kernel_invocations"] = float(backend.stats.kernel_invocations)
        extra["blocks_encoded"] = float(backend.stats.blocks_encoded)
        extra["cache_hits"] = float(backend.stats.cache_hits)
    return RawRun(
        events=harness.sim.events_processed,
        wall_seconds=wall,
        sim_ns=harness.sim.now,
        digest=fleet_digest(harness),
        extra=extra,
    )


def _run_fleet_slot(quick: bool) -> RawRun:
    # Same fleet in quick and full mode: the digest must stay comparable
    # (quick only drops the second repeat).
    return _best_of(lambda: _fleet_slot_run(legacy=False), 1 if quick else 2)


def _run_fleet_slot_legacy(quick: bool) -> RawRun:
    return _best_of(lambda: _fleet_slot_run(legacy=True), 1 if quick else 2)


# ----------------------------------------------------------------------
# Macro scenarios
# ----------------------------------------------------------------------
def _macro_runner(scenario_name: str) -> Callable[[bool], RawRun]:
    def run(quick: bool) -> RawRun:
        # Same durations in quick and full mode: the digest must be
        # comparable across modes (quick only skips profiling/repeats).
        runner = DIGEST_SCENARIOS[scenario_name]
        start = wall_ns()
        cell = runner()
        wall = (wall_ns() - start) / 1e9
        return RawRun(
            events=cell.sim.events_processed,
            wall_seconds=wall,
            sim_ns=cell.sim.now,
            digest=cell.trace.digest(),
        )

    return run


def _spec(name: str, kind: str, description: str,
          run: Callable[[bool], RawRun],
          scenario: Optional[Callable[[], Any]] = None,
          fanout: bool = True) -> BenchmarkSpec:
    return BenchmarkSpec(name=name, kind=kind, description=description,
                         run=run, scenario=scenario, fanout=fanout)


#: Ordered benchmark catalog; iteration order is report order.
CATALOG: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec("engine_churn", "micro",
              "event-engine schedule/pop churn (tuple heap entries)",
              _run_engine_churn),
        _spec("engine_churn_legacy", "micro",
              "same churn on the frozen pre-optimization engine (baseline)",
              _run_engine_churn_legacy),
        _spec("engine_churn_wheel", "micro",
              "periodic slot-tick lanes + cancel/re-arm churn (wheel lane)",
              _run_engine_churn_wheel),
        _spec("engine_churn_wheel_legacy", "micro",
              "same lanes self-rescheduling through the legacy heap (baseline)",
              _run_engine_churn_wheel_legacy),
        _spec("engine_cancel_watchdog", "micro",
              "watchdog cancel/re-arm load (heap compaction)",
              _run_engine_cancel_watchdog),
        _spec("fapi_codec", "micro",
              "FAPI encode+decode over a mixed message corpus (fast paths)",
              _run_fapi_codec),
        _spec("fapi_codec_reference", "micro",
              "same corpus through the normative reference codec (baseline)",
              _run_fapi_codec_reference),
        _spec("ecpri_framing", "micro",
              "eCPRI header pack/parse + switch timing-field extraction",
              _run_ecpri_framing),
        _spec("link_delivery", "micro",
              "frame serialization + delivery on a 100 GbE link model",
              _run_link_delivery),
        _spec("phy_slot_scalar", "micro",
              "one uplink slot encoded+demodulated block by block (baseline)",
              _run_phy_slot_scalar),
        _spec("phy_slot_batch", "micro",
              "same slot through the batched PHY kernels (pinned identical)",
              _run_phy_slot_batch),
        _spec("campaign_shards_serial", "macro",
              "four chaos (scenario, seed) shards back to back (baseline)",
              _run_campaign_shards_serial, fanout=False),
        _spec("campaign_shards_parallel", "macro",
              f"same shards on a {PARALLEL_BENCH_JOBS}-worker pool "
              "(digest-identical to serial)",
              _run_campaign_shards_parallel, fanout=False),
        _spec("fleet_slot", "macro",
              f"{_FLEET_BENCH_CELLS}-cell fleet, 30 ms: wheel lanes + "
              "vectorized fleet-PHY backend",
              _run_fleet_slot, fanout=False),
        _spec("fleet_slot_legacy", "macro",
              "same fleet on the legacy engine with per-cell encode (baseline)",
              _run_fleet_slot_legacy, fanout=False),
        _spec("macro_fig9", "macro",
              "full cell: 3-UE ping through PHY failover (fig 9 shape)",
              _macro_runner("fig9"), DIGEST_SCENARIOS["fig9"]),
        _spec("macro_fig10_smoke", "macro",
              "full cell: UDP iperf uplink through failover (fig 10 smoke)",
              _macro_runner("fig10_smoke"), DIGEST_SCENARIOS["fig10_smoke"]),
        _spec("macro_chaos_crash_restart", "macro",
              "chaos campaign cell: primary crash + restart scenario",
              _macro_runner("chaos_crash_restart"),
              DIGEST_SCENARIOS["chaos_crash_restart"]),
    ]
}
