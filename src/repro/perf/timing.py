"""Sanctioned wall-clock access for performance measurement.

Simulation logic must never read the host clock (slinglint DET001); the
perf harness obviously must. This module is the single place inside
``repro.perf`` allowed to touch :mod:`time` — rule PERF001 flags any
``time.*`` call elsewhere in the package, so every measurement loop is
forced through these helpers and the benchmark numbers stay comparable
(one clock, monotonic, ns resolution).
"""

from __future__ import annotations

import time


def wall_ns() -> int:
    """Monotonic host wall-clock in integer nanoseconds.

    The only sanctioned wall-clock read for measurement loops; the other
    allowlisted site in the package is the CLI's user-facing elapsed-time
    output (``repro.cli._wall_seconds``).
    """
    return time.perf_counter_ns()  # slinglint: disable=DET001


def wall_seconds_since(start_ns: int) -> float:
    """Elapsed wall seconds since a :func:`wall_ns` reading."""
    return (wall_ns() - start_ns) / 1e9
