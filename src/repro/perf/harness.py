"""Benchmark harness: run the catalog, report, and regression-gate.

``run_benchmarks`` executes named benchmarks from
:mod:`repro.perf.benchmarks`, derives events/sec and sim-time/wall-time
ratios, profiles the macro scenarios with the ``_pop`` sampler, and
computes the optimization speedups from the optimized/baseline pairs.
``check_report`` is the ``--check`` gate: it compares a fresh run against
the committed ``benchmarks/BENCH_perf.json`` and fails on

* a macro scenario whose canonical trace digest changed (behaviour
  regression — this check is exact, machine-independent, and the reason
  the perf pass can be trusted);
* an events/sec rate that fell below ``tolerance`` x the recorded
  baseline (performance regression — deliberately generous, wall-clock
  rates vary across machines);
* an optimization speedup that fell below its gate (the engine-churn
  speedup is the PR's headline claim and must stay measured).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.perf.benchmarks import CATALOG, BenchmarkSpec, RawRun
from repro.perf.sampler import PopSampler

#: Required speedup of the optimized engine over the frozen legacy one.
MIN_ENGINE_SPEEDUP = 1.3
#: Relaxed gate for --quick runs (shorter workloads, noisier ratios).
QUICK_MIN_ENGINE_SPEEDUP = 1.1
#: Required speedup of the slot-wheel periodic lane over the legacy
#: self-rescheduling idiom (the PR's headline engine claim).
MIN_WHEEL_SPEEDUP = 2.0
QUICK_MIN_WHEEL_SPEEDUP = 1.5
#: Required speedup of the full per-TTI hot path (wheel lanes +
#: vectorized fleet-PHY backend) over the legacy fleet, end to end.
MIN_FLEET_SLOT_SPEEDUP = 1.5
QUICK_MIN_FLEET_SLOT_SPEEDUP = 1.2
#: Codec fast path must at least not be slower than the reference.
MIN_CODEC_SPEEDUP = 1.0
#: Batched PHY kernels must beat the per-block loop on a full slot.
MIN_PHY_BATCH_SPEEDUP = 1.15
QUICK_MIN_PHY_BATCH_SPEEDUP = 1.05
#: Required campaign speedup at the parallel leg's jobs value — but only
#: on machines that really have that parallel capacity; see
#: :func:`parallel_speedup_gate`.
MIN_PARALLEL_SPEEDUP = 1.8

#: speedup name -> (optimized benchmark, baseline benchmark).
SPEEDUP_PAIRS: Dict[str, tuple] = {
    "engine_churn": ("engine_churn", "engine_churn_legacy"),
    "engine_churn_wheel": ("engine_churn_wheel", "engine_churn_wheel_legacy"),
    "fapi_codec": ("fapi_codec", "fapi_codec_reference"),
    "phy_slot_batch": ("phy_slot_batch", "phy_slot_scalar"),
    "fleet_slot": ("fleet_slot", "fleet_slot_legacy"),
    "parallel_campaign": ("campaign_shards_parallel", "campaign_shards_serial"),
}


def parallel_speedup_gate(measured_parallelism: float) -> float:
    """The ``parallel_campaign`` gate, scaled to real machine capacity.

    ``measured_parallelism`` is the calibration probe's throughput ratio
    (:func:`repro.parallel.pool.measured_parallelism`) — trusted over
    ``os.cpu_count()``, which containers routinely misreport in both
    directions. On a machine whose probe shows genuine >= 3x capacity at
    the pair's 4-worker setting, the campaign must parallelize at
    >= 1.8x; on throttled machines the gate degrades to about half the
    probe (never below 0.4x — the pool must at minimum not be a
    catastrophic slowdown).
    """
    if measured_parallelism >= 3.0:
        return MIN_PARALLEL_SPEEDUP
    return max(0.4, 0.5 * measured_parallelism)

#: Default rate-regression tolerance: fail only below half baseline rate.
DEFAULT_TOLERANCE = 0.5

#: Sampling interval for the macro profiling pass.
PROFILE_EVERY = 8


@dataclass
class BenchmarkResult:
    """One benchmark's derived metrics, as persisted in BENCH_perf.json."""

    name: str
    kind: str
    description: str
    events: int
    wall_seconds: float
    events_per_sec: float
    sim_ns: Optional[int] = None
    sim_wall_ratio: Optional[float] = None
    digest: Optional[str] = None
    subsystem_shares: Optional[Dict[str, float]] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        data: Dict = {
            "kind": self.kind,
            "description": self.description,
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_sec": round(self.events_per_sec, 1),
        }
        if self.sim_ns is not None:
            data["sim_ns"] = self.sim_ns
        if self.sim_wall_ratio is not None:
            data["sim_wall_ratio"] = round(self.sim_wall_ratio, 4)
        if self.digest is not None:
            data["digest"] = self.digest
        if self.subsystem_shares is not None:
            data["subsystem_shares"] = {
                name: round(share, 4)
                for name, share in self.subsystem_shares.items()
            }
        if self.extra:
            data["extra"] = self.extra
        return data

    @classmethod
    def from_dict(cls, name: str, data: Dict) -> "BenchmarkResult":
        return cls(
            name=name,
            kind=data.get("kind", "micro"),
            description=data.get("description", ""),
            events=int(data.get("events", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            events_per_sec=float(data.get("events_per_sec", 0.0)),
            sim_ns=data.get("sim_ns"),
            sim_wall_ratio=data.get("sim_wall_ratio"),
            digest=data.get("digest"),
            subsystem_shares=data.get("subsystem_shares"),
            extra=dict(data.get("extra", {})),
        )


@dataclass
class PerfReport:
    """A full harness run: per-benchmark results plus derived speedups."""

    quick: bool
    results: Dict[str, BenchmarkResult] = field(default_factory=dict)
    speedups: Dict[str, float] = field(default_factory=dict)
    #: Shard-runner accounting when the macro set ran under ``--jobs N``
    #: (jobs, per-shard wall, parallel speedup). Machine facts — recorded
    #: in the BENCH json, ignored by :func:`check_report`.
    execution: Optional[Dict] = None

    def as_dict(self) -> Dict:
        data = {
            "benchmark": "perf",
            "generated_by": "python -m repro perf"
            + (" --quick" if self.quick else ""),
            "quick": self.quick,
            "speedups": {k: round(v, 3) for k, v in self.speedups.items()},
            "benchmarks": {
                name: result.as_dict() for name, result in self.results.items()
            },
        }
        if self.execution is not None:
            data["execution"] = self.execution
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfReport":
        return cls(
            quick=bool(data.get("quick", False)),
            results={
                name: BenchmarkResult.from_dict(name, entry)
                for name, entry in data.get("benchmarks", {}).items()
            },
            speedups={k: float(v) for k, v in data.get("speedups", {}).items()},
            execution=data.get("execution"),
        )

    def write(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")


def load_report(path: Path) -> PerfReport:
    """Load a previously written BENCH_perf.json."""
    return PerfReport.from_dict(json.loads(Path(path).read_text()))


def _derive(spec: BenchmarkSpec, raw: RawRun) -> BenchmarkResult:
    wall = raw.wall_seconds
    return BenchmarkResult(
        name=spec.name,
        kind=spec.kind,
        description=spec.description,
        events=raw.events,
        wall_seconds=wall,
        events_per_sec=(raw.events / wall) if wall > 0 else 0.0,
        sim_ns=raw.sim_ns,
        sim_wall_ratio=(
            raw.sim_ns / (wall * 1e9)
            if raw.sim_ns is not None and wall > 0 else None
        ),
        digest=raw.digest,
        extra=raw.extra,
    )


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    profile: Optional[bool] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> PerfReport:
    """Run (a subset of) the catalog and return the derived report.

    ``profile`` controls the sampler pass over macro scenarios: ``None``
    means "full runs only" — the pass re-runs each macro scenario under
    :class:`PopSampler` so the *timed* run stays unperturbed.

    ``jobs > 1`` fans the macro scenarios out over worker processes
    (their timings are taken *inside* each worker, and their digests are
    deterministic, so the report differs from a serial run only in the
    ``execution`` accounting). Micro benchmarks always run serially in
    the parent — their rates are contention-sensitive — as does the
    profiling pass and any benchmark that manages its own pool.
    """
    selected = list(CATALOG) if names is None else list(names)
    unknown = [name for name in selected if name not in CATALOG]
    if unknown:
        raise KeyError(f"unknown benchmark(s): {', '.join(unknown)}")
    do_profile = (not quick) if profile is None else profile

    report = PerfReport(quick=quick)
    fanned: Dict[str, RawRun] = {}
    fan_names = [
        name for name in selected
        if CATALOG[name].kind == "macro" and CATALOG[name].fanout
    ]
    if jobs > 1 and len(fan_names) > 1:
        from repro.parallel.pool import run_shards
        from repro.parallel.workers import run_perf_benchmark_shard

        if progress is not None:
            progress(
                f"running {len(fan_names)} macro benchmark(s) on "
                f"{jobs} workers ..."
            )
        outcome = run_shards(
            run_perf_benchmark_shard,
            [(name, (name, quick)) for name in fan_names],
            jobs=jobs,
        )
        for name, reply in zip(fan_names, outcome.values()):
            fanned[name] = RawRun(
                events=reply["events"],
                wall_seconds=reply["wall_seconds"],
                sim_ns=reply["sim_ns"],
                digest=reply["digest"],
                extra=reply["extra"],
            )
        report.execution = outcome.accounting()
    for name in selected:
        spec = CATALOG[name]
        raw = fanned.get(name)
        if raw is None:
            if progress is not None:
                progress(f"running {name} ({spec.kind}) ...")
            raw = spec.run(quick)
        result = _derive(spec, raw)
        if do_profile and spec.scenario is not None:
            with PopSampler(every=PROFILE_EVERY) as sampler:
                spec.scenario()
            result.subsystem_shares = sampler.shares()
        report.results[name] = result

    for label, (optimized, baseline) in SPEEDUP_PAIRS.items():
        opt = report.results.get(optimized)
        base = report.results.get(baseline)
        if opt is not None and base is not None and base.events_per_sec > 0:
            report.speedups[label] = opt.events_per_sec / base.events_per_sec
    return report


def check_report(
    current: PerfReport,
    baseline: PerfReport,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare a fresh run against the committed baseline; return failures."""
    failures: List[str] = []
    for name, recorded in baseline.results.items():
        fresh = current.results.get(name)
        if fresh is None:
            failures.append(f"{name}: present in baseline but not run")
            continue
        if recorded.digest is not None:
            if fresh.digest != recorded.digest:
                failures.append(
                    f"{name}: trace digest changed "
                    f"({recorded.digest[:12]}... -> "
                    f"{(fresh.digest or 'none')[:12]}...) — behaviour regression"
                )
        if recorded.events_per_sec > 0 and tolerance > 0:
            floor = recorded.events_per_sec * tolerance
            if fresh.events_per_sec < floor:
                failures.append(
                    f"{name}: {fresh.events_per_sec:,.0f} events/s is below "
                    f"{tolerance:.0%} of recorded {recorded.events_per_sec:,.0f}"
                )

    engine_gate = QUICK_MIN_ENGINE_SPEEDUP if current.quick else MIN_ENGINE_SPEEDUP
    phy_gate = (
        QUICK_MIN_PHY_BATCH_SPEEDUP if current.quick else MIN_PHY_BATCH_SPEEDUP
    )
    wheel_gate = QUICK_MIN_WHEEL_SPEEDUP if current.quick else MIN_WHEEL_SPEEDUP
    fleet_gate = (
        QUICK_MIN_FLEET_SLOT_SPEEDUP if current.quick else MIN_FLEET_SLOT_SPEEDUP
    )
    gates = {
        "engine_churn": engine_gate,
        "engine_churn_wheel": wheel_gate,
        "fapi_codec": MIN_CODEC_SPEEDUP,
        "phy_slot_batch": phy_gate,
        "fleet_slot": fleet_gate,
    }
    parallel_result = current.results.get("campaign_shards_parallel")
    if parallel_result is not None:
        probe = parallel_result.extra.get("measured_parallelism", 1.0)
        gates["parallel_campaign"] = parallel_speedup_gate(probe)
    for label, gate in gates.items():
        speedup = current.speedups.get(label)
        if speedup is not None and speedup < gate:
            failures.append(
                f"speedup[{label}]: measured {speedup:.2f}x is below the "
                f"{gate:.2f}x gate"
            )
    return failures
