"""Sampling profiler hooked on ``Simulator._pop``.

Every fired event leaves the queue through :meth:`Simulator._pop`, so a
single hook point sees the whole simulation without instrumenting any
component. :class:`PopSampler` patches ``_pop`` at the class level for
the duration of a ``with`` block and, for every N-th popped event, swaps
the handle's callback for a timed wrapper. The wrapper attributes the
callback's wall time to a *subsystem* — the first two components of the
callback's defining module (``repro.sim``, ``repro.phy``, ``repro.l2``,
...) — giving per-subsystem time *shares* from a ~1/N sample of events.

Sampling (rather than timing every event) keeps the probe cheap enough
that the profiled run's behaviour is the benchmark's behaviour: the
simulation itself never reads a wall clock (DET001), so timing the
callbacks perturbs nothing but wall time, and the trace digest of a
profiled run is bit-identical to an unprofiled one.

The patch is process-global (all :class:`Simulator` instances created or
running inside the block are sampled), which is exactly what the macro
benchmarks want and why the harness profiles in a dedicated pass rather
than during the timed one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.perf.timing import wall_ns
from repro.sim.engine import Simulator

#: Module-name prefix length kept for attribution: ``repro.phy.process``
#: and ``repro.phy.channel`` both bill to ``repro.phy``.
_SUBSYSTEM_PARTS = 2


def subsystem_of(callback: Callable[..., Any]) -> str:
    """Attribution bucket for a callback: its defining module, truncated
    to ``repro.<subsystem>`` (non-repro callbacks bill to their top-level
    module; callables without a module bill to ``unknown``)."""
    module = getattr(callback, "__module__", None)
    if not module:
        return "unknown"
    parts = module.split(".")
    if parts[0] == "repro":
        return ".".join(parts[:_SUBSYSTEM_PARTS])
    return parts[0]


class PopSampler:
    """Context manager that samples every ``every``-th fired event.

    Usage::

        with PopSampler(every=8) as sampler:
            run_fig9_cell()
        shares = sampler.shares()   # {"repro.phy": 0.41, ...}
    """

    def __init__(self, every: int = 8) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.every = every
        #: Sampled wall nanoseconds per subsystem.
        self.nanos: Dict[str, int] = {}
        #: Sampled event count per subsystem.
        self.counts: Dict[str, int] = {}
        self._tick = 0
        self._saved_pop: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def sampled_events(self) -> int:
        return sum(self.counts.values())

    def shares(self) -> Dict[str, float]:
        """Per-subsystem fraction of sampled callback wall time, sorted
        descending (sums to 1.0 when anything was sampled)."""
        total = sum(self.nanos.values())
        if total <= 0:
            return {}
        return {
            name: self.nanos[name] / total
            for name in sorted(self.nanos, key=self.nanos.get, reverse=True)
        }

    def _record(self, callback: Callable[..., Any], elapsed_ns: int) -> None:
        bucket = subsystem_of(callback)
        self.nanos[bucket] = self.nanos.get(bucket, 0) + elapsed_ns
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    # ------------------------------------------------------------------
    # Class-level _pop patch
    # ------------------------------------------------------------------
    def __enter__(self) -> "PopSampler":
        if self._saved_pop is not None:
            raise RuntimeError("PopSampler is not reentrant")
        sampler = self
        inner_pop = Simulator._pop
        self._saved_pop = inner_pop

        def sampling_pop(sim: Simulator, limit: Optional[int] = None):
            entry = inner_pop(sim, limit)
            if entry is not None:
                sampler._tick += 1
                if sampler._tick % sampler.every == 0:
                    handle = entry[3]
                    callback = handle.callback

                    def timed(*args: Any, _cb=callback, _s=sampler, _h=handle) -> Any:
                        # Restore before recording: a periodic handle is
                        # popped again next occurrence, and re-wrapping a
                        # still-wrapped callback would nest forever.
                        start = wall_ns()
                        try:
                            return _cb(*args)
                        finally:
                            _h.callback = _cb
                            _s._record(_cb, wall_ns() - start)

                    handle.callback = timed
            return entry

        Simulator._pop = sampling_pop
        return self

    def __exit__(self, *exc_info: Any) -> None:
        Simulator._pop = self._saved_pop
        self._saved_pop = None
