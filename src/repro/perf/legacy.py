"""Frozen pre-optimization event engine, kept as a measurement baseline.

This is the simulator core as it stood *before* the performance pass that
introduced tuple heap entries and cancelled-entry compaction in
:mod:`repro.sim.engine`: dataclass heap entries (``@dataclass(order=True)``
comparison), a ``peek + step`` run loop, O(n) ``pending_events``, and no
compaction. The benchmark catalog runs the same workloads on this engine
and on the live one so the optimization's speedup stays *measured* — a
regression in the live engine shows up as the ``engine_churn`` speedup
dropping below the gate in ``python -m repro perf --check``, not as a
silently slower simulator.

Nothing outside :mod:`repro.perf` may import this module; it is not a
fallback engine, and it intentionally does not track the live engine's
API additions (``compactions``, ``_pop``, wheel diagnostics). The one
deliberate exception: it grew ``run_for`` and a **self-rescheduling**
``schedule_periodic`` adapter so the full deployment model (whose call
sites now use the wheel lane) still builds and runs on this engine —
the adapter re-arms through the heap on every occurrence, which is
exactly the pre-wheel cost the ``engine_churn_wheel`` and ``fleet_slot``
benchmark pairs measure against.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _LegacyQueueEntry:
    """Heap entry ordered by (time, tie, seq); per-pop attribute access and
    generated dataclass comparison are exactly what the tuple entries in
    the live engine replaced."""

    time: int
    tie: int
    seq: int
    handle: "LegacyEventHandle" = field(compare=False)


class LegacyEventHandle:
    """Pre-optimization event handle (no owning-simulator backref)."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label")

    def __init__(
        self,
        time: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.fired


class LegacyPeriodicHandle:
    """Self-rescheduling periodic adapter: every occurrence pays a full
    heap push (and the cancel/re-arm pattern plants tombstones the legacy
    engine never compacts). API-compatible with the live engine's
    :class:`~repro.sim.engine.PeriodicHandle` so the whole deployment
    model runs unchanged on this engine for baseline measurement."""

    __slots__ = (
        "sim", "period", "callback", "args", "cancelled", "fired", "label", "_next"
    )

    def __init__(
        self,
        sim: "LegacySimulator",
        period: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        first_at: int,
        label: str = "",
    ) -> None:
        self.sim = sim
        self.period = period
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        self._next = sim.at(first_at, self._fire, label=label)

    def _fire(self) -> None:
        if self.cancelled:
            return
        # Re-arm first, through the heap — the pre-wheel periodic idiom
        # the live engine's wheel lane replaced (and PERF002 now flags).
        self._next = self.sim.schedule(  # slinglint: disable=PERF002
            self.period, self._fire, label=self.label
        )
        self.fired = True
        self.callback(*self.args)

    def cancel(self) -> None:
        self.cancelled = True
        if self._next is not None:
            self._next.cancel()
            self._next = None

    def re_arm(
        self,
        *,
        start_offset: Optional[int] = None,
        first_at: Optional[int] = None,
    ) -> None:
        if not self.cancelled:
            raise RuntimeError("cannot re-arm a live legacy periodic")
        if first_at is None:
            offset = self.period if start_offset is None else start_offset
            first_at = self.sim.now + offset
        self.cancelled = False
        self._next = self.sim.at(first_at, self._fire, label=self.label)

    @property
    def pending(self) -> bool:
        return not self.cancelled


class LegacySimulator:
    """The event engine before the perf pass; same observable semantics as
    :class:`repro.sim.engine.Simulator` minus the perf-era diagnostics.

    Cancelled entries are never removed until popped, so heavy
    cancel/reschedule churn grows the heap without bound for the run's
    duration — the failure mode the live engine's compaction fixes (and
    the ``engine_cancel_watchdog`` benchmark demonstrates).
    """

    def __init__(self, start_time: int = 0) -> None:
        self._now = start_time
        self._queue: List[_LegacyQueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> int:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> LegacyEventHandle:
        return self.at(self._now + delay, callback, *args, label=label)

    def at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> LegacyEventHandle:
        handle = LegacyEventHandle(time, callback, args, label=label)
        entry = _LegacyQueueEntry(
            time=time, tie=0, seq=next(self._seq), handle=handle
        )
        heapq.heappush(self._queue, entry)
        return handle

    def schedule_periodic(
        self,
        period: int,
        callback: Callable[..., Any],
        *args: Any,
        start_offset: Optional[int] = None,
        first_at: Optional[int] = None,
        label: str = "",
    ) -> LegacyPeriodicHandle:
        """Periodic work the pre-wheel way: a handle that re-schedules
        itself through the heap on every occurrence. Draw-order-compatible
        with the live wheel lane (the re-arm precedes the callback), so
        FIFO trace digests match across engines."""
        if first_at is None:
            offset = period if start_offset is None else start_offset
            first_at = self._now + offset
        return LegacyPeriodicHandle(self, period, callback, args, first_at, label=label)

    def step(self) -> bool:
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                continue
            self._now = entry.time
            handle.fired = True
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run_until(self, end_time: int) -> None:
        self._running = True
        try:
            while self._queue and self._running:
                head_time = self._peek_time()
                if head_time is None or head_time > end_time:
                    break
                self.step()
        finally:
            self._running = False
        if self._now < end_time:
            self._now = end_time

    def run_for(self, duration: int) -> None:
        self.run_until(self._now + duration)

    def run(self) -> None:
        self._running = True
        try:
            while self._queue and self._running:
                self.step()
        finally:
            self._running = False

    def stop(self) -> None:
        self._running = False

    def _peek_time(self) -> Optional[int]:
        while self._queue:
            entry = self._queue[0]
            if entry.handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return entry.time
        return None

    @property
    def queued_entries(self) -> int:
        """Raw heap size including cancelled garbage (for the benchmarks'
        heap-growth comparison against the compacting engine)."""
        return len(self._queue)
