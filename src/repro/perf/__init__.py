"""Performance subsystem — ``python -m repro perf``.

The ROADMAP north star is a simulator that "runs as fast as the hardware
allows"; this package is the measurement side of that promise. It
provides:

* :mod:`repro.perf.timing` — the *sanctioned* wall-clock helper. All
  wall-time reads inside this package go through :func:`~repro.perf.timing.wall_ns`
  (enforced by slinglint rule PERF001); simulation logic still never
  touches a wall clock (DET001).
* :mod:`repro.perf.scenarios` — deterministic scenario runners (fig9,
  fig10 smoke, chaos scenarios) shared by the macro benchmarks and the
  digest-equivalence regression tests. Their canonical trace digests are
  golden: any perf optimization must leave them bit-identical.
* :mod:`repro.perf.sampler` — a lightweight sampling profiler hooked on
  ``Simulator._pop`` that attributes wall time to subsystems
  (``repro.sim``, ``repro.phy``, ...) without instrumenting every event.
* :mod:`repro.perf.harness` — micro/macro benchmark harness reporting
  events/sec and sim-time/wall-time ratios, with a ``--check``
  regression gate against ``benchmarks/BENCH_perf.json``.
* :mod:`repro.perf.benchmarks` — the named benchmark catalog, including
  legacy/reference implementations of the event engine and FAPI codec so
  the optimization speedups stay measurable forever.
"""

__all__ = [
    "BenchmarkResult",
    "PerfReport",
    "check_report",
    "load_report",
    "run_benchmarks",
    "DIGEST_SCENARIOS",
    "scenario_digest",
]

_HARNESS_NAMES = {
    "BenchmarkResult", "PerfReport", "check_report", "load_report",
    "run_benchmarks",
}


def __getattr__(name: str):
    # Lazy re-exports: the digest tests import the scenario runners
    # without paying for (or depending on) the harness, and vice versa.
    if name in _HARNESS_NAMES:
        from repro.perf import harness

        return getattr(harness, name)
    if name in ("DIGEST_SCENARIOS", "scenario_digest"):
        from repro.perf import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
