"""Perf CLI: ``python -m repro perf``.

Usage::

    python -m repro perf                    # run catalog, write BENCH_perf.json
    python -m repro perf --quick            # shorter micro workloads, no profiling
    python -m repro perf --check            # regression gate vs BENCH_perf.json
    python -m repro perf --check --quick    # the tier-1 smoke configuration
    python -m repro perf --jobs 4          # macro scenarios on 4 workers
    python -m repro perf engine_churn engine_churn_legacy
    python -m repro perf --profile fleet_slot   # cProfile one benchmark
    python -m repro perf --list

Exit codes: 0 (ran / gate passed), 1 (gate failed), 2 (usage error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.perf.benchmarks import CATALOG
from repro.perf.harness import (
    DEFAULT_TOLERANCE,
    PerfReport,
    check_report,
    load_report,
    run_benchmarks,
)


def _repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


def default_bench_path() -> Path:
    return _repo_root() / "benchmarks" / "BENCH_perf.json"


def _format_text(report: PerfReport) -> str:
    lines = [
        f"{'benchmark':32s} {'kind':5s} {'events':>10s} {'events/s':>12s} "
        f"{'sim/wall':>9s}"
    ]
    for result in report.results.values():
        ratio = (
            f"{result.sim_wall_ratio:9.2f}"
            if result.sim_wall_ratio is not None else f"{'-':>9s}"
        )
        lines.append(
            f"{result.name:32s} {result.kind:5s} {result.events:>10,d} "
            f"{result.events_per_sec:>12,.0f} {ratio}"
        )
        if result.digest is not None:
            lines.append(f"{'':32s}   digest {result.digest[:16]}...")
        if result.subsystem_shares:
            top = ", ".join(
                f"{name}={share:.0%}"
                for name, share in list(result.subsystem_shares.items())[:5]
            )
            lines.append(f"{'':32s}   shares {top}")
    if report.speedups:
        lines.append("speedups: " + ", ".join(
            f"{label} {value:.2f}x" for label, value in report.speedups.items()
        ))
    if report.execution is not None:
        speedup = report.execution.get("parallel_speedup")
        lines.append(
            f"macro fan-out: jobs={report.execution['effective_jobs']} "
            f"over {report.execution['shards']} shard(s)"
            + (f", speedup {speedup:.2f}x" if speedup else "")
        )
    return "\n".join(lines)


#: Rows printed per pstats table in ``--profile NAME`` mode.
PROFILE_STATS_ROWS = 25


def run_profiled(name: str, quick: bool = False) -> int:
    """Run one named benchmark under :mod:`cProfile` and print the pstats
    hot-spot tables (by cumulative and by internal time).

    The benchmark's own wall measurement still goes through
    :func:`repro.perf.timing.wall_ns` (PERF001) — cProfile wraps it, so
    the printed ``wall_seconds`` is the *profiled* figure and must not be
    pasted into BENCH_perf.json.
    """
    import cProfile
    import io
    import pstats

    spec = CATALOG[name]
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        raw = spec.run(quick)
    finally:
        profiler.disable()
    print(
        f"profile: {name} ({spec.kind}) — {raw.events:,d} events in "
        f"{raw.wall_seconds:.3f}s under cProfile"
        + (" [quick]" if quick else "")
    )
    for sort_key, title in (("cumulative", "by cumulative time"),
                            ("tottime", "by internal time")):
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats(sort_key).print_stats(PROFILE_STATS_ROWS)
        print(f"\n--- {title} ---")
        print(stream.getvalue().rstrip())
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.cliopts import harness_options

    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Micro/macro benchmark harness for the Slingshot reproduction.",
        parents=[harness_options()],
    )
    parser.add_argument(
        "names", nargs="*",
        help="benchmark names to run (default: the full catalog; see --list)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="--check rate floor as a fraction of the recorded rate "
             f"(default: {DEFAULT_TOLERANCE}); 0 disables rate checks",
    )
    parser.add_argument(
        "--profile", nargs="?", const=True, default=None, metavar="NAME",
        help="without a value: force the macro profiling pass on "
             "(default: on for full runs, off for --quick); with a "
             "benchmark NAME: run only that benchmark under cProfile and "
             "print the pstats hot-spot tables (writes no BENCH file)",
    )
    parser.add_argument(
        "--no-profile", dest="profile", action="store_const", const=False,
        help="force the macro profiling pass off",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the benchmark catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if args.list:
        for name, spec in CATALOG.items():
            print(f"  {name:32s} {spec.kind:5s} {spec.description}")
        return 0

    if isinstance(args.profile, str):
        if args.profile not in CATALOG:
            print(f"repro perf: unknown benchmark {args.profile!r} (see --list)",
                  file=sys.stderr)
            return 2
        if args.check:
            print("repro perf: --profile NAME and --check are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        return run_profiled(args.profile, quick=args.quick)

    bench_path = args.out if args.out is not None else default_bench_path()

    baseline: Optional[PerfReport] = None
    if args.check:
        try:
            baseline = load_report(bench_path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro perf: cannot load baseline {bench_path}: {exc}",
                  file=sys.stderr)
            return 2

    from repro.cliopts import resolve_jobs

    jobs = resolve_jobs(args.jobs, "repro perf")
    if jobs is None:
        return 2
    args.jobs = jobs

    names: Optional[List[str]] = args.names or None
    if names is None and baseline is not None:
        # Check exactly what the baseline recorded (plus nothing stale).
        names = [name for name in baseline.results if name in CATALOG]
    try:
        report = run_benchmarks(
            names=names, quick=args.quick, profile=args.profile,
            progress=(print if args.format == "text" else None),
            jobs=args.jobs,
        )
    except KeyError as exc:
        print(f"repro perf: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(_format_text(report))

    if args.check:
        assert baseline is not None
        failures = check_report(report, baseline, tolerance=args.tolerance)
        if failures:
            print(f"\nperf check FAILED ({len(failures)} failure(s)):")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"\nperf check passed ({len(baseline.results)} benchmark(s), "
              f"tolerance {args.tolerance:.0%})")
        return 0

    report.write(bench_path)
    print(f"\nwrote {bench_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
