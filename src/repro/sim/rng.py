"""Deterministic random-number streams.

Every stochastic component in the simulation (wireless channel noise, PHY
processing jitter, application pacing, dirty-page behaviour of the VM
migration baseline, ...) draws from its own named stream. Streams are
derived from a single scenario seed with ``numpy``'s SeedSequence spawning,
so adding a new consumer never perturbs the draws seen by existing ones,
and re-running a scenario reproduces the exact same trace.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Registry of named, independently-seeded ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is derived from ``(scenario seed, stream name)``
        only, so the set or order of other streams requested does not
        affect it.
        """
        generator = self._streams.get(name)
        if generator is None:
            name_entropy = [ord(ch) for ch in name]
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=tuple(name_entropy))
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
