"""Deterministic random-number streams.

Every stochastic component in the simulation (wireless channel noise, PHY
processing jitter, application pacing, dirty-page behaviour of the VM
migration baseline, ...) draws from its own named stream. Streams are
derived from a single scenario seed with ``numpy``'s SeedSequence spawning,
so adding a new consumer never perturbs the draws seen by existing ones,
and re-running a scenario reproduces the exact same trace.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

#: Optional observer invoked on every stream acquisition with
#: ``(registry, name)``. Installed by the slinglint ``--sanitize`` pass
#: to cross-check runtime draws against the static ownership map; it
#: must never draw from (or otherwise perturb) the stream — with the
#: default ``None`` the registry behaves exactly as before.
_STREAM_OBSERVER: Optional[Callable[["RngRegistry", str], None]] = None


def set_stream_observer(
    observer: Optional[Callable[["RngRegistry", str], None]],
) -> Optional[Callable[["RngRegistry", str], None]]:
    """Install (or, with ``None``, remove) the global stream observer.

    Returns the previously installed observer so callers can restore it.
    """
    global _STREAM_OBSERVER
    previous = _STREAM_OBSERVER
    _STREAM_OBSERVER = observer
    return previous


class BatchedUniform:
    """Block-prefetching facade over one generator's uniform doubles.

    ``numpy`` fills arrays with the same per-element routine it uses for
    scalar draws, so ``Generator.random(n)`` consumes the bit stream
    exactly like ``n`` scalar ``random()`` calls — prefetching a block
    amortizes the per-call numpy dispatch overhead without changing a
    single value. (Pinned by ``tests/test_sim_engine.py``.)

    The facade must *own* its generator: interleaving direct draws on the
    same generator with batched draws would see values out of order
    relative to the unbatched program.
    """

    __slots__ = ("_gen", "_block", "_buf", "_pos")

    def __init__(self, generator: np.random.Generator, block: int = 256) -> None:
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        self._gen = generator
        self._block = block
        self._buf: List[float] = []
        self._pos = 0

    def random(self) -> float:
        """Next uniform double in [0, 1); identical to ``generator.random()``."""
        if self._pos >= len(self._buf):
            self._buf = self._gen.random(self._block).tolist()
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value


class BatchedIntegers:
    """Block-prefetching facade over one generator's bounded integers.

    Same contract as :class:`BatchedUniform`, for a *fixed* ``[low,
    high)`` bound: ``Generator.integers(low, high, size=n)`` yields the
    same sequence as ``n`` scalar calls, so batching is draw-for-draw
    invisible. Used by the engine's tie-shuffle key stream, where the
    race detector draws one key per scheduled event.
    """

    __slots__ = ("_gen", "_low", "_high", "_block", "_buf", "_pos")

    def __init__(
        self,
        generator: np.random.Generator,
        low: int,
        high: int,
        block: int = 256,
    ) -> None:
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        self._gen = generator
        self._low = low
        self._high = high
        self._block = block
        self._buf: List[int] = []
        self._pos = 0

    def draw(self) -> int:
        """Next integer in [low, high); identical to scalar ``integers()``."""
        if self._pos >= len(self._buf):
            self._buf = self._gen.integers(
                self._low, self._high, size=self._block
            ).tolist()
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value


class RngRegistry:
    """Registry of named, independently-seeded ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is derived from ``(scenario seed, stream name)``
        only, so the set or order of other streams requested does not
        affect it.
        """
        if _STREAM_OBSERVER is not None:
            _STREAM_OBSERVER(self, name)
        generator = self._streams.get(name)
        if generator is None:
            name_entropy = [ord(ch) for ch in name]
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=tuple(name_entropy))
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def batched_uniform(self, name: str, block: int = 256) -> BatchedUniform:
        """A :class:`BatchedUniform` owning the named stream.

        The caller becomes the stream's sole consumer; the values are
        draw-for-draw identical to scalar ``stream(name).random()``
        calls, just cheaper in bulk.
        """
        return BatchedUniform(self.stream(name), block=block)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
