"""Event-driven simulator core.

A :class:`Simulator` owns a priority queue of timestamped callbacks. Every
node in the simulated deployment (RU, switch, PHY servers, L2 server, UEs,
core network) schedules work on the same simulator, so causality across the
whole system is expressed purely in event time.

Design notes
------------
* Time is an ``int`` number of nanoseconds (see :mod:`repro.sim.units`).
* Events at the same timestamp fire in scheduling order (FIFO), which makes
  traces deterministic and reproducible.
* The *tie-order race detector* (``Simulator(tie_shuffle_seed=...)``)
  replaces FIFO tie-breaking with a seeded random permutation of
  same-timestamp events. A correct model produces byte-identical traces
  under any seed; any divergence from the FIFO trace is a real ordering
  race (a component whose semantics depend on scheduling order rather
  than on event time).
* Cancellation is O(1): cancelled events stay in the heap but are skipped
  when popped.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

import numpy as np


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry; ordering is (time, tie, seq) so ties are FIFO
    unless a tie-shuffle key is assigned."""

    time: int
    tie: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`. Calling :meth:`cancel` before the event fires
    prevents the callback from running.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label")

    def __init__(
        self,
        time: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent; safe after firing."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = self.label or getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time} {name} {state}>"


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock.

    ``tie_shuffle_seed`` enables the tie-order race detector: when set,
    events that share a timestamp fire in a seeded-random order instead of
    FIFO. Running the same scenario under two different seeds and diffing
    the traces is a dynamic race check — identical traces mean no component
    depends on same-timestamp tie order.
    """

    def __init__(
        self, start_time: int = 0, tie_shuffle_seed: Optional[int] = None
    ) -> None:
        self._now = start_time
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self.tie_shuffle_seed = tie_shuffle_seed
        self._tie_rng: Optional[np.random.Generator] = (
            None
            if tie_shuffle_seed is None
            else np.random.Generator(np.random.PCG64(tie_shuffle_seed))
        )

    def _tie_key(self) -> int:
        """Tie-break key for a new event: 0 (FIFO) or a seeded random draw."""
        if self._tie_rng is None:
            return 0
        return int(self._tie_rng.integers(0, 1 << 32))

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.at(self._now + delay, callback, *args, label=label)

    def at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; clock is already at {self._now} ns"
            )
        handle = EventHandle(time, callback, args, label=label)
        entry = _QueueEntry(
            time=time, tie=self._tie_key(), seq=next(self._seq), handle=handle
        )
        heapq.heappush(self._queue, entry)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event. Returns False if queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                continue
            self._now = entry.time
            handle.fired = True
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run_until(self, end_time: int) -> None:
        """Run all events with timestamps <= ``end_time``; clock ends at ``end_time``.

        Events scheduled exactly at ``end_time`` do fire.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is in the past (now={self._now})"
            )
        self._running = True
        try:
            while self._queue and self._running:
                head_time = self._peek_time()
                if head_time is None or head_time > end_time:
                    break
                self.step()
        finally:
            self._running = False
        if self._now < end_time:
            self._now = end_time

    def run_for(self, duration: int) -> None:
        """Run the simulation for ``duration`` ns of simulated time."""
        self.run_until(self._now + duration)

    def run(self) -> None:
        """Run until the event queue drains completely."""
        self._running = True
        try:
            while self._queue and self._running:
                self.step()
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a ``run_until``/``run`` loop after the current event returns."""
        self._running = False

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, skipping cancelled entries."""
        while self._queue:
            entry = self._queue[0]
            if entry.handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return entry.time
        return None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for entry in self._queue if not entry.handle.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now}ns pending={self.pending_events}>"
