"""Event-driven simulator core.

A :class:`Simulator` owns a priority queue of timestamped callbacks. Every
node in the simulated deployment (RU, switch, PHY servers, L2 server, UEs,
core network) schedules work on the same simulator, so causality across the
whole system is expressed purely in event time.

Design notes
------------
* Time is an ``int`` number of nanoseconds (see :mod:`repro.sim.units`).
* Events at the same timestamp fire in scheduling order (FIFO), which makes
  traces deterministic and reproducible.
* The *tie-order race detector* (``Simulator(tie_shuffle_seed=...)``)
  replaces FIFO tie-breaking with a seeded random permutation of
  same-timestamp events. A correct model produces byte-identical traces
  under any seed; any divergence from the FIFO trace is a real ordering
  race (a component whose semantics depend on scheduling order rather
  than on event time).
* Heap entries are plain ``(time, tie, seq, handle)`` tuples. ``seq`` is
  unique per simulator, so tuple comparison never reaches the handle and
  ordering is exactly (time, tie, seq) — FIFO on ties unless a
  tie-shuffle key is assigned. Tuples compare in C, which is the single
  biggest win over the previous dataclass entries on churn-heavy runs.
* Cancellation is O(1): cancelled events stay in the heap but are skipped
  when popped. To keep the heap *bounded* under heavy cancel/reschedule
  churn (e.g. a watchdog re-armed every response), the simulator counts
  live cancellations and compacts the heap once cancelled entries exceed
  ``compaction_threshold`` **and** outnumber live ones — so compaction
  cost stays amortized O(1) per cancel while the queue never holds more
  than ~half garbage.
* ``_pop`` is the single point through which every fired event leaves the
  queue; the perf sampler (:mod:`repro.perf.sampler`) hooks it to build
  per-subsystem time shares without instrumenting callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.sim.rng import BatchedIntegers


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulator (e.g. scheduling in the past)."""


#: Heap entry shape: (time, tie, seq, handle).
_QueueEntry = Tuple[int, int, int, "EventHandle"]


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`. Calling :meth:`cancel` before the event fires
    prevents the callback from running.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label", "_sim")

    def __init__(
        self,
        time: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        #: Owning simulator; set by Simulator.at for compaction accounting.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent; safe after firing."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = self.label or getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time} {name} {state}>"


class SimClock:
    """Picklable zero-argument clock callable bound to one simulator.

    Components that need a ``now_fn``-style callback (e.g. RLC
    reassembly timers) must hold one of these rather than a
    ``lambda: sim.now`` closure: closures cannot be pickled, and the
    checkpoint subsystem snapshots whole cells by pickling the object
    graph.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    def __call__(self) -> int:
        return self.sim.now


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock.

    ``tie_shuffle_seed`` enables the tie-order race detector: when set,
    events that share a timestamp fire in a seeded-random order instead of
    FIFO. Running the same scenario under two different seeds and diffing
    the traces is a dynamic race check — identical traces mean no component
    depends on same-timestamp tie order.

    ``compaction_threshold`` bounds heap garbage: once at least that many
    cancelled entries sit in the queue *and* they outnumber live entries,
    the queue is rebuilt without them (``compactions`` counts rebuilds).
    """

    def __init__(
        self,
        start_time: int = 0,
        tie_shuffle_seed: Optional[int] = None,
        compaction_threshold: int = 64,
    ) -> None:
        if compaction_threshold < 1:
            raise ValueError(
                f"compaction_threshold must be >= 1, got {compaction_threshold}"
            )
        self._now = start_time
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self.compaction_threshold = compaction_threshold
        #: Number of cancelled-entry heap rebuilds performed so far.
        self.compactions = 0
        #: Cancelled entries currently sitting in the heap.
        self._cancelled_in_queue = 0
        self.tie_shuffle_seed = tie_shuffle_seed
        self._tie_stream: Optional[BatchedIntegers] = (
            None
            if tie_shuffle_seed is None
            else BatchedIntegers(
                np.random.Generator(np.random.PCG64(tie_shuffle_seed)),
                0,
                1 << 32,
            )
        )

    def _tie_key(self) -> int:
        """Tie-break key for a new event: 0 (FIFO) or a seeded random draw."""
        if self._tie_stream is None:
            return 0
        return self._tie_stream.draw()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.at(self._now + delay, callback, *args, label=label)

    def at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; clock is already at {self._now} ns"
            )
        handle = EventHandle(time, callback, args, label=label)
        handle._sim = self
        heapq.heappush(
            self._queue, (time, self._tie_key(), next(self._seq), handle)
        )
        return handle

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel` while the entry is queued."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= self.compaction_threshold
            and self._cancelled_in_queue * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heap order is a total order on (time, tie, seq) with unique seq,
        so re-heapifying the surviving entries reproduces the exact same
        pop sequence — compaction is invisible to execution order.
        """
        self._queue = [entry for entry in self._queue if not entry[3].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop(self, limit: Optional[int] = None) -> Optional[_QueueEntry]:
        """Pop the next live entry with time <= ``limit`` (None = no limit).

        Skips (and drops) cancelled entries; leaves a live head beyond
        ``limit`` in place and returns None. Every event that fires flows
        through here — the perf sampler wraps this method to attribute
        wall time to subsystems.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            if limit is not None and head[0] > limit:
                return None
            return heapq.heappop(queue)
        return None

    def step(self) -> bool:
        """Run the single next pending event. Returns False if queue is empty."""
        entry = self._pop()
        if entry is None:
            return False
        handle = entry[3]
        self._now = entry[0]
        handle.fired = True
        self._events_processed += 1
        handle.callback(*handle.args)
        return True

    def run_until(self, end_time: int) -> None:
        """Run all events with timestamps <= ``end_time``; clock ends at ``end_time``.

        Events scheduled exactly at ``end_time`` do fire.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is in the past (now={self._now})"
            )
        self._running = True
        pop = self._pop
        try:
            while self._running:
                entry = pop(end_time)
                if entry is None:
                    break
                handle = entry[3]
                self._now = entry[0]
                handle.fired = True
                self._events_processed += 1
                handle.callback(*handle.args)
        finally:
            self._running = False
        if self._now < end_time:
            self._now = end_time

    def run_for(self, duration: int) -> None:
        """Run the simulation for ``duration`` ns of simulated time."""
        self.run_until(self._now + duration)

    def run(self) -> None:
        """Run until the event queue drains completely."""
        self._running = True
        pop = self._pop
        try:
            while self._running:
                entry = pop()
                if entry is None:
                    break
                handle = entry[3]
                self._now = entry[0]
                handle.fired = True
                self._events_processed += 1
                handle.callback(*handle.args)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a ``run_until``/``run`` loop after the current event returns."""
        self._running = False

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, skipping cancelled entries."""
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            return head[0]
        return None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def queued_entries(self) -> int:
        """Raw heap size including cancelled garbage (diagnostics/tests)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now}ns pending={self.pending_events}>"
