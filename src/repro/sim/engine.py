"""Event-driven simulator core.

A :class:`Simulator` owns a priority queue of timestamped callbacks. Every
node in the simulated deployment (RU, switch, PHY servers, L2 server, UEs,
core network) schedules work on the same simulator, so causality across the
whole system is expressed purely in event time.

Design notes
------------
* Time is an ``int`` number of nanoseconds (see :mod:`repro.sim.units`).
* Events at the same timestamp fire in scheduling order (FIFO), which makes
  traces deterministic and reproducible.
* The *tie-order race detector* (``Simulator(tie_shuffle_seed=...)``)
  replaces FIFO tie-breaking with a seeded random permutation of
  same-timestamp events. A correct model produces byte-identical traces
  under any seed; any divergence from the FIFO trace is a real ordering
  race (a component whose semantics depend on scheduling order rather
  than on event time).
* Heap entries are plain ``(time, tie, seq, handle)`` tuples. ``seq`` is
  unique per simulator, so tuple comparison never reaches the handle and
  ordering is exactly (time, tie, seq) — FIFO on ties unless a
  tie-shuffle key is assigned. Tuples compare in C, which is the single
  biggest win over the previous dataclass entries on churn-heavy runs.
* Cancellation is O(1): cancelled events stay in the heap but are skipped
  when popped. To keep the heap *bounded* under heavy cancel/reschedule
  churn (e.g. a watchdog re-armed every response), the simulator counts
  live cancellations and compacts the heap once cancelled entries exceed
  ``compaction_threshold`` **and** outnumber live ones — so compaction
  cost stays amortized O(1) per cancel while the queue never holds more
  than ~half garbage.
* Strictly periodic work (slot ticks, FAPI timers, heartbeats, detector
  ticks) rides a second lane: the **slot wheel**, a calendar queue keyed
  on absolute integer-ns fire times (:meth:`Simulator.schedule_periodic`).
  Each periodic event keeps exactly one queued occurrence; when it pops,
  the engine re-arms the next occurrence with an O(1) bucket append
  instead of an O(log n) heap push. The two lanes merge at pop time under
  the identical ``(time, tie, seq)`` total order — the engine draws the
  re-arm's tie/seq keys immediately before invoking the callback, exactly
  where the old self-rescheduling call sites drew them, so traces (and
  the tie-order race detector) are bit-identical across lanes.
* Wheel garbage (occurrences orphaned by :meth:`PeriodicHandle.cancel` /
  ``re_arm`` churn) is bounded by the same policy as the heap: epoch
  tokens invalidate stale occurrences in O(1), and the wheel is compacted
  once garbage exceeds ``compaction_threshold`` and outnumbers live
  occurrences (``wheel_compactions`` counts rebuilds).
* ``_pop`` is the single point through which every fired event leaves
  either lane; the perf sampler (:mod:`repro.perf.sampler`) hooks it to
  build per-subsystem time shares without instrumenting callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.rng import BatchedIntegers


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulator (e.g. scheduling in the past)."""


#: Heap entry shape: (time, tie, seq, handle).
_QueueEntry = Tuple[int, int, int, "EventHandle"]


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.at`. Calling :meth:`cancel` before the event fires
    prevents the callback from running.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "label", "_sim")

    def __init__(
        self,
        time: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label
        #: Owning simulator; set by Simulator.at for compaction accounting.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent; safe after firing.

        Cancelling an event that already fired (or was already cancelled)
        is a cheap no-op counted in :attr:`Simulator.cancel_noops` — it
        never plants a tombstone in the queue.
        """
        if self.cancelled or self.fired:
            if self._sim is not None:
                self._sim.cancel_noops += 1
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = self.label or getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time} {name} {state}>"


class PeriodicHandle:
    """Handle to a wheel-lane periodic event (:meth:`Simulator.schedule_periodic`).

    A periodic event keeps exactly one queued *occurrence* at a time; the
    engine re-arms the next occurrence when the current one pops. ``epoch``
    is a validity token: :meth:`cancel` bumps it, orphaning any queued
    occurrence in O(1) (the stale bucket entry is skipped and reclaimed
    lazily, exactly like a cancelled heap entry). :meth:`re_arm` revives a
    cancelled handle with a fresh occurrence — the cancel/re-arm pair is
    the wheel-lane equivalent of the heap's cancel/reschedule churn.
    """

    __slots__ = (
        "period",
        "callback",
        "args",
        "cancelled",
        "fired",
        "label",
        "epoch",
        "next_time",
        "_sim",
    )

    def __init__(
        self,
        period: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.period = period
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True once any occurrence has fired (kept for run-loop symmetry
        #: with :class:`EventHandle`; a fired periodic is still pending).
        self.fired = False
        self.label = label
        #: Validity token: occurrences enqueue the epoch current at arm
        #: time, and a mismatch at pop time means the occurrence is stale.
        self.epoch = 0
        #: Absolute fire time of the queued occurrence (None if cancelled).
        self.next_time: Optional[int] = None
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Stop the periodic: orphan the queued occurrence in O(1).

        Idempotent — a repeated cancel is a no-op counted in
        :attr:`Simulator.cancel_noops`, mirroring the heap lane.
        """
        if self.cancelled:
            if self._sim is not None:
                self._sim.cancel_noops += 1
            return
        self.cancelled = True
        self.epoch += 1
        self.next_time = None
        if self._sim is not None:
            self._sim._wheel_note_cancel()

    def re_arm(
        self,
        *,
        start_offset: Optional[int] = None,
        first_at: Optional[int] = None,
    ) -> None:
        """Revive a cancelled periodic with a fresh first occurrence.

        The first fire time is ``first_at`` if given, else ``now +
        start_offset`` (default ``now + period``). Re-arming a live handle
        is an error — cancel it first.
        """
        if self._sim is None:
            raise SimulationError("periodic handle is not bound to a simulator")
        if not self.cancelled:
            raise SimulationError(
                f"cannot re-arm live periodic {self.label or self.callback!r}; "
                "cancel it first"
            )
        sim = self._sim
        if first_at is None:
            offset = self.period if start_offset is None else start_offset
            first_at = sim._now + offset
        if first_at < sim._now:
            raise SimulationError(
                f"cannot re-arm at t={first_at} ns; clock is already at {sim._now} ns"
            )
        self.cancelled = False
        self.next_time = first_at
        sim._wheel_arm(self, first_at)

    @property
    def pending(self) -> bool:
        """True while the periodic is armed (cancel is the only way out)."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else f"next={self.next_time}"
        name = self.label or getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<PeriodicHandle period={self.period} {name} {state}>"


class SimClock:
    """Picklable zero-argument clock callable bound to one simulator.

    Components that need a ``now_fn``-style callback (e.g. RLC
    reassembly timers) must hold one of these rather than a
    ``lambda: sim.now`` closure: closures cannot be pickled, and the
    checkpoint subsystem snapshots whole cells by pickling the object
    graph.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    def __call__(self) -> int:
        return self.sim.now


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock.

    ``tie_shuffle_seed`` enables the tie-order race detector: when set,
    events that share a timestamp fire in a seeded-random order instead of
    FIFO. Running the same scenario under two different seeds and diffing
    the traces is a dynamic race check — identical traces mean no component
    depends on same-timestamp tie order.

    ``compaction_threshold`` bounds heap garbage: once at least that many
    cancelled entries sit in the queue *and* they outnumber live entries,
    the queue is rebuilt without them (``compactions`` counts rebuilds).
    """

    def __init__(
        self,
        start_time: int = 0,
        tie_shuffle_seed: Optional[int] = None,
        compaction_threshold: int = 64,
    ) -> None:
        if compaction_threshold < 1:
            raise ValueError(
                f"compaction_threshold must be >= 1, got {compaction_threshold}"
            )
        self._now = start_time
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self.compaction_threshold = compaction_threshold
        #: Number of cancelled-entry heap rebuilds performed so far.
        self.compactions = 0
        #: Cancelled entries currently sitting in the heap.
        self._cancelled_in_queue = 0
        #: Slot-wheel lane: fire time -> [consume_idx, entries] where
        #: entries is a (tie, seq, handle, epoch) list sorted by (tie, seq).
        self._wheel: Dict[int, List[Any]] = {}
        #: Min-heap of bucket fire times (lazily pruned as buckets drain).
        self._wheel_times: List[int] = []
        #: Live (armed, epoch-valid) occurrences queued in the wheel.
        self._wheel_size = 0
        #: Stale occurrences (cancel/re-arm churn) awaiting reclamation.
        self._wheel_garbage = 0
        #: Number of stale-occurrence wheel rebuilds performed so far.
        self.wheel_compactions = 0
        #: Cancels that found nothing to do (already fired / already
        #: cancelled), across both lanes. Diagnostic only.
        self.cancel_noops = 0
        self.tie_shuffle_seed = tie_shuffle_seed
        self._tie_stream: Optional[BatchedIntegers] = (
            None
            if tie_shuffle_seed is None
            else BatchedIntegers(
                np.random.Generator(np.random.PCG64(tie_shuffle_seed)),
                0,
                1 << 32,
            )
        )

    def _tie_key(self) -> int:
        """Tie-break key for a new event: 0 (FIFO) or a seeded random draw."""
        if self._tie_stream is None:
            return 0
        return self._tie_stream.draw()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.at(self._now + delay, callback, *args, label=label)

    def at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ns; clock is already at {self._now} ns"
            )
        handle = EventHandle(time, callback, args, label=label)
        handle._sim = self
        heapq.heappush(
            self._queue, (time, self._tie_key(), next(self._seq), handle)
        )
        return handle

    def schedule_periodic(
        self,
        period: int,
        callback: Callable[..., Any],
        *args: Any,
        start_offset: Optional[int] = None,
        first_at: Optional[int] = None,
        label: str = "",
    ) -> PeriodicHandle:
        """Schedule ``callback(*args)`` every ``period`` ns on the wheel lane.

        The first occurrence fires at ``first_at`` if given, else at
        ``now + start_offset`` (default ``now + period``). Each pop re-arms
        the next occurrence at ``fire_time + period`` with an O(1) bucket
        append — the structural win over self-rescheduling heap events.
        The re-arm draws its (tie, seq) keys immediately before the
        callback runs, at the exact point the equivalent self-rescheduling
        callback would have drawn them, so traces are bit-identical across
        lanes (including under ``tie_shuffle_seed``).
        """
        if period < 1:
            raise SimulationError(f"periodic period must be >= 1 ns, got {period}")
        if first_at is None:
            offset = period if start_offset is None else start_offset
            first_at = self._now + offset
        if first_at < self._now:
            raise SimulationError(
                f"cannot schedule at t={first_at} ns; clock is already at {self._now} ns"
            )
        handle = PeriodicHandle(period, callback, args, label=label)
        handle._sim = self
        handle.next_time = first_at
        self._wheel_arm(handle, first_at)
        return handle

    # ------------------------------------------------------------------
    # Wheel lane internals
    # ------------------------------------------------------------------
    def _wheel_arm(self, handle: PeriodicHandle, time: int) -> None:
        """Enqueue one occurrence of ``handle`` at ``time``.

        Draws the (tie, seq) ordering keys here — arm order is draw order,
        matching :meth:`at` exactly.
        """
        entry = (self._tie_key(), next(self._seq), handle, handle.epoch)
        bucket = self._wheel.get(time)
        if bucket is None:
            self._wheel[time] = [0, [entry]]
            heapq.heappush(self._wheel_times, time)
        else:
            entries = bucket[1]
            last = entries[-1]
            # seq is monotonic, so FIFO arms always append; a tie-shuffle
            # draw may land anywhere at or after the consume index.
            if entry[0] > last[0] or (entry[0] == last[0] and entry[1] > last[1]):
                entries.append(entry)
            else:
                insort(entries, entry, lo=bucket[0])
        self._wheel_size += 1

    def _wheel_head(self) -> Optional[Tuple[int, int, int, PeriodicHandle]]:
        """Earliest live wheel occurrence as (time, tie, seq, handle),
        left in place. Skips and reclaims stale occurrences and drained
        buckets on the way."""
        times = self._wheel_times
        wheel = self._wheel
        while times:
            time = times[0]
            bucket = wheel.get(time)
            if bucket is None:
                heapq.heappop(times)
                continue
            idx, entries = bucket
            end = len(entries)
            while idx < end:
                tie, seq, handle, epoch = entries[idx]
                if handle.cancelled or handle.epoch != epoch:
                    idx += 1
                    self._wheel_garbage -= 1
                    continue
                bucket[0] = idx
                return (time, tie, seq, handle)
            bucket[0] = idx
            del wheel[time]
            heapq.heappop(times)
        return None

    def _wheel_consume(self, head: Tuple[int, int, int, PeriodicHandle]) -> _QueueEntry:
        """Dequeue the occurrence returned by :meth:`_wheel_head` and
        re-arm the handle's next occurrence (drawing its tie/seq keys now,
        immediately before the caller invokes the callback)."""
        time, tie, seq, handle = head
        self._wheel[time][0] += 1
        self._wheel_size -= 1
        next_time = time + handle.period
        handle.next_time = next_time
        self._wheel_arm(handle, next_time)
        return (time, tie, seq, handle)

    def _wheel_note_cancel(self) -> None:
        """Called by :meth:`PeriodicHandle.cancel` while an occurrence is queued."""
        self._wheel_size -= 1
        self._wheel_garbage += 1
        if (
            self._wheel_garbage >= self.compaction_threshold
            and self._wheel_garbage >= self._wheel_size
        ):
            self._wheel_compact()

    def _wheel_compact(self) -> None:
        """Rebuild the wheel without stale occurrences.

        Bucket order is (tie, seq) with unique seq, so filtering preserves
        the exact pop sequence — compaction is invisible to execution
        order, mirroring the heap's :meth:`_compact`.
        """
        new_wheel: Dict[int, List[Any]] = {}
        times: List[int] = []
        for time, (idx, entries) in self._wheel.items():
            live = [
                entry
                for entry in entries[idx:]
                if not entry[2].cancelled and entry[2].epoch == entry[3]
            ]
            if live:
                new_wheel[time] = [0, live]
                times.append(time)
        heapq.heapify(times)
        self._wheel = new_wheel
        self._wheel_times = times
        self._wheel_garbage = 0
        self.wheel_compactions += 1

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel` while the entry is queued."""
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= self.compaction_threshold
            and self._cancelled_in_queue * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heap order is a total order on (time, tie, seq) with unique seq,
        so re-heapifying the surviving entries reproduces the exact same
        pop sequence — compaction is invisible to execution order.
        """
        self._queue = [entry for entry in self._queue if not entry[3].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop(self, limit: Optional[int] = None) -> Optional[_QueueEntry]:
        """Pop the next live entry with time <= ``limit`` (None = no limit).

        Merges the heap and wheel lanes under the shared (time, tie, seq)
        total order; a popped wheel occurrence re-arms its successor
        before returning. Skips (and drops) cancelled entries; leaves a
        live head beyond ``limit`` in place and returns None. Every event
        that fires — from either lane — flows through here; the perf
        sampler wraps this method to attribute wall time to subsystems.
        """
        queue = self._queue
        if self._wheel_size:
            return self._pop_merged(limit)
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            if limit is not None and head[0] > limit:
                return None
            return heapq.heappop(queue)
        return None

    def _pop_merged(self, limit: Optional[int]) -> Optional[_QueueEntry]:
        """Two-lane pop: compare the live heap head with the live wheel
        head and dequeue whichever sorts first on (time, tie, seq)."""
        queue = self._queue
        heap_head: Optional[_QueueEntry] = None
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            heap_head = head
            break
        wheel_head = self._wheel_head()
        if wheel_head is None:
            if heap_head is None:
                return None
            if limit is not None and heap_head[0] > limit:
                return None
            return heapq.heappop(queue)
        if heap_head is not None and heap_head[:3] <= wheel_head[:3]:
            if limit is not None and heap_head[0] > limit:
                return None
            return heapq.heappop(queue)
        if limit is not None and wheel_head[0] > limit:
            return None
        return self._wheel_consume(wheel_head)

    def step(self) -> bool:
        """Run the single next pending event. Returns False if queue is empty."""
        entry = self._pop()
        if entry is None:
            return False
        handle = entry[3]
        self._now = entry[0]
        handle.fired = True
        self._events_processed += 1
        handle.callback(*handle.args)
        return True

    def run_until(self, end_time: int) -> None:
        """Run all events with timestamps <= ``end_time``; clock ends at ``end_time``.

        Events scheduled exactly at ``end_time`` do fire.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is in the past (now={self._now})"
            )
        self._running = True
        pop = self._pop
        try:
            while self._running:
                entry = pop(end_time)
                if entry is None:
                    break
                handle = entry[3]
                self._now = entry[0]
                handle.fired = True
                self._events_processed += 1
                handle.callback(*handle.args)
        finally:
            self._running = False
        if self._now < end_time:
            self._now = end_time

    def run_for(self, duration: int) -> None:
        """Run the simulation for ``duration`` ns of simulated time."""
        self.run_until(self._now + duration)

    def run(self) -> None:
        """Run until the event queue drains completely."""
        self._running = True
        pop = self._pop
        try:
            while self._running:
                entry = pop()
                if entry is None:
                    break
                handle = entry[3]
                self._now = entry[0]
                handle.fired = True
                self._events_processed += 1
                handle.callback(*handle.args)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a ``run_until``/``run`` loop after the current event returns."""
        self._running = False

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next live event in either lane."""
        heap_time: Optional[int] = None
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            heap_time = head[0]
            break
        if not self._wheel_size:
            return heap_time
        wheel_head = self._wheel_head()
        if wheel_head is None:
            return heap_time
        if heap_time is None:
            return wheel_head[0]
        return min(heap_time, wheel_head[0])

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events queued across both lanes."""
        return len(self._queue) - self._cancelled_in_queue + self._wheel_size

    @property
    def queued_entries(self) -> int:
        """Raw heap size including cancelled garbage (diagnostics/tests)."""
        return len(self._queue)

    @property
    def wheel_pending(self) -> int:
        """Live periodic occurrences queued in the wheel lane."""
        return self._wheel_size

    @property
    def wheel_entries(self) -> int:
        """Wheel occupancy including stale garbage (diagnostics/tests)."""
        return self._wheel_size + self._wheel_garbage

    @property
    def wheel_buckets(self) -> int:
        """Distinct fire-time buckets currently held by the wheel."""
        return len(self._wheel)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now}ns pending={self.pending_events}>"
