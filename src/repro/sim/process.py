"""Process helpers layered on the event engine.

A :class:`Process` is a named component bound to a simulator — all vRAN
nodes (RU, PHY, L2, Orion, switch, UE, ...) derive from it. A
:class:`PeriodicProcess` additionally ticks at a fixed period, which is the
natural shape for slot-driven RAN components.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import EventHandle, PeriodicHandle, Simulator


class Process:
    """A named simulation component bound to a :class:`Simulator`."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self.sim.now

    def call_after(self, delay: int, callback, *args, label: str = "") -> EventHandle:
        """Schedule a callback ``delay`` ns from now, labelled with this process."""
        return self.sim.schedule(
            delay, callback, *args, label=label or f"{self.name}.{callback.__name__}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class PeriodicProcess(Process):
    """A process that invokes :meth:`on_tick` every ``period`` ns.

    Subclasses override :meth:`on_tick`. The tick counter starts at zero and
    increments by one per period, so slot-driven components can derive their
    slot number directly from it.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        period: int,
        start_offset: int = 0,
    ) -> None:
        super().__init__(sim, name)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.tick_count = 0
        self._stopped = False
        self._next_tick: Optional[PeriodicHandle] = sim.schedule_periodic(
            period, self._tick, start_offset=start_offset, label=f"{name}.tick"
        )

    def stop(self) -> None:
        """Stop ticking; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._next_tick is not None:
            self._next_tick.cancel()
            self._next_tick = None

    @property
    def running(self) -> bool:
        """True while the process continues to tick."""
        return not self._stopped

    def _tick(self) -> None:
        if self._stopped:
            return
        tick = self.tick_count
        self.tick_count += 1
        self.on_tick(tick)

    def on_tick(self, tick: int) -> None:
        """Handle one period; ``tick`` counts from zero. Override in subclasses."""
        raise NotImplementedError
