"""Time units for the simulator.

The simulator clock counts integer nanoseconds. Using integers keeps event
ordering exact (no floating-point ties) and makes TTI arithmetic trivial:
one 30 kHz-subcarrier-spacing slot is exactly ``500 * US`` nanoseconds.
"""

#: One nanosecond (the base tick).
NS = 1

#: One microsecond in nanoseconds.
US = 1_000

#: One millisecond in nanoseconds.
MS = 1_000_000

#: One second in nanoseconds.
SECOND = 1_000_000_000


def us_to_ns(us: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(us * US)


def ms_to_ns(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(ms * MS)


def s_to_ns(seconds: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(seconds * SECOND)


def ns_to_us(ns: int) -> float:
    """Convert nanoseconds to (float) microseconds."""
    return ns / US


def ns_to_ms(ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return ns / MS


def ns_to_s(ns: int) -> float:
    """Convert nanoseconds to (float) seconds."""
    return ns / SECOND
