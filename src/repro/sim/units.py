"""Time units for the simulator.

The simulator clock counts integer nanoseconds. Using integers keeps event
ordering exact (no floating-point ties) and makes TTI arithmetic trivial:
one 30 kHz-subcarrier-spacing slot is exactly ``500 * US`` nanoseconds.
"""

#: One nanosecond (the base tick).
NS = 1

#: One microsecond in nanoseconds.
US = 1_000

#: One millisecond in nanoseconds.
MS = 1_000_000

#: One second in nanoseconds.
SECOND = 1_000_000_000


def us_to_ns(us: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(us * US)


def ms_to_ns(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(ms * MS)


def s_to_ns(seconds: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(seconds * SECOND)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (alias of :func:`s_to_ns`).

    The name reads as a unit annotation at API boundaries —
    ``run_for_ns(cell, seconds(2.5))`` — which is where experiments hand
    their float ``duration_s`` parameters to the integer-ns engine.
    """
    return round(value * SECOND)


def _require_int_ns(value: int, what: str) -> int:
    # Exact type check: bool is an int subclass but never a duration,
    # and float durations are precisely the bug this boundary rejects.
    if type(value) is not int:
        raise TypeError(
            f"{what} must be integer nanoseconds, got "
            f"{type(value).__name__}: {value!r}"
        )
    return value


def run_for_ns(target, duration_ns: int):
    """Advance ``target`` (anything with ``run_for``) by integer ns.

    The explicit boundary helper for float-seconds experiment code:
    ``run_for_ns(cell, seconds(duration_s))``. Rejects non-int durations
    at runtime; slinglint TIM003 flags float-seconds identifiers flowing
    in statically.
    """
    return target.run_for(_require_int_ns(duration_ns, "duration_ns"))


def run_until_ns(target, time_ns: int):
    """Run ``target`` (anything with ``run_until``) to an integer-ns time."""
    return target.run_until(_require_int_ns(time_ns, "time_ns"))


def ns_to_us(ns: int) -> float:
    """Convert nanoseconds to (float) microseconds."""
    return ns / US


def ns_to_ms(ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return ns / MS


def ns_to_s(ns: int) -> float:
    """Convert nanoseconds to (float) seconds."""
    return ns / SECOND
