"""Discrete-event simulation substrate.

Every component of the reproduced vRAN (radio unit, PHY processes, L2,
programmable switch, UEs, core network, application server) runs as an
event-driven process on a shared :class:`~repro.sim.engine.Simulator`.

Simulated time is an integer count of nanoseconds; helper constants for
common durations live in :mod:`repro.sim.units`.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import Process, PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder, TraceEvent
from repro.sim.units import (
    NS,
    US,
    MS,
    SECOND,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
    run_for_ns,
    run_until_ns,
    s_to_ns,
    seconds,
    us_to_ns,
    ms_to_ns,
)

__all__ = [
    "EventHandle",
    "Simulator",
    "Process",
    "PeriodicProcess",
    "RngRegistry",
    "TraceRecorder",
    "TraceEvent",
    "NS",
    "US",
    "MS",
    "SECOND",
    "ns_to_us",
    "ns_to_ms",
    "ns_to_s",
    "us_to_ns",
    "ms_to_ns",
    "s_to_ns",
    "seconds",
    "run_for_ns",
    "run_until_ns",
]
