"""Structured trace recording.

Components emit :class:`TraceEvent` records into a shared
:class:`TraceRecorder`; the experiment harnesses query the recorder to build
the time series behind each figure (e.g. per-10 ms throughput bins, ping
samples, failure-detection timestamps).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a timestamp, a category, and free-form fields."""

    time: int
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Append-only store of trace events with category indexing."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._by_category: Dict[str, List[TraceEvent]] = {}
        self.enabled = True

    def record(self, time: int, category: str, **fields: Any) -> None:
        """Append an event; no-op when the recorder is disabled."""
        if not self.enabled:
            return
        event = TraceEvent(time=time, category=category, fields=fields)
        self._events.append(event)
        self._by_category.setdefault(category, []).append(event)

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All events, or those of one category, in emission order."""
        if category is None:
            return list(self._events)
        return list(self._by_category.get(category, []))

    def iter_events(self, category: str) -> Iterator[TraceEvent]:
        """Iterate events of one category without copying."""
        return iter(self._by_category.get(category, []))

    def count(self, category: str) -> int:
        """Number of events recorded under ``category``."""
        return len(self._by_category.get(category, []))

    def categories(self) -> List[str]:
        """Sorted list of categories seen so far."""
        return sorted(self._by_category)

    def last(self, category: str) -> Optional[TraceEvent]:
        """Most recent event of a category, or None."""
        events = self._by_category.get(category)
        return events[-1] if events else None

    def canonical_events(self) -> List[TraceEvent]:
        """Events in canonical order: sorted by (time, category, fields).

        Same-timestamp events with no causal edge between them are
        concurrent — the engine may serialize them in any order (and the
        ``tie_shuffle_seed`` race-detector mode deliberately permutes
        them). Canonical order factors that arbitrary serialization out,
        so two runs are behaviourally identical iff their canonical
        traces are byte-identical. A real ordering race changes event
        *content* or *membership*, which canonical order still exposes.
        """
        return sorted(
            self._events,
            key=lambda e: (e.time, e.category, repr(sorted(e.fields.items()))),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical trace; equal digests ⇔ identical runs."""
        hasher = hashlib.sha256()
        for event in self.canonical_events():
            line = f"{event.time} {event.category} {sorted(event.fields.items())!r}\n"
            hasher.update(line.encode("utf-8"))
        return hasher.hexdigest()

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self._by_category.clear()

    def __len__(self) -> int:
        return len(self._events)
