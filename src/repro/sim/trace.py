"""Structured trace recording.

Components emit :class:`TraceEvent` records into a shared
:class:`TraceRecorder`; the experiment harnesses query the recorder to build
the time series behind each figure (e.g. per-10 ms throughput bins, ping
samples, failure-detection timestamps).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a timestamp, a category, and free-form fields."""

    time: int
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """Append-only store of trace events with category indexing.

    ``window_ns`` enables the *bounded-memory* digest mode used by soak
    runs: the canonical trace is partitioned into fixed windows
    ``[k*window_ns, (k+1)*window_ns)`` and the digest is a hash chain
    folded over the non-empty windows in time order. Complete windows
    can then be evicted (:meth:`evict_before`): their fold is absorbed
    into a small picklable chain value, their events are dropped, and
    :meth:`rolling_digest` still equals the digest a never-evicting
    recorder with the same ``window_ns`` would produce over the full
    trace. With the default ``window_ns=None`` the whole trace is one
    window and the chain seed is empty, so the digest is byte-identical
    to the historical flat SHA-256 — recorded golden digests are
    unaffected.
    """

    def __init__(self, window_ns: Optional[int] = None) -> None:
        if window_ns is not None and window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self._events: List[TraceEvent] = []
        self._by_category: Dict[str, List[TraceEvent]] = {}
        self.enabled = True
        self.window_ns = window_ns
        #: Hex chain over evicted windows ("" until the first eviction).
        self._chain = ""
        #: Events absorbed into the chain and dropped.
        self._evicted_events = 0
        #: Everything before this time has been folded away; recording
        #: an event older than this would silently corrupt the digest.
        self._evicted_horizon_ns = 0

    def record(self, time: int, category: str, **fields: Any) -> None:
        """Append an event; no-op when the recorder is disabled."""
        if not self.enabled:
            return
        if time < self._evicted_horizon_ns:
            raise ValueError(
                f"cannot record at t={time} ns: windows before "
                f"{self._evicted_horizon_ns} ns have been evicted"
            )
        event = TraceEvent(time=time, category=category, fields=fields)
        self._events.append(event)
        self._by_category.setdefault(category, []).append(event)

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All events, or those of one category, in emission order."""
        if category is None:
            return list(self._events)
        return list(self._by_category.get(category, []))

    def iter_events(self, category: str) -> Iterator[TraceEvent]:
        """Iterate events of one category without copying."""
        return iter(self._by_category.get(category, []))

    def count(self, category: str) -> int:
        """Number of events recorded under ``category``."""
        return len(self._by_category.get(category, []))

    def categories(self) -> List[str]:
        """Sorted list of categories seen so far."""
        return sorted(self._by_category)

    def last(self, category: str) -> Optional[TraceEvent]:
        """Most recent event of a category, or None."""
        events = self._by_category.get(category)
        return events[-1] if events else None

    def canonical_events(self) -> List[TraceEvent]:
        """Events in canonical order: sorted by (time, category, fields).

        Same-timestamp events with no causal edge between them are
        concurrent — the engine may serialize them in any order (and the
        ``tie_shuffle_seed`` race-detector mode deliberately permutes
        them). Canonical order factors that arbitrary serialization out,
        so two runs are behaviourally identical iff their canonical
        traces are byte-identical. A real ordering race changes event
        *content* or *membership*, which canonical order still exposes.
        """
        return sorted(
            self._events,
            key=lambda e: (e.time, e.category, repr(sorted(e.fields.items()))),
        )

    @staticmethod
    def _line(event: TraceEvent) -> bytes:
        return (
            f"{event.time} {event.category} {sorted(event.fields.items())!r}\n"
        ).encode("utf-8")

    @staticmethod
    def _fold(chain: str, events: List[TraceEvent]) -> str:
        """Absorb one window's canonical lines into the hash chain.

        An empty chain seed contributes no bytes, so a single fold over
        the whole trace is exactly the flat canonical SHA-256.
        """
        hasher = hashlib.sha256()
        if chain:
            hasher.update(chain.encode("ascii"))
        for event in events:
            hasher.update(TraceRecorder._line(event))
        return hasher.hexdigest()

    def _windows(self) -> List[List[TraceEvent]]:
        """Retained canonical events grouped into non-empty windows."""
        events = self.canonical_events()
        if self.window_ns is None:
            return [events] if events else []
        windows: List[List[TraceEvent]] = []
        current_index: Optional[int] = None
        for event in events:
            index = event.time // self.window_ns
            if index != current_index:
                windows.append([])
                current_index = index
            windows[-1].append(event)
        return windows

    def digest(self) -> str:
        """SHA-256 over the canonical trace; equal digests ⇔ identical runs.

        With ``window_ns=None`` (the default) this is the flat canonical
        hash; with windows it is the window chain — identical for any
        two runs recorded with the same ``window_ns``, whether or not
        either of them evicted.
        """
        chain = self._chain
        for window in self._windows():
            chain = self._fold(chain, window)
        if not chain:
            # Empty trace, no evictions: hash of zero canonical lines.
            return hashlib.sha256().hexdigest()
        return chain

    def rolling_digest(self) -> str:
        """The bounded-memory digest (alias of :meth:`digest`).

        Named separately so soak call sites document that the value
        survives :meth:`evict_before` — it equals the full-trace digest
        of a never-evicting recorder with the same ``window_ns``.
        """
        return self.digest()

    def evict_before(self, time_ns: int) -> int:
        """Fold and drop every *complete* window before ``time_ns``.

        Returns the number of events evicted. Requires ``window_ns``;
        only windows wholly below ``time_ns`` are folded, so events at
        or after the last window boundary stay queryable. After
        eviction, recording earlier than the horizon raises — those
        windows' folds are final.
        """
        if self.window_ns is None:
            raise ValueError("evict_before requires a window_ns")
        horizon = (time_ns // self.window_ns) * self.window_ns
        if horizon <= self._evicted_horizon_ns:
            return 0
        evicted = 0
        for window in self._windows():
            if window[-1].time >= horizon:
                break
            self._chain = self._fold(self._chain, window)
            evicted += len(window)
        if evicted:
            keep = [e for e in self._events if e.time >= horizon]
            self._events = keep
            self._by_category = {}
            for event in keep:
                self._by_category.setdefault(event.category, []).append(event)
            self._evicted_events += evicted
        self._evicted_horizon_ns = horizon
        return evicted

    @property
    def evicted_events(self) -> int:
        """Events absorbed into the digest chain and dropped."""
        return self._evicted_events

    def clear(self) -> None:
        """Drop all recorded events and reset the digest chain."""
        self._events.clear()
        self._by_category.clear()
        self._chain = ""
        self._evicted_events = 0
        self._evicted_horizon_ns = 0

    def __len__(self) -> int:
        return len(self._events)
