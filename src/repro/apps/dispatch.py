"""Picklable application wiring callables.

Application flows attach themselves to a cell through small callbacks: a
``transmit`` callable pushing packets into a UE bearer, and a UE
``dl_sink`` dispatcher routing one flow's downlink SDUs to its receiver
while chaining everything else to whatever sink was installed before.
These used to be closures; the checkpoint subsystem snapshots whole
cells by pickling the object graph, and closures cannot be pickled — so
the wirings live here as plain callable classes instead. Behaviour is
identical: each instance carries exactly the objects the old closure
captured.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.transport.packet import Packet


class UplinkTransmit:
    """``transmit(packet)`` callback: send on one UE bearer.

    Equivalent to ``lambda p: ue.send_uplink(bearer_id, p, p.size_bytes)``
    but picklable.
    """

    __slots__ = ("ue", "bearer_id")

    def __init__(self, ue: Any, bearer_id: int) -> None:
        self.ue = ue
        self.bearer_id = bearer_id

    def __call__(self, packet: Packet) -> bool:
        return bool(
            self.ue.send_uplink(self.bearer_id, packet, packet.size_bytes)
        )


class FlowDispatch:
    """UE ``dl_sink`` dispatcher: route one flow, chain the rest.

    Packets of ``flow_id`` go to ``deliver(packet)``; everything else
    falls through to the previously installed sink (building a chain as
    flows stack up on one UE).
    """

    __slots__ = ("flow_id", "deliver", "previous")

    def __init__(
        self,
        flow_id: str,
        deliver: Callable[[Packet], None],
        previous: Optional[Callable[[int, Any], None]],
    ) -> None:
        self.flow_id = flow_id
        self.deliver = deliver
        self.previous = previous

    def __call__(self, bearer_id: int, sdu: Any) -> None:
        if isinstance(sdu, Packet) and sdu.flow_id == self.flow_id:
            self.deliver(sdu)
        elif self.previous is not None:
            self.previous(bearer_id, sdu)
