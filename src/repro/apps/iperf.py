"""iperf-style throughput measurement flows.

Four ready-made wirings binding a sender, a receiver, and the UE/server
endpoints for each (transport, direction) combination used in Fig 10 and
Table 2. Receivers bin goodput at 10 ms — the paper's reporting interval
and the granularity of its sub-10 ms availability target.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.dispatch import FlowDispatch, UplinkTransmit
from repro.corenet.server import AppServer
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.transport.packet import FlowDirection, Packet
from repro.transport.tcp import TcpConfig, TcpReceiver, TcpSegment, TcpSender
from repro.transport.udp import UdpSender, UdpSink
from repro.ue.ue import UserEquipment


class UdpIperfDownlink:
    """Server -> UE constant-bitrate UDP flow with UE-side measurement."""

    def __init__(
        self,
        sim: Simulator,
        server: AppServer,
        ue: UserEquipment,
        flow_id: str,
        bearer_id: int,
        bitrate_bps: float,
        packet_bytes: int = 1200,
        bin_ns: int = 10 * MS,
    ) -> None:
        self.sink = UdpSink(sim, flow_id, bin_ns=bin_ns)
        self.sender = UdpSender(
            sim,
            flow_id,
            ue.ue_id,
            bearer_id,
            FlowDirection.DOWNLINK,
            transmit=server.send_to_ue,
            bitrate_bps=bitrate_bps,
            packet_bytes=packet_bytes,
        )
        ue.dl_sink = FlowDispatch(flow_id, self.sink.on_packet, ue.dl_sink)

    def start(self) -> None:
        self.sender.start()

    def stop(self) -> None:
        self.sender.stop()


class UdpIperfUplink:
    """UE -> server constant-bitrate UDP flow with server-side measurement."""

    def __init__(
        self,
        sim: Simulator,
        server: AppServer,
        ue: UserEquipment,
        flow_id: str,
        bearer_id: int,
        bitrate_bps: float,
        packet_bytes: int = 1200,
        bin_ns: int = 10 * MS,
    ) -> None:
        self.sink = UdpSink(sim, flow_id, bin_ns=bin_ns)
        self.sender = UdpSender(
            sim,
            flow_id,
            ue.ue_id,
            bearer_id,
            FlowDirection.UPLINK,
            transmit=UplinkTransmit(ue, bearer_id),
            bitrate_bps=bitrate_bps,
            packet_bytes=packet_bytes,
        )
        server.register_flow(flow_id, self.sink.on_packet)

    def start(self) -> None:
        self.sender.start()

    def stop(self) -> None:
        self.sender.stop()


class TcpIperfDownlink:
    """Server -> UE bulk TCP flow; goodput measured at the UE receiver."""

    def __init__(
        self,
        sim: Simulator,
        server: AppServer,
        ue: UserEquipment,
        flow_id: str,
        bearer_id: int,
        config: Optional[TcpConfig] = None,
        bin_ns: int = 10 * MS,
    ) -> None:
        self.sender = TcpSender(
            sim,
            flow_id,
            ue.ue_id,
            bearer_id,
            FlowDirection.DOWNLINK,
            transmit=server.send_to_ue,
            config=config,
        )
        self.receiver = TcpReceiver(
            sim,
            flow_id,
            ue.ue_id,
            bearer_id,
            ack_direction=FlowDirection.UPLINK,
            transmit_ack=UplinkTransmit(ue, bearer_id),
            bin_ns=bin_ns,
        )
        ue.dl_sink = FlowDispatch(flow_id, self._on_dl_packet, ue.dl_sink)
        server.register_flow(flow_id, self._on_server_packet)

    def _on_dl_packet(self, packet: Packet) -> None:
        if isinstance(packet.payload, TcpSegment):
            self.receiver.on_segment(packet.payload)

    def _on_server_packet(self, packet: Packet) -> None:
        if isinstance(packet.payload, TcpSegment):
            self.sender.on_ack(packet.payload)

    def start(self) -> None:
        self.sender.start()

    def stop(self) -> None:
        self.sender.stop()


class TcpIperfUplink:
    """UE -> server bulk TCP flow; goodput measured at the server receiver."""

    def __init__(
        self,
        sim: Simulator,
        server: AppServer,
        ue: UserEquipment,
        flow_id: str,
        bearer_id: int,
        config: Optional[TcpConfig] = None,
        bin_ns: int = 10 * MS,
    ) -> None:
        self.sender = TcpSender(
            sim,
            flow_id,
            ue.ue_id,
            bearer_id,
            FlowDirection.UPLINK,
            transmit=UplinkTransmit(ue, bearer_id),
            config=config,
        )
        self.receiver = TcpReceiver(
            sim,
            flow_id,
            ue.ue_id,
            bearer_id,
            ack_direction=FlowDirection.DOWNLINK,
            transmit_ack=self._send_ack_downlink,
            bin_ns=bin_ns,
        )
        self._server = None
        self._ue = ue
        self._flow_id = flow_id
        server.register_flow(flow_id, self._on_server_packet)
        self._server = server
        ue.dl_sink = FlowDispatch(flow_id, self._on_dl_ack, ue.dl_sink)

    def _on_dl_ack(self, packet: Packet) -> None:
        if isinstance(packet.payload, TcpSegment):
            self.sender.on_ack(packet.payload)

    def _send_ack_downlink(self, packet: Packet) -> None:
        if self._server is not None:
            self._server.send_to_ue(packet)

    def _on_server_packet(self, packet: Packet) -> None:
        if isinstance(packet.payload, TcpSegment):
            self.receiver.on_segment(packet.payload)

    def start(self) -> None:
        self.sender.start()

    def stop(self) -> None:
        self.sender.stop()
