"""Ping (ICMP-echo-style) latency measurement.

The paper measures ping between the application server and UEs every
10 ms (Fig 9, §8.7). The client stamps requests; the UE responder echoes
them on its uplink; samples with no reply within a timeout are recorded
as losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.corenet.server import AppServer
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.units import MS, SECOND
from repro.transport.packet import FlowDirection, Packet
from repro.ue.ue import UserEquipment


@dataclass(frozen=True)
class _EchoRequest:
    ping_seq: int
    sent_ns: int


@dataclass
class PingSample:
    """One ping result (RTT in ns; None = lost/timed out)."""

    seq: int
    sent_ns: int
    rtt_ns: Optional[int]


class UePingResponder:
    """UE-side echo: bounces requests back on the uplink."""

    def __init__(self, ue: UserEquipment, flow_id: str, bearer_id: int) -> None:
        self.ue = ue
        self.flow_id = flow_id
        self.bearer_id = bearer_id

    def on_packet(self, packet: Packet) -> None:
        request = packet.payload
        if not isinstance(request, _EchoRequest):
            return
        reply = Packet(
            flow_id=self.flow_id,
            ue_id=self.ue.ue_id,
            bearer_id=self.bearer_id,
            direction=FlowDirection.UPLINK,
            payload=request,
            size_bytes=packet.size_bytes,
            created_ns=packet.created_ns,
            seq=request.ping_seq,
        )
        self.ue.send_uplink(self.bearer_id, reply, reply.size_bytes)


class PingClient(Process):
    """Server-side ping client toward one UE."""

    def __init__(
        self,
        sim: Simulator,
        server: AppServer,
        ue_id: int,
        flow_id: str,
        bearer_id: int,
        interval_ns: int = 10 * MS,
        timeout_ns: int = 2 * SECOND,
        packet_bytes: int = 64,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"ping:{flow_id}")
        self.server = server
        self.ue_id = ue_id
        self.flow_id = flow_id
        self.bearer_id = bearer_id
        self.interval_ns = interval_ns
        self.timeout_ns = timeout_ns
        self.packet_bytes = packet_bytes
        self.samples: List[PingSample] = []
        self._outstanding: Dict[int, PingSample] = {}
        self._seq = 0
        self._running = False
        server.register_flow(flow_id, self._on_reply)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # First probe at start time; order-independent (tie-shuffle clean).
        self.call_after(0, self._send_next)  # slinglint: disable=EVT002

    def stop(self) -> None:
        self._running = False

    def _send_next(self) -> None:
        if not self._running:
            return
        sample = PingSample(seq=self._seq, sent_ns=self.now, rtt_ns=None)
        self.samples.append(sample)
        self._outstanding[self._seq] = sample
        request = _EchoRequest(ping_seq=self._seq, sent_ns=self.now)
        packet = Packet(
            flow_id=self.flow_id,
            ue_id=self.ue_id,
            bearer_id=self.bearer_id,
            direction=FlowDirection.DOWNLINK,
            payload=request,
            size_bytes=self.packet_bytes,
            created_ns=self.now,
            seq=self._seq,
        )
        self._seq += 1
        self.server.send_to_ue(packet)
        self.call_after(self.interval_ns, self._send_next)
        # Expire long-gone requests to bound the outstanding map.
        cutoff = self.now - self.timeout_ns
        stale = [s for s, smp in self._outstanding.items() if smp.sent_ns < cutoff]
        for seq in stale:
            del self._outstanding[seq]

    def _on_reply(self, packet: Packet) -> None:
        request = packet.payload
        if not isinstance(request, _EchoRequest):
            return
        sample = self._outstanding.pop(request.ping_seq, None)
        if sample is None:
            return
        sample.rtt_ns = self.now - request.sent_ns

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def rtt_series_ms(self) -> List[tuple]:
        """(send time s, RTT ms) for answered pings."""
        return [
            (s.sent_ns / SECOND, s.rtt_ns / MS)
            for s in self.samples
            if s.rtt_ns is not None
        ]

    def loss_count(self) -> int:
        """Pings with no reply (excluding ones still in flight)."""
        horizon = self.now - self.timeout_ns
        return sum(
            1 for s in self.samples if s.rtt_ns is None and s.sent_ns < horizon
        )
