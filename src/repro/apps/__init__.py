"""End-to-end applications used by the paper's evaluation.

* :mod:`repro.apps.ping` — 10 ms-interval echo from the application
  server to a UE (Fig 9, §8.7 latency microbenchmarks).
* :mod:`repro.apps.iperf` — UDP and TCP throughput measurement with
  10 ms receiver bins (Fig 10, Table 2).
* :mod:`repro.apps.video` — constant-bitrate talking-head video stream
  with per-interval receiver bitrate (Fig 8's QoE proxy).
"""

from repro.apps.ping import PingClient, PingSample, UePingResponder
from repro.apps.iperf import (
    UdpIperfDownlink,
    UdpIperfUplink,
    TcpIperfDownlink,
    TcpIperfUplink,
)
from repro.apps.video import VideoSender, VideoReceiver

__all__ = [
    "PingClient",
    "PingSample",
    "UePingResponder",
    "UdpIperfDownlink",
    "UdpIperfUplink",
    "TcpIperfDownlink",
    "TcpIperfUplink",
    "VideoSender",
    "VideoReceiver",
]
