"""Video-conferencing application (Fig 8's QoE workload).

A :class:`VideoSender` streams a compressed talking-head video toward a
UE at a target bitrate (the paper uses 500 kb/s): fixed frame cadence
with mildly varying frame sizes, each frame packetized into MTU-sized
chunks. The :class:`VideoReceiver` reports the received bitrate per
interval — the paper's QoE proxy — so an outage shows up as the bitrate
pinning to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.corenet.server import AppServer
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.units import MS, SECOND
from repro.transport.packet import FlowDirection, Packet
from repro.ue.ue import UserEquipment


@dataclass(frozen=True)
class _VideoChunk:
    frame_index: int
    chunk_index: int


class VideoSender(Process):
    """Constant-target-bitrate video source on the application server."""

    def __init__(
        self,
        sim: Simulator,
        server: AppServer,
        ue_id: int,
        flow_id: str,
        bearer_id: int,
        bitrate_bps: float = 500_000.0,
        fps: float = 30.0,
        mtu_bytes: int = 1200,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"video-tx:{flow_id}")
        self.server = server
        self.ue_id = ue_id
        self.flow_id = flow_id
        self.bearer_id = bearer_id
        self.bitrate_bps = bitrate_bps
        self.fps = fps
        self.mtu_bytes = mtu_bytes
        self.rng = (
            rng
            if rng is not None
            else RngRegistry(seed=0).stream(f"app.video.{flow_id}")
        )
        self._frame_index = 0
        self._seq = 0
        self._running = False
        self.frames_sent = 0

    @property
    def frame_interval_ns(self) -> int:
        return round(SECOND / self.fps)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # First frame at start time; order-independent (tie-shuffle clean).
        self.call_after(0, self._send_frame)  # slinglint: disable=EVT002

    def stop(self) -> None:
        self._running = False

    def _send_frame(self) -> None:
        if not self._running:
            return
        nominal = self.bitrate_bps / 8.0 / self.fps
        # Encoder output varies frame to frame (talking-head content).
        frame_bytes = max(200, int(self.rng.normal(nominal, nominal * 0.15)))
        offset = 0
        chunk_index = 0
        while offset < frame_bytes:
            chunk = min(self.mtu_bytes, frame_bytes - offset)
            packet = Packet(
                flow_id=self.flow_id,
                ue_id=self.ue_id,
                bearer_id=self.bearer_id,
                direction=FlowDirection.DOWNLINK,
                payload=_VideoChunk(self._frame_index, chunk_index),
                size_bytes=chunk,
                created_ns=self.now,
                seq=self._seq,
            )
            self._seq += 1
            chunk_index += 1
            offset += chunk
            self.server.send_to_ue(packet)
        self._frame_index += 1
        self.frames_sent += 1
        self.call_after(self.frame_interval_ns, self._send_frame)


class VideoReceiver:
    """UE-side bitrate meter (the paper's QoE proxy)."""

    def __init__(
        self,
        sim: Simulator,
        ue: UserEquipment,
        flow_id: str,
        interval_ns: int = 500 * MS,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.interval_ns = interval_ns
        #: bytes received per interval index.
        self.bins: Dict[int, int] = {}
        self.bytes_received = 0
        self.packets_received = 0
        previous_sink = ue.dl_sink

        def dispatch(bearer_id: int, sdu) -> None:
            if isinstance(sdu, Packet) and sdu.flow_id == flow_id:
                self._on_packet(sdu)
            elif previous_sink is not None:
                previous_sink(bearer_id, sdu)

        ue.dl_sink = dispatch

    def _on_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        index = self.sim.now // self.interval_ns
        self.bins[index] = self.bins.get(index, 0) + packet.size_bytes

    def bitrate_series_kbps(self, start_ns: int, end_ns: int) -> List[Tuple[float, float]]:
        """(interval start s, received kb/s) samples over the window."""
        series = []
        first = start_ns // self.interval_ns
        last = (end_ns - 1) // self.interval_ns
        for index in range(first, last + 1):
            bytes_in_bin = self.bins.get(index, 0)
            kbps = bytes_in_bin * 8 / (self.interval_ns / SECOND) / 1e3
            series.append((index * self.interval_ns / SECOND, kbps))
        return series

    def outage_seconds(self, start_ns: int, end_ns: int) -> float:
        """Total time at zero bitrate within the window."""
        zero_bins = sum(
            1 for _, kbps in self.bitrate_series_kbps(start_ns, end_ns) if kbps == 0.0
        )
        return zero_bins * self.interval_ns / SECOND
