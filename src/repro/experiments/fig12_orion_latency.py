"""Fig 12 — one-way latency added by Orion vs downlink load.

Paper result: Orion's FAPI transformations and SHM-to-UDP relay add
under 200 µs one-way even at 3.4 Gb/s of downlink user traffic
(generated with FlexRAN's test MAC) — comfortably within the one-TTI
(500 µs) budget FlexRAN allots to FAPI transfer for a slot.

This harness drives the Orion service-queue model directly with the
paper's load points: per-slot DL_TTI + TX_DATA messages sized for the
offered bitrate, plus the per-slot control chatter, measuring the
one-way L2-to-PHY latency (both Orion hops plus the wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.orion import OrionConfig, OrionDatagram, _ServiceQueue
from repro.fapi.messages import DlTtiRequest, PdschPdu, TxDataRequest, UlTtiRequest
from repro.fapi.codec import wire_size
from repro.phy.modulation import Modulation
from repro.sim.engine import Simulator
from repro.sim.units import MS, SECOND, US, ns_to_us

#: The paper's load points (labels match Fig 12's x axis).
LOAD_POINTS_BPS: List[Tuple[str, float]] = [
    ("Idle", 0.0),
    ("100 Mbps", 100e6),
    ("1.1 Gbps", 1.1e9),
    ("2.8 Gbps", 2.8e9),
    ("3.4 Gbps", 3.4e9),
]


@dataclass
class LoadPointResult:
    label: str
    offered_bps: float
    median_us: float
    p99_us: float
    p99999_us: float
    samples: int


@dataclass
class Fig12Result:
    points: List[LoadPointResult]

    def max_added_latency_us(self) -> float:
        return max(p.p99999_us for p in self.points)


def _measure_load_point(
    label: str,
    offered_bps: float,
    duration_s: float,
    seed: int,
    config: Optional[OrionConfig] = None,
) -> LoadPointResult:
    """One load point: replay the L2's per-slot message pattern through
    the L2-side and PHY-side Orion service queues plus the wire."""
    sim = Simulator()
    cfg = config or OrionConfig()
    l2_side = _ServiceQueue(sim, cfg, "l2-orion")
    phy_side = _ServiceQueue(sim, cfg, "phy-orion")
    rng = np.random.default_rng(seed)
    slot_ns = 500 * US
    wire_ns = 1_300  # switch hop + 100 GbE propagation
    slots = int(duration_s * SECOND / slot_ns)
    latencies: List[int] = []
    # Bytes of user payload per downlink slot at the offered load (3 of 5
    # TDD slots carry downlink).
    dl_payload_per_slot = offered_bps / 8.0 * (slot_ns / SECOND) * (5.0 / 3.0)

    def send_one(created: int, size: int) -> None:
        def after_l2() -> None:
            arrive_phy = sim.now + wire_ns
            sim.at(
                arrive_phy,
                lambda: phy_side.submit(
                    size, lambda: latencies.append(sim.now - created)
                ),
            )

        l2_side.submit(size, after_l2)

    for slot in range(slots):
        slot_start = slot * slot_ns
        is_dl = (slot % 5) < 3
        # Per-slot TTI requests always flow.
        tti = DlTtiRequest(cell_id=0, slot=slot, pdus=[])
        base_size = wire_size(tti) + 46
        jitter = int(rng.integers(0, 20_000))
        sim.at(slot_start + jitter, send_one, slot_start + jitter, base_size)
        if is_dl and dl_payload_per_slot > 0:
            # TX_DATA: jumbo-frame chunks of the slot's user payload, as
            # FlexRAN's test MAC generates them. The chunk count per slot
            # is capped; byte volume (which drives the service model) is
            # preserved by growing the chunk size.
            remaining = dl_payload_per_slot * float(rng.uniform(0.9, 1.1))
            chunk = max(9000.0, remaining / 24.0)
            offset = 30_000
            while remaining >= 1.0:
                size = max(1, int(min(remaining, chunk)))
                t = slot_start + jitter + offset
                sim.at(t, send_one, t, size + 60)
                remaining -= size
                offset += 2_000
    sim.run()
    lat = np.array(latencies, dtype=np.float64)
    return LoadPointResult(
        label=label,
        offered_bps=offered_bps,
        median_us=float(np.percentile(lat, 50)) / 1e3,
        p99_us=float(np.percentile(lat, 99)) / 1e3,
        p99999_us=float(np.percentile(lat, 99.999)) / 1e3,
        samples=len(lat),
    )


def run(duration_s: float = 1.0, seed: int = 0) -> Fig12Result:
    """Measure Orion's added one-way latency at all Fig 12 load points."""
    return Fig12Result(
        points=[
            _measure_load_point(label, bps, duration_s, seed + i)
            for i, (label, bps) in enumerate(LOAD_POINTS_BPS)
        ]
    )


def summarize(result: Fig12Result) -> str:
    lines = ["Fig 12 — one-way latency added by Orion vs downlink load"]
    for p in result.points:
        lines.append(
            f"  {p.label:9s}: median {p.median_us:6.1f} us, "
            f"p99 {p.p99_us:6.1f} us, p99.999 {p.p99999_us:6.1f} us "
            f"({p.samples} msgs)"
        )
    lines.append(
        f"  max p99.999 {result.max_added_latency_us():.0f} us "
        f"(paper: < 200 us, within the 500 us TTI budget)"
    )
    return "\n".join(lines)
