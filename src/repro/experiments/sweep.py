"""Shared sweep helper: shard independent experiment trials.

Several experiment harnesses run a loop of independent trials, each
building a fresh cell from its own seed (``sec52`` detection-latency
kills, ``sec82`` dropped-TTI failovers, ...). This module gives them one
idiom for fanning those trials out over :mod:`repro.parallel` workers
while keeping results **bit-identical to the serial loop**:

* the trial worker is a top-level function in the experiment module
  (named ``*_shard`` so PAR001 lints it) that rebuilds everything from
  its payload;
* any RNG draws the serial loop interleaved with trial execution (e.g.
  per-trial kill offsets) are precomputed by the caller *in serial draw
  order* and passed inside the payloads, so sharding never reorders a
  generator's sequence;
* results come back in canonical trial order regardless of completion
  order.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.parallel.pool import ShardOutcome, ShardWorker, run_shards


def sweep_trials(
    worker: ShardWorker,
    payloads: Sequence[Any],
    jobs: int = 1,
    label: str = "trial",
) -> Tuple[List[Any], ShardOutcome]:
    """Run one payload per trial through ``worker`` on ``jobs`` workers.

    Returns ``(values, outcome)``: the worker results in trial order,
    plus the shard outcome carrying wall-time/RSS accounting.
    """
    shards = [((label, index), payload) for index, payload in enumerate(payloads)]
    outcome = run_shards(worker, shards, jobs=jobs)
    return outcome.values(), outcome
