"""Table 2 — stress test for discarding PHY state.

Paper result: migrating PHY processing back and forth between the two
servers at extreme rates (1..50 migrations/second) for 60 s while an
uplink UDP flow runs, Slingshot keeps network downtime under the 10 ms
target at up to 20 migrations/s — despite interrupting over a hundred
in-flight HARQ sequences — and only the absurd 50/s rate produces
10 ms blackout intervals. Reported per rate: number of 10 ms blackout
bins, min/max per-10 ms throughput, max per-10 ms packet loss, HARQ
sequences interrupted, and the average UDP loss rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.iperf import UdpIperfUplink
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, SECOND, run_for_ns, run_until_ns, s_to_ns, seconds


@dataclass
class StressRow:
    """One row (column in the paper's layout) of Table 2."""

    migrations_per_s: float
    blackout_bins_10ms: int
    min_tput_mbps_per_10ms: float
    max_tput_mbps_per_10ms: float
    max_pkt_loss_per_10ms: float
    interrupted_harq_seqs: int
    avg_loss_rate: float
    migrations_executed: int


@dataclass
class Table2Result:
    rows: List[StressRow]
    duration_s: float


def _run_rate(
    migrations_per_s: float,
    duration_s: float,
    offered_bps: float,
    seed: int,
) -> StressRow:
    # A stationary, fade-free UE (migration effects isolated from natural
    # fades) at a commercial link-adaptation operating point: ~10 %
    # initial BLER, where HARQ soft combining genuinely carries decodes
    # — so a migration that discards the soft buffer has a real cost.
    config = CellConfig(
        seed=seed,
        ue_profiles=[
            UeProfile(
                ue_id=1, name="UE", mean_snr_db=8.9,
                shadow_sigma_db=0.3, fade_probability=0.0,
            )
        ],
    )
    cell = build_slingshot_cell(config)
    flow = UdpIperfUplink(
        cell.sim, cell.server, cell.ue(1), "stress", bearer_id=1,
        bitrate_bps=offered_bps,
    )
    run_for_ns(cell, seconds(0.3))
    flow.start()
    start_ns = cell.sim.now + s_to_ns(0.2)
    end_ns = start_ns + s_to_ns(duration_s)
    # Schedule back-and-forth planned migrations at the target rate.
    interval_ns = round(SECOND / migrations_per_s)
    t = start_ns
    while t < end_ns - interval_ns:
        cell.sim.at(t, lambda: cell.planned_migration(0), label="stress-migrate")
        t += interval_ns
    harq_before = _interrupted_harq(cell)
    run_until_ns(cell, end_ns + seconds(0.1))
    min_mbps, max_mbps = flow.sink.min_max_bin_mbps(start_ns, end_ns)
    blackouts = flow.sink.blackout_bins(start_ns, end_ns)
    # Per-10ms packet loss: compare offered packets per bin to received.
    offered_per_bin = offered_bps / 8 / flow.sender.packet_bytes * 0.01
    worst_loss = 0.0
    first_bin = start_ns // (10 * MS)
    last_bin = (end_ns - 1) // (10 * MS)
    for index in range(first_bin, last_bin + 1):
        got = flow.sink.bin_packets.get(index, 0)
        loss = max(0.0, 1.0 - got / max(offered_per_bin, 1e-9))
        worst_loss = max(worst_loss, loss)
    return StressRow(
        migrations_per_s=migrations_per_s,
        blackout_bins_10ms=blackouts,
        min_tput_mbps_per_10ms=min_mbps,
        max_tput_mbps_per_10ms=max_mbps,
        max_pkt_loss_per_10ms=worst_loss,
        interrupted_harq_seqs=_interrupted_harq(cell) - harq_before,
        avg_loss_rate=flow.sink.stats.loss_rate,
        migrations_executed=cell.middlebox.stats.migrations_executed,
    )


def _interrupted_harq(cell) -> int:
    """HARQ sequences broken mid-flight across both PHYs (Table 2 row 5).

    A migration interrupts a HARQ sequence when a retransmission arrives
    at a PHY whose soft buffer never saw the original — counted by the
    HARQ pool — or when the L2 sees a grant's sequence die to DTX during
    the blackout.
    """
    phy_side = sum(
        node.phy.codec.harq.stats.lost_to_migration for node in cell.phy_servers
    )
    return phy_side + cell.l2.stats.ul_dtx_timeouts


def run(
    rates_per_s: Optional[List[float]] = None,
    duration_s: float = 60.0,
    offered_bps: float = 16e6,
    seed: int = 0,
) -> Table2Result:
    """Run the stress campaign (paper rates: 1, 10, 20, 50 per second)."""
    rates = rates_per_s if rates_per_s is not None else [1.0, 10.0, 20.0, 50.0]
    rows = [
        _run_rate(rate, duration_s, offered_bps, seed + i)
        for i, rate in enumerate(rates)
    ]
    return Table2Result(rows=rows, duration_s=duration_s)


def summarize(result: Table2Result) -> str:
    lines = [
        f"Table 2 — PHY-state-discard stress test ({result.duration_s:.0f} s "
        f"uplink UDP, planned migrations)"
    ]
    header = (
        "  rate/s  blackout-10ms  min-tput  max-tput  max-loss/10ms  "
        "interrupted-HARQ  avg-loss"
    )
    lines.append(header)
    for row in result.rows:
        lines.append(
            f"  {row.migrations_per_s:6.0f}  {row.blackout_bins_10ms:13d}  "
            f"{row.min_tput_mbps_per_10ms:7.1f}M  {row.max_tput_mbps_per_10ms:7.1f}M  "
            f"{row.max_pkt_loss_per_10ms:12.0%}  {row.interrupted_harq_seqs:16d}  "
            f"{row.avg_loss_rate:8.2%}"
        )
    lines.append(
        "  paper: 0 blackout bins up to 20/s; 11 bins at 50/s; "
        "loss 0.1% -> 3.9% as rate grows"
    )
    return "\n".join(lines)
