"""Experiment harnesses: one module per paper figure/table.

Each module exposes a ``run(...)`` function returning a result dataclass
plus a ``summarize(result)`` pretty-printer. The pytest benchmarks under
``benchmarks/`` and the scripts under ``examples/`` both call into these,
so there is exactly one code path per experiment.

Durations are parameters: the defaults regenerate the paper's plots at
full length, while the benches pass scaled-down windows (documented in
EXPERIMENTS.md) to keep CI runtimes sane.

The **Experiment registry** is the single source of truth the CLI is
derived from: each paper experiment is registered as an
:class:`ExperimentSpec` (name, module, description, durations, and the
CLI-argument → ``run(...)`` parameter mapping), and ``python -m repro
list`` / the per-experiment subcommands are generated from
:data:`REGISTRY` rather than hand-written shims. Anything satisfying the
:class:`Experiment` protocol — ``name``, ``run(**params)``,
``summarize(result)``, ``default_params`` — can be driven the same way;
``ExperimentSpec`` adapts the module convention to that protocol.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Protocol, runtime_checkable

from repro.checkpoint import soak as soak_experiment
from repro.fleet import experiment as fleet_experiment
from repro.experiments import (
    fig3_vm_migration,
    fig8_video,
    fig9_ping,
    fig10_throughput,
    fig11_upgrade,
    fig12_orion_latency,
    table2_stress,
    sec52_detector,
    sec82_dropped_ttis,
    sec85_overhead,
    sec86_switch,
    ablations,
    ext_massive_mimo,
)


@runtime_checkable
class Experiment(Protocol):
    """The uniform surface every registered experiment presents."""

    name: str

    def run(self, **params: Any) -> Any:
        """Execute the experiment, returning its result object."""

    def summarize(self, result: Any) -> str:
        """Render a result as the paper-style text summary."""

    @property
    def default_params(self) -> Dict[str, Any]:
        """The ``run`` keyword defaults (the full-length paper config)."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment module + its CLI metadata.

    ``cli_params`` maps a parsed ``repro`` argparse namespace (after
    per-experiment defaulting) to ``run(...)`` keyword arguments — the
    same mappings the former hand-written ``_run_*`` shims applied, so
    CLI behaviour is unchanged.
    """

    name: str
    description: str
    #: Default simulated duration surfaced by the CLI (0.0 for
    #: experiments without a single duration knob).
    default_duration_s: float
    module: Any
    cli_params: Callable[[Any], Dict[str, Any]]
    #: Scaled-down duration used by ``--quick`` (None: no quick scaling).
    quick_duration_s: Optional[float] = None

    def run(self, **params: Any) -> Any:
        return self.module.run(**params)

    def summarize(self, result: Any) -> str:
        return self.module.summarize(result)

    @property
    def default_params(self) -> Dict[str, Any]:
        signature = inspect.signature(self.module.run)
        return {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }


#: The experiment registry, in paper presentation order.
REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in REGISTRY:
        raise ValueError(f"experiment {spec.name!r} registered twice")
    REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ExperimentSpec:
    return REGISTRY[name]


def registered_names() -> list:
    return list(REGISTRY)


register(ExperimentSpec(
    name="fig3",
    description="VM-migration pause-time CDF (baseline)",
    default_duration_s=0.0,
    module=fig3_vm_migration,
    cli_params=lambda args: {"runs_per_transport": args.runs},
))
register(ExperimentSpec(
    name="fig8",
    description="video conferencing through PHY failure",
    default_duration_s=12.0,
    quick_duration_s=5.0,
    module=fig8_video,
    cli_params=lambda args: {
        "duration_s": args.duration, "failure_at_s": args.failure_at,
    },
))
register(ExperimentSpec(
    name="fig9",
    description="ping latency across failover (3 UEs)",
    default_duration_s=4.0,
    quick_duration_s=3.2,
    module=fig9_ping,
    cli_params=lambda args: {
        "duration_s": args.duration, "failure_at_s": args.failure_at,
    },
))
register(ExperimentSpec(
    name="fig10",
    description="TCP/UDP throughput through failover",
    default_duration_s=2.4,
    quick_duration_s=2.4,
    module=fig10_throughput,
    cli_params=lambda args: {
        "duration_s": args.duration, "event_at_s": args.failure_at,
    },
))
register(ExperimentSpec(
    name="fig11",
    description="zero-downtime live FEC upgrade",
    default_duration_s=10.0,
    quick_duration_s=6.0,
    module=fig11_upgrade,
    cli_params=lambda args: {
        "duration_s": args.duration, "upgrade_at_s": args.duration / 2,
    },
))
register(ExperimentSpec(
    name="fig12",
    description="Orion added latency vs load",
    default_duration_s=1.0,
    quick_duration_s=0.5,
    module=fig12_orion_latency,
    cli_params=lambda args: {"duration_s": min(args.duration, 2.0)},
))
register(ExperimentSpec(
    name="table2",
    description="PHY-state-discard stress test",
    default_duration_s=60.0,
    quick_duration_s=4.0,
    module=table2_stress,
    cli_params=lambda args: {
        "rates_per_s": args.rates, "duration_s": args.duration,
    },
))
register(ExperimentSpec(
    name="sec52",
    description="in-switch failure-detector microbench",
    default_duration_s=0.0,
    module=sec52_detector,
    cli_params=lambda args: {"trials": args.runs, "jobs": args.jobs},
))
register(ExperimentSpec(
    name="sec82",
    description="dropped TTIs per resilience event",
    default_duration_s=0.0,
    module=sec82_dropped_ttis,
    cli_params=lambda args: {"trials": args.runs, "jobs": args.jobs},
))
register(ExperimentSpec(
    name="sec85",
    description="secondary-PHY (null FAPI) overhead",
    default_duration_s=3.0,
    quick_duration_s=1.5,
    module=sec85_overhead,
    cli_params=lambda args: {"duration_s": min(args.duration, 5.0)},
))
register(ExperimentSpec(
    name="soak",
    description="continuous-operation soak with crash-resume verification",
    default_duration_s=3.0,
    quick_duration_s=1.5,
    module=soak_experiment,
    cli_params=lambda args: {
        "horizon_s": min(args.duration, 10.0), "jobs": args.jobs,
    },
))
register(ExperimentSpec(
    name="fleet",
    description="metro fleet availability vs pooled standby count",
    default_duration_s=0.0,
    module=fleet_experiment,
    cli_params=lambda args: {"jobs": args.jobs, "quick": args.quick},
))
register(ExperimentSpec(
    name="sec86",
    description="switch resources + inter-packet gap",
    default_duration_s=3.0,
    quick_duration_s=1.5,
    module=sec86_switch,
    cli_params=lambda args: {"gap_duration_s": min(args.duration, 5.0)},
))

__all__ = [
    "Experiment",
    "ExperimentSpec",
    "REGISTRY",
    "get",
    "register",
    "registered_names",
    "fig3_vm_migration",
    "fig8_video",
    "fig9_ping",
    "fig10_throughput",
    "fig11_upgrade",
    "fig12_orion_latency",
    "table2_stress",
    "sec52_detector",
    "sec82_dropped_ttis",
    "sec85_overhead",
    "sec86_switch",
    "soak_experiment",
    "fleet_experiment",
    "ablations",
    "ext_massive_mimo",
]
