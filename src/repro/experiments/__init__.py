"""Experiment harnesses: one module per paper figure/table.

Each module exposes a ``run(...)`` function returning a result dataclass
plus a ``summarize(result)`` pretty-printer. The pytest benchmarks under
``benchmarks/`` and the scripts under ``examples/`` both call into these,
so there is exactly one code path per experiment.

Durations are parameters: the defaults regenerate the paper's plots at
full length, while the benches pass scaled-down windows (documented in
EXPERIMENTS.md) to keep CI runtimes sane.
"""

from repro.experiments import (
    fig3_vm_migration,
    fig8_video,
    fig9_ping,
    fig10_throughput,
    fig11_upgrade,
    fig12_orion_latency,
    table2_stress,
    sec52_detector,
    sec82_dropped_ttis,
    sec85_overhead,
    sec86_switch,
    ablations,
    ext_massive_mimo,
)

__all__ = [
    "fig3_vm_migration",
    "fig8_video",
    "fig9_ping",
    "fig10_throughput",
    "fig11_upgrade",
    "fig12_orion_latency",
    "table2_stress",
    "sec52_detector",
    "sec82_dropped_ttis",
    "sec85_overhead",
    "sec86_switch",
    "ablations",
    "ext_massive_mimo",
]
