"""§8.5 — overhead of maintaining a hot secondary PHY.

Paper result: null FAPI requests make the secondary's marginal compute
cost negligible (FlexRAN reports no significant CPU or FEC-accelerator
increase), there is no L2 overhead (the L2 never sees the secondary),
and the null-FAPI network traffic is under 1 MB/s on the 100 GbE links.

This harness measures the same three quantities on a loaded cell, plus
the ablation the design implies: what the overhead *would* be if the
secondary were kept hot by duplicating real FAPI work instead
(~100 % of the primary's compute).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.iperf import UdpIperfUplink
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import SECOND, run_for_ns, seconds


@dataclass
class OverheadResult:
    primary_busy_core_us: float
    secondary_busy_core_us: float
    secondary_fec_decodes: int
    primary_fec_decodes: int
    null_fapi_bytes_per_s: float
    duration_s: float

    @property
    def secondary_cpu_fraction(self) -> float:
        """Secondary compute as a fraction of the primary's."""
        if self.primary_busy_core_us == 0:
            return 0.0
        return self.secondary_busy_core_us / self.primary_busy_core_us

    @property
    def duplicate_cpu_fraction(self) -> float:
        """The naive alternative: a duplicating secondary costs ~100 %."""
        return 1.0


def run(duration_s: float = 3.0, offered_bps: float = 16e6, seed: int = 0) -> OverheadResult:
    """Measure secondary-PHY overheads under uplink load."""
    config = CellConfig(
        seed=seed,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=15.0)],
    )
    cell = build_slingshot_cell(config)
    flow = UdpIperfUplink(
        cell.sim, cell.server, cell.ue(1), "load", bearer_id=1, bitrate_bps=offered_bps
    )
    run_for_ns(cell, seconds(0.3))
    flow.start()
    primary = cell.phy_servers[0].phy
    secondary = cell.phy_servers[1].phy
    orion = cell.l2_orion
    busy0_p, busy0_s = primary.cpu.busy_core_us, secondary.cpu.busy_core_us
    fec0_p, fec0_s = primary.cpu.fec_decodes, secondary.cpu.fec_decodes
    nulls_bytes_0 = orion.stats.bytes_on_wire
    nulls_0 = orion.stats.null_requests_sent
    start = cell.sim.now
    run_for_ns(cell, seconds(duration_s))
    elapsed_s = (cell.sim.now - start) / SECOND
    # Approximate the null-FAPI byte rate from Orion's null counter and
    # the average bytes per message.
    nulls = orion.stats.null_requests_sent - nulls_0
    null_bytes = nulls * 65.0  # null TTI request + UDP/IP overhead
    return OverheadResult(
        primary_busy_core_us=primary.cpu.busy_core_us - busy0_p,
        secondary_busy_core_us=secondary.cpu.busy_core_us - busy0_s,
        secondary_fec_decodes=secondary.cpu.fec_decodes - fec0_s,
        primary_fec_decodes=primary.cpu.fec_decodes - fec0_p,
        null_fapi_bytes_per_s=null_bytes / elapsed_s,
        duration_s=elapsed_s,
    )


def summarize(result: OverheadResult) -> str:
    return "\n".join(
        [
            "§8.5 — hot-secondary overhead (null FAPI vs duplicate FAPI)",
            f"  primary busy: {result.primary_busy_core_us / 1e3:.1f} core-ms; "
            f"secondary busy: {result.secondary_busy_core_us / 1e3:.1f} core-ms "
            f"({result.secondary_cpu_fraction:.1%} of primary; paper: negligible)",
            f"  FEC decodes: primary {result.primary_fec_decodes}, "
            f"secondary {result.secondary_fec_decodes} (paper: no accelerator use)",
            f"  null-FAPI traffic: {result.null_fapi_bytes_per_s / 1e3:.0f} kB/s "
            f"(paper: < 1 MB/s)",
            f"  duplicating secondary would cost ~{result.duplicate_cpu_fraction:.0%} "
            f"of the primary's compute",
        ]
    )
