"""§5.2 — in-switch failure detection microbenchmark.

Paper parameters: timeout T = 450 µs (chosen above the measured 393 µs
maximum healthy inter-packet gap), n = 50 timer ticks per timeout →
9 µs detection precision at ~50 k internal packets/second. Detection of
a SIGKILLed PHY therefore completes within roughly one TTI.

This harness measures, across repeated failovers at random slot phases:
the detection latency distribution, and that a healthy run produces no
false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.core.failure_detector import DetectorConfig
from repro.experiments.sweep import sweep_trials
from repro.sim.units import MS, SECOND, US, ns_to_us, run_for_ns, s_to_ns, seconds


@dataclass
class DetectorResult:
    detection_latencies_us: List[float]
    false_positives: int
    timeout_us: float
    precision_us: float
    pktgen_rate_pps: float

    def median_us(self) -> float:
        return float(np.median(self.detection_latencies_us))

    def max_us(self) -> float:
        return float(np.max(self.detection_latencies_us))


def _detection_trial_shard(
    payload: Tuple[int, int, int, Optional[DetectorConfig]],
) -> Optional[float]:
    """One kill trial: fresh cell from its seed, returns latency in µs.

    Shard worker (PAR001): everything — including the kill offset the
    serial loop used to draw inline — arrives in the payload, so the
    result is identical whether this runs inline or in a pool worker.
    """
    seed, trial, offset_us, detector = payload
    config = CellConfig(
        seed=seed + trial,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )
    cell = build_slingshot_cell(config)
    if detector is not None:
        cell.middlebox.reconfigure_detector(detector)
        cell.sim.schedule(
            6 * cell.slot_ns, cell.middlebox.detector.set_monitor, 0, True
        )
    kill_at = s_to_ns(0.5) + offset_us * US
    cell.kill_phy_at(0, kill_at)
    run_for_ns(cell, seconds(0.8))
    detected = cell.trace.last("mbox.failure_detected")
    if detected is None:
        return None
    return ns_to_us(detected.time - kill_at)


def run(
    trials: int = 8,
    healthy_seconds: float = 2.0,
    seed: int = 0,
    detector: Optional[DetectorConfig] = None,
    jobs: int = 1,
) -> DetectorResult:
    """Measure detection latency over repeated kill trials.

    Each trial uses a fresh cell, kills the primary at a pseudo-random
    offset within a slot, and reads the switch's detection timestamp
    from the trace. ``jobs > 1`` shards the trials over worker
    processes with results identical to the serial loop: the per-trial
    kill offsets are drawn up front in serial order and shipped inside
    the shard payloads.
    """
    rng = np.random.default_rng(seed)
    cfg = detector or DetectorConfig()
    payloads = [
        (seed, trial, int(rng.integers(0, 500)), detector)
        for trial in range(trials)
    ]
    values, _outcome = sweep_trials(
        _detection_trial_shard, payloads, jobs=jobs, label="sec52"
    )
    latencies: List[float] = [value for value in values if value is not None]
    # False-positive check: a healthy cell must never trigger detection.
    config = CellConfig(seed=seed + 1000)
    healthy = build_slingshot_cell(config)
    run_for_ns(healthy, seconds(healthy_seconds))
    false_positives = healthy.trace.count("mbox.failure_detected")
    return DetectorResult(
        detection_latencies_us=latencies,
        false_positives=false_positives,
        timeout_us=cfg.timeout_ns / US,
        precision_us=cfg.precision_ns / US,
        pktgen_rate_pps=cfg.pktgen_rate_pps,
    )


def summarize(result: DetectorResult) -> str:
    lines = ["§5.2 — in-switch failure detector"]
    lines.append(
        f"  T = {result.timeout_us:.0f} us, precision = {result.precision_us:.0f} us, "
        f"pktgen {result.pktgen_rate_pps / 1e3:.0f} kpps per monitored PHY"
    )
    if result.detection_latencies_us:
        lines.append(
            f"  detection latency: median {result.median_us():.0f} us, "
            f"max {result.max_us():.0f} us over {len(result.detection_latencies_us)} kills"
        )
    lines.append(
        f"  false positives over healthy run: {result.false_positives} "
        f"(max healthy gap ~390 us < T)"
    )
    return "\n".join(lines)
