"""§8.2 — TTIs dropped during failover vs VM migration.

Paper result: Slingshot drops at most three TTIs on a failover (failure
near the end of slot N → detection near the end of N+1 → Orion reacts
within tens of microseconds → secondary serves from ~N+2/N+3), two
orders of magnitude fewer than the hundreds a VM-migration blackout
costs; planned migrations drop zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.baselines.vm_migration import PrecopyMigrationModel, TransportKind
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.experiments.sweep import sweep_trials
from repro.sim.units import US, run_for_ns, seconds


@dataclass
class DroppedTtiResult:
    #: Dropped (no-control) TTIs per failover trial.
    failover_dropped: List[int]
    #: Dropped TTIs across a planned migration.
    planned_dropped: int
    #: Equivalent dropped TTIs for the median VM-migration pause.
    vm_migration_dropped: int
    slot_us: float

    def max_failover_dropped(self) -> int:
        return max(self.failover_dropped) if self.failover_dropped else 0


def _failover_trial_shard(payload: Tuple[int, int, int]) -> int:
    """One failover trial: dropped-TTI count for a kill at the given
    slot-phase offset. Shard worker (PAR001): state rebuilds from the
    payload's seed; the kill offset was drawn by the caller in serial
    order."""
    seed, trial, offset_us = payload
    config = CellConfig(
        seed=seed + trial,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )
    cell = build_slingshot_cell(config)
    run_for_ns(cell, seconds(0.5))
    before = cell.ru.stats.slots_without_control
    # Kill at a random phase within a slot (worst case is near the
    # start of a slot, wasting most of the detector timeout).
    kill_at = cell.sim.now + offset_us * US
    cell.kill_phy_at(0, kill_at)
    run_for_ns(cell, seconds(0.4))
    return cell.ru.stats.slots_without_control - before


def run(trials: int = 6, seed: int = 0, jobs: int = 1) -> DroppedTtiResult:
    """Count RU control gaps across failovers, a planned migration, and
    the VM-migration equivalent.

    ``jobs > 1`` shards the failover trials over worker processes;
    per-trial kill offsets are pre-drawn in serial order so the counts
    are identical to the serial loop.
    """
    rng = np.random.default_rng(seed)
    slot_us = 500.0
    payloads = [
        (seed, trial, int(rng.integers(0, 500))) for trial in range(trials)
    ]
    failover_dropped, _outcome = sweep_trials(
        _failover_trial_shard, payloads, jobs=jobs, label="sec82"
    )
    # Planned migration drops nothing.
    config = CellConfig(
        seed=seed + 500,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )
    cell = build_slingshot_cell(config)
    run_for_ns(cell, seconds(0.5))
    before = cell.ru.stats.slots_without_control
    cell.planned_migration(0)
    run_for_ns(cell, seconds(0.4))
    planned_dropped = cell.ru.stats.slots_without_control - before
    # VM migration: the median pause time expressed in TTIs.
    model = PrecopyMigrationModel(rng=np.random.default_rng(seed))
    runs = model.run_campaign(TransportKind.RDMA, 20)
    median_pause_us = float(np.median([r.pause_time_ns for r in runs])) / 1e3
    return DroppedTtiResult(
        failover_dropped=failover_dropped,
        planned_dropped=planned_dropped,
        vm_migration_dropped=int(median_pause_us / slot_us),
        slot_us=slot_us,
    )


def summarize(result: DroppedTtiResult) -> str:
    return "\n".join(
        [
            "§8.2 — dropped TTIs per resilience event",
            f"  Slingshot failover: max {result.max_failover_dropped()} TTIs "
            f"across trials {result.failover_dropped} (paper: <= 3)",
            f"  Slingshot planned migration: {result.planned_dropped} TTIs "
            f"(paper: 0)",
            f"  VM migration (median pause): ~{result.vm_migration_dropped} TTIs "
            f"(paper: hundreds)",
        ]
    )
