"""Fig 10 — TCP/UDP throughput through failover and planned migration.

Paper results (single UE, 10 ms bins):

* **Downlink** (Fig 10a): neither TCP nor UDP shows noticeable
  degradation at failover — DL HARQ state lives in the UE, and the few
  lost TTIs are recovered by retransmission layers.
* **Uplink** (Fig 10b): UDP dips (15.8 -> 7.4 Mb/s) and recovers within
  20 ms; TCP goes to zero for ~80 ms and recovers fully 110 ms after
  the failure, with a catch-up burst (~157 Mb/s) when the UE's TCP
  stack retransmits the lost window. A *planned* migration shows no
  drop at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.iperf import (
    TcpIperfDownlink,
    TcpIperfUplink,
    UdpIperfDownlink,
    UdpIperfUplink,
)
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, run_for_ns, run_until_ns, s_to_ns, seconds


@dataclass
class ThroughputTrace:
    """One flow's binned goodput around the resilience event."""

    label: str
    #: (bin start ms, Mbps) series, absolute simulation time.
    series: List[Tuple[float, float]]
    event_time_ms: float

    def relative(self) -> List[Tuple[float, float]]:
        """Series re-based so the event is at t=0 (as plotted in Fig 10)."""
        return [(t - self.event_time_ms, mbps) for t, mbps in self.series]

    def zero_window_ms(self, bin_ms: float = 10.0) -> float:
        """Longest run of zero-throughput bins after the event."""
        longest = 0
        current = 0
        for t, mbps in self.series:
            if t < self.event_time_ms:
                continue
            if mbps == 0.0:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        return longest * bin_ms

    def recovery_ms(self, threshold_fraction: float = 0.7) -> Optional[float]:
        """Time from the event until throughput is back above a fraction
        of its pre-event mean."""
        before = [m for t, m in self.series if t < self.event_time_ms - 20.0]
        if not before:
            return None
        target = threshold_fraction * (sum(before) / len(before))
        for t, mbps in self.series:
            if t >= self.event_time_ms and mbps >= target:
                return t - self.event_time_ms
        return None

    def min_after_event_mbps(self, window_ms: float = 200.0) -> float:
        vals = [
            m
            for t, m in self.series
            if self.event_time_ms <= t < self.event_time_ms + window_ms
        ]
        return min(vals) if vals else 0.0


@dataclass
class Fig10Result:
    downlink_udp: ThroughputTrace
    downlink_tcp: ThroughputTrace
    uplink_udp: ThroughputTrace
    uplink_tcp: ThroughputTrace
    uplink_tcp_planned: ThroughputTrace


def _single_ue_config(seed: int) -> CellConfig:
    """Fig 10 uses one stationary UE 'to measure throughput in an
    isolated setting'; the fade process is disabled so the plots isolate
    the resilience event (fades are exercised by Fig 9 / the channel
    tests instead)."""
    return CellConfig(
        seed=seed,
        ue_profiles=[
            UeProfile(
                ue_id=1, name="UE", mean_snr_db=17.0,
                shadow_sigma_db=0.6, fade_probability=0.0,
            )
        ],
    )


def _run_flow(
    kind: str,
    direction: str,
    planned: bool,
    duration_s: float,
    event_at_s: float,
    udp_bitrate_bps: float,
    seed: int,
) -> ThroughputTrace:
    cell = build_slingshot_cell(_single_ue_config(seed))
    ue = cell.ue(1)
    if kind == "udp" and direction == "dl":
        flow = UdpIperfDownlink(
            cell.sim, cell.server, ue, "iperf", 1, bitrate_bps=udp_bitrate_bps
        )
        series_source = flow.sink
    elif kind == "udp" and direction == "ul":
        flow = UdpIperfUplink(
            cell.sim, cell.server, ue, "iperf", 1, bitrate_bps=udp_bitrate_bps
        )
        series_source = flow.sink
    elif kind == "tcp" and direction == "dl":
        # TCP rides the UM bearer, as in the paper's testbed: radio
        # losses reach TCP itself rather than being masked by RLC AM
        # (the paper attributes the recovery burst to "the lost packets
        # retransmitted by the UE's TCP stack").
        flow = TcpIperfDownlink(cell.sim, cell.server, ue, "iperf", 1)
        series_source = flow.receiver
    else:
        flow = TcpIperfUplink(cell.sim, cell.server, ue, "iperf", 1)
        series_source = flow.receiver
    run_for_ns(cell, seconds(0.2))
    flow.start()
    if planned:
        cell.sim.at(
            s_to_ns(event_at_s), lambda: cell.planned_migration(0), label="planned"
        )
    else:
        cell.kill_phy_at(0, s_to_ns(event_at_s))
    run_until_ns(cell, seconds(duration_s))
    series = series_source.throughput_series(s_to_ns(0.4), s_to_ns(duration_s))
    label = f"{direction.upper()} {kind.upper()}" + (" planned" if planned else "")
    return ThroughputTrace(
        label=label, series=series, event_time_ms=event_at_s * 1000.0
    )


def run(
    duration_s: float = 2.0,
    event_at_s: float = 1.2,
    udp_dl_bitrate_bps: float = 80e6,
    udp_ul_bitrate_bps: float = 15.8e6,
    seed: int = 0,
) -> Fig10Result:
    """Run all five flows of Fig 10 (each on a fresh cell)."""
    return Fig10Result(
        downlink_udp=_run_flow(
            "udp", "dl", False, duration_s, event_at_s, udp_dl_bitrate_bps, seed
        ),
        downlink_tcp=_run_flow(
            "tcp", "dl", False, duration_s, event_at_s, 0.0, seed + 1
        ),
        uplink_udp=_run_flow(
            "udp", "ul", False, duration_s, event_at_s, udp_ul_bitrate_bps, seed + 2
        ),
        uplink_tcp=_run_flow("tcp", "ul", False, duration_s, event_at_s, 0.0, seed + 3),
        uplink_tcp_planned=_run_flow(
            "tcp", "ul", True, duration_s, event_at_s, 0.0, seed + 4
        ),
    )


def summarize(result: Fig10Result) -> str:
    lines = ["Fig 10 — throughput across resilience events (10 ms bins)"]
    for trace in (
        result.downlink_udp,
        result.downlink_tcp,
        result.uplink_udp,
        result.uplink_tcp,
        result.uplink_tcp_planned,
    ):
        recovery = trace.recovery_ms()
        lines.append(
            f"  {trace.label:16s}: zero-window {trace.zero_window_ms():5.0f} ms, "
            f"min(after) {trace.min_after_event_mbps():5.1f} Mbps, "
            f"recovery {'-' if recovery is None else f'{recovery:.0f} ms'}"
        )
    lines.append(
        "  paper: DL unaffected; UL UDP recovers <=20 ms; UL TCP zero ~80 ms, "
        "full at 110 ms; planned migration no drop"
    )
    return "\n".join(lines)
