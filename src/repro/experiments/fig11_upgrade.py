"""Fig 11 — live PHY upgrade to better FEC, with zero downtime.

Paper result: before the upgrade the two phones get low uplink UDP
throughput (and the Raspberry Pi an unfairly high share); the upgraded
PHY — emulated by configuring the secondary to run more FEC decoding
iterations — improves the phones' decode success rate, raising their
throughput and evening out the shares, with no network downtime during
the migration.

In this reproduction the "old build" PHY runs a low LDPC iteration
budget, which visibly hurts UEs operating near their modulation's
decoding threshold (the phones); the "new build" secondary runs more
iterations. The effect is produced by the real belief-propagation
decoder, not a scripted throughput change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.iperf import UdpIperfUplink
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.l2.mac import McsEntry, McsTable
from repro.phy.modulation import Modulation
from repro.sim.units import SECOND, run_for_ns, run_until_ns, s_to_ns, seconds


@dataclass
class Fig11Result:
    #: UE name -> (time s, Mbps) series (1 s bins, as the paper plots).
    series: Dict[str, List[Tuple[float, float]]]
    upgrade_time_s: float
    #: Dropped control slots during the upgrade window (0 = no downtime).
    control_gaps_during_upgrade: int

    def mean_before_after(self, name: str) -> Tuple[float, float]:
        points = self.series[name]
        before = [m for t, m in points if t < self.upgrade_time_s - 0.5]
        after = [m for t, m in points if t > self.upgrade_time_s + 0.5]
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
        return mean(before), mean(after)

    def fairness_before_after(self) -> Tuple[float, float]:
        """Jain's fairness index across UEs, before vs after."""

        def jain(values: List[float]) -> float:
            if not values or sum(values) == 0:
                return 0.0
            return sum(values) ** 2 / (len(values) * sum(v * v for v in values))

        befores = [self.mean_before_after(name)[0] for name in self.series]
        afters = [self.mean_before_after(name)[1] for name in self.series]
        return jain(befores), jain(afters)


def run(
    duration_s: float = 10.0,
    upgrade_at_s: float = 5.0,
    old_iterations: int = 2,
    new_iterations: int = 12,
    offered_bps: float = 12e6,
    seed: int = 0,
) -> Fig11Result:
    """Run the three-UE uplink workload through a live FEC upgrade."""
    # The phones sit just above the 16-QAM threshold; with an aggressive
    # MCS table and few decoder iterations their BLER is painful, which
    # is the "needs the FEC upgrade" regime of Fig 11.
    profiles = [
        UeProfile(ue_id=1, name="OnePlus N10", mean_snr_db=10.3, shadow_sigma_db=0.8),
        UeProfile(ue_id=2, name="Samsung A52s", mean_snr_db=10.0, shadow_sigma_db=0.8),
        UeProfile(ue_id=3, name="Raspberry Pi", mean_snr_db=16.0, shadow_sigma_db=0.8),
    ]
    config = CellConfig(
        seed=seed,
        ue_profiles=profiles,
        phy_decoder_iterations=old_iterations,
        secondary_decoder_iterations=new_iterations,
    )
    cell = build_slingshot_cell(config)
    # Pin MCS selection so the phones stay on 16-QAM near threshold
    # (link adaptation would otherwise back off and mask the FEC gain).
    cell.l2.mcs_table = McsTable(
        [
            McsEntry(min_snr_db=-100.0, modulation=Modulation.QPSK, code_rate=0.5),
            McsEntry(min_snr_db=8.6, modulation=Modulation.QAM16, code_rate=0.5),
            McsEntry(min_snr_db=14.5, modulation=Modulation.QAM64, code_rate=0.5),
        ]
    )
    flows: Dict[str, UdpIperfUplink] = {}
    for ue_id, ue in cell.ues.items():
        flow = UdpIperfUplink(
            cell.sim,
            cell.server,
            ue,
            f"iperf-{ue_id}",
            bearer_id=1,
            bitrate_bps=offered_bps,
            bin_ns=SECOND,
        )
        flows[ue.name] = flow
    run_for_ns(cell, seconds(0.2))
    for flow in flows.values():
        flow.start()
    gaps_before = None

    def do_upgrade() -> None:
        nonlocal gaps_before
        gaps_before = cell.ru.stats.slots_without_control
        cell.live_upgrade(decoder_iterations=new_iterations)

    cell.sim.at(s_to_ns(upgrade_at_s), do_upgrade, label="upgrade")
    run_until_ns(cell, seconds(duration_s))
    gaps_during = (
        cell.ru.stats.slots_without_control - gaps_before
        if gaps_before is not None
        else 0
    )
    series = {
        name: flow.sink.throughput_series(s_to_ns(0.5), s_to_ns(duration_s))
        for name, flow in flows.items()
    }
    return Fig11Result(
        series=series,
        upgrade_time_s=upgrade_at_s,
        control_gaps_during_upgrade=gaps_during,
    )


def summarize(result: Fig11Result) -> str:
    lines = ["Fig 11 — uplink UDP throughput before/after live FEC upgrade"]
    for name in result.series:
        before, after = result.mean_before_after(name)
        lines.append(f"  {name:14s}: {before:5.1f} -> {after:5.1f} Mbps")
    fb, fa = result.fairness_before_after()
    lines.append(f"  Jain fairness: {fb:.2f} -> {fa:.2f} (paper: shares even out)")
    lines.append(
        f"  control gaps during upgrade: {result.control_gaps_during_upgrade} "
        f"(paper: zero downtime)"
    )
    return "\n".join(lines)
