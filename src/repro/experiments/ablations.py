"""Ablations of Slingshot's design choices (DESIGN.md §5).

Each function isolates one design decision and quantifies what changes
without it:

* :func:`tti_alignment` — migrating at an arbitrary instant instead of a
  TTI boundary lets the RU receive same-slot packets from two PHYs (a
  protocol violation the RU counts).
* :func:`detector_timeout_sweep` — a timeout below the healthy maximum
  inter-packet gap false-positives; a large one inflates dropped TTIs.
* :func:`software_vs_switch_middlebox` — the DPDK middlebox's latency,
  radius, CPU, and NIC costs vs the in-switch design's ~0.
* :func:`null_vs_duplicate_fapi` — CPU cost of the standby under null
  FAPI vs duplicated real work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.software_mbox import SoftwareMiddleboxModel
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.core.failure_detector import DetectorConfig
from repro.sim.units import US, run_for_ns, seconds


@dataclass
class TtiAlignmentResult:
    aligned_conflicting_slots: int
    unaligned_conflicting_slots: int


def tti_alignment(trials: int = 3, seed: int = 0) -> TtiAlignmentResult:
    """Compare aligned vs immediate (unaligned) migration execution."""

    def run_one(align: bool, trial_seed: int) -> int:
        config = CellConfig(
            seed=trial_seed,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
        )
        cell = build_slingshot_cell(config)
        cell.middlebox.config.align_to_tti = align
        run_for_ns(cell, seconds(0.5))
        # Migrate mid-slot (worst case for the unaligned variant).
        cell.sim.schedule(
            130 * US, lambda: cell.planned_migration(0), label="ablate-migrate"
        )
        run_for_ns(cell, seconds(0.3))
        return cell.ru.stats.conflicting_source_slots

    aligned = sum(run_one(True, seed + i) for i in range(trials))
    unaligned = sum(run_one(False, seed + 100 + i) for i in range(trials))
    return TtiAlignmentResult(
        aligned_conflicting_slots=aligned, unaligned_conflicting_slots=unaligned
    )


@dataclass
class TimeoutSweepPoint:
    timeout_us: float
    false_positives: int
    detection_latency_us: Optional[float]


def detector_timeout_sweep(
    timeouts_us: Optional[List[float]] = None, seed: int = 0
) -> List[TimeoutSweepPoint]:
    """Sweep the detector timeout around the healthy-gap envelope."""
    points: List[TimeoutSweepPoint] = []
    for timeout_us in timeouts_us or [250.0, 350.0, 450.0, 900.0, 1800.0]:
        config = CellConfig(
            seed=seed,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
        )
        cell = build_slingshot_cell(config)
        cell.middlebox.reconfigure_detector(
            DetectorConfig(timeout_ns=round(timeout_us * US))
        )
        # Keep the primary monitored (deployment arms it a few slots in).
        cell.sim.schedule(
            6 * cell.slot_ns,
            cell.middlebox.detector.set_monitor,
            0,
            True,
        )
        # Healthy phase: count false positives.
        run_for_ns(cell, seconds(1.5))
        false_positives = cell.trace.count("mbox.failure_detected")
        # Kill phase: measure latency (only meaningful without FPs).
        kill_at = cell.sim.now + 123 * US
        cell.kill_phy_at(0, kill_at)
        run_for_ns(cell, seconds(0.3))
        detections = cell.trace.events("mbox.failure_detected")
        latency = None
        for event in detections:
            if event.time >= kill_at:
                latency = (event.time - kill_at) / US
                break
        points.append(
            TimeoutSweepPoint(
                timeout_us=timeout_us,
                false_positives=false_positives,
                detection_latency_us=latency,
            )
        )
    return points


@dataclass
class MiddleboxComparison:
    software_p99999_latency_us: float
    software_radius_reduction: float
    software_cpu_fraction: float
    software_nic_multiplier: float
    switch_added_latency_us: float


def software_vs_switch_middlebox(seed: int = 0) -> MiddleboxComparison:
    """Quantify §5's argument for the in-switch design."""
    model = SoftwareMiddleboxModel(rng=np.random.default_rng(seed))
    return MiddleboxComparison(
        software_p99999_latency_us=model.added_latency_percentile_ns(99.999) / 1e3,
        software_radius_reduction=model.radius_reduction_fraction(),
        software_cpu_fraction=model.cpu_overhead_fraction(),
        software_nic_multiplier=model.nic_bandwidth_multiplier(),
        # Tofino adds ~hundreds of ns; against a 100 us budget it is ~0.
        switch_added_latency_us=0.4,
    )


@dataclass
class NullVsDuplicateResult:
    null_secondary_fraction: float
    duplicate_secondary_fraction: float


def null_vs_duplicate_fapi(duration_s: float = 2.0, seed: int = 0) -> NullVsDuplicateResult:
    """Measure standby CPU with null FAPI, and with duplicated work.

    The duplicate variant steers real (not null) requests to the
    standby, reproducing the naive approach §6.2 rejects.
    """
    from repro.apps.iperf import UdpIperfUplink

    def run_variant(duplicate: bool, variant_seed: int) -> float:
        config = CellConfig(
            seed=variant_seed,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=15.0)],
        )
        cell = build_slingshot_cell(config)
        if duplicate:
            orion = cell.l2_orion
            orion._null_counterpart = lambda message: message  # type: ignore[assignment]
        flow = UdpIperfUplink(
            cell.sim, cell.server, cell.ue(1), "load", bearer_id=1, bitrate_bps=12e6
        )
        run_for_ns(cell, seconds(0.3))
        flow.start()
        primary, secondary = cell.phy_servers[0].phy, cell.phy_servers[1].phy
        busy0 = (primary.cpu.busy_core_us, secondary.cpu.busy_core_us)
        run_for_ns(cell, seconds(duration_s))
        primary_busy = primary.cpu.busy_core_us - busy0[0]
        secondary_busy = secondary.cpu.busy_core_us - busy0[1]
        return secondary_busy / max(primary_busy, 1e-9)

    return NullVsDuplicateResult(
        null_secondary_fraction=run_variant(False, seed),
        duplicate_secondary_fraction=run_variant(True, seed + 1),
    )
