"""Fig 9 — ping latency across a PHY failover (three UEs).

Paper result: pinging three UEs every 10 ms and killing the primary PHY
mid-run, two UEs show no visible latency change and the worst (the
Samsung A52s) shows a single ~15 ms spike — indistinguishable from the
routine fluctuations visible elsewhere in the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.ping import PingClient, UePingResponder
from repro.cell.config import CellConfig
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, SECOND, ns_to_s, run_for_ns, run_until_ns, s_to_ns, seconds
from repro.transport.packet import Packet


@dataclass
class Fig9Result:
    #: UE name -> (send time s, RTT ms) series.
    rtt_series: Dict[str, List[Tuple[float, float]]]
    #: UE name -> lost ping count.
    losses: Dict[str, int]
    failure_time_s: float
    detection_time_s: Optional[float]

    def max_spike_ms(self, window_s: float = 0.5) -> float:
        """Largest RTT excursion above each UE's own median, near failover."""
        worst = 0.0
        for series in self.rtt_series.values():
            rtts = np.array([rtt for _, rtt in series])
            times = np.array([t for t, _ in series])
            if len(rtts) < 10:
                continue
            median = float(np.median(rtts))
            near = rtts[np.abs(times - self.failure_time_s) < window_s]
            if len(near):
                worst = max(worst, float(near.max() - median))
        return worst


def run(
    duration_s: float = 4.0,
    failure_at_s: float = 2.0,
    interval_ms: float = 10.0,
    seed: int = 0,
) -> Fig9Result:
    """Ping all three UEs through a failover."""
    cell = build_slingshot_cell(CellConfig(seed=seed))
    clients: Dict[str, PingClient] = {}
    for ue_id, ue in cell.ues.items():
        flow = f"ping-{ue_id}"
        responder = UePingResponder(ue, flow, bearer_id=1)
        previous_sink = ue.dl_sink

        def dispatch(bearer_id, sdu, responder=responder, flow=flow, prev=previous_sink):
            if isinstance(sdu, Packet) and sdu.flow_id == flow:
                responder.on_packet(sdu)
            elif prev is not None:
                prev(bearer_id, sdu)

        ue.dl_sink = dispatch
        clients[ue.name] = PingClient(
            cell.sim,
            cell.server,
            ue_id=ue_id,
            flow_id=flow,
            bearer_id=1,
            interval_ns=round(interval_ms * MS),
        )
    run_for_ns(cell, seconds(0.2))
    for client in clients.values():
        client.start()
    cell.kill_phy_at(0, s_to_ns(failure_at_s))
    run_until_ns(cell, seconds(duration_s))
    detection = cell.trace.last("mbox.failure_detected")
    return Fig9Result(
        rtt_series={name: c.rtt_series_ms() for name, c in clients.items()},
        losses={name: c.loss_count() for name, c in clients.items()},
        failure_time_s=failure_at_s,
        detection_time_s=ns_to_s(detection.time) if detection else None,
    )


def summarize(result: Fig9Result) -> str:
    lines = ["Fig 9 — ping latency across PHY failover"]
    for name, series in result.rtt_series.items():
        rtts = np.array([rtt for _, rtt in series])
        lines.append(
            f"  {name:14s}: median {np.median(rtts):5.1f} ms, "
            f"p99 {np.percentile(rtts, 99):5.1f} ms, "
            f"lost {result.losses[name]}"
        )
    lines.append(
        f"  worst failover spike above median: {result.max_spike_ms():.1f} ms "
        f"(paper: 15 ms on the Samsung A52s)"
    )
    return "\n".join(lines)
