"""Fig 3 — VM pause time while pre-copy-migrating FlexRAN.

Paper result: over 80 live migrations (TCP and RDMA-accelerated), the
median VM pause is 244 ms — far beyond the ~10 µs interruption budget of
a realtime PHY — and FlexRAN crashes in all runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.vm_migration import (
    MigrationRun,
    PrecopyMigrationModel,
    TransportKind,
    VmMigrationConfig,
)


@dataclass
class Fig3Result:
    """Pause-time distributions for both transports."""

    tcp_runs: List[MigrationRun]
    rdma_runs: List[MigrationRun]

    @property
    def all_runs(self) -> List[MigrationRun]:
        return self.tcp_runs + self.rdma_runs

    def median_pause_ms(self) -> float:
        return float(np.median([r.pause_time_ms for r in self.all_runs]))

    def crash_fraction(self) -> float:
        runs = self.all_runs
        return sum(r.phy_crashed for r in runs) / len(runs)

    def cdf(self, transport: TransportKind) -> List[Tuple[float, float]]:
        runs = self.tcp_runs if transport is TransportKind.TCP else self.rdma_runs
        return PrecopyMigrationModel.pause_cdf(runs)


def run(runs_per_transport: int = 40, seed: int = 0) -> Fig3Result:
    """Reproduce the 80-migration campaign (40 per transport)."""
    model = PrecopyMigrationModel(
        VmMigrationConfig(), rng=np.random.default_rng(seed)
    )
    return Fig3Result(
        tcp_runs=model.run_campaign(TransportKind.TCP, runs_per_transport),
        rdma_runs=model.run_campaign(TransportKind.RDMA, runs_per_transport),
    )


def summarize(result: Fig3Result) -> str:
    lines = ["Fig 3 — VM pause time migrating FlexRAN (pre-copy)"]
    for name, runs in (("TCP", result.tcp_runs), ("RDMA", result.rdma_runs)):
        pauses = np.array([r.pause_time_ms for r in runs])
        lines.append(
            f"  {name:4s}: median {np.median(pauses):6.0f} ms   "
            f"p10 {np.percentile(pauses, 10):6.0f} ms   "
            f"p90 {np.percentile(pauses, 90):6.0f} ms"
        )
    lines.append(
        f"  overall median {result.median_pause_ms():.0f} ms (paper: 244 ms); "
        f"FlexRAN crashed in {result.crash_fraction() * 100:.0f}% of runs "
        f"(paper: 100%)"
    )
    return "\n".join(lines)
