"""Extension — massive-MIMO migration transient (paper §10).

The paper's future-work section observes that massive-MIMO PHYs keep
inter-slot beamforming/equalization state lasting tens to hundreds of
slots, and argues that this is *still* discardable soft state: a
migrated-to PHY re-estimates, with "a possibly larger impact on UE
performance" than the small-antenna case.

This experiment quantifies that: an uplink flow runs on a UE whose base
SNR is unusable without the array gain; a planned migration discards the
beamforming state; the destination PHY reconverges one sounding at a
time. Measured: the depth and duration of the post-migration throughput
transient, versus the small-antenna (non-MIMO) deployment, and whether
connectivity survives (it must — the §10 claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.iperf import UdpIperfUplink
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, run_for_ns, run_until_ns, s_to_ns, seconds


@dataclass
class MimoTransient:
    label: str
    #: (ms relative to migration, Mbps) 10 ms-binned series.
    series: List[Tuple[float, float]]
    rlf_events: int

    def dip_duration_ms(self, threshold_fraction: float = 0.7) -> float:
        """Time below a fraction of the pre-migration mean."""
        before = [m for t, m in self.series if t < -30.0]
        if not before:
            return 0.0
        target = threshold_fraction * (sum(before) / len(before))
        below = 0.0
        for t, mbps in self.series:
            if t >= 0 and mbps < target:
                below += 10.0
            elif t >= 0 and mbps >= target and below > 0:
                break
        return below

    def min_after_mbps(self) -> float:
        after = [m for t, m in self.series if 0 <= t <= 300.0]
        return min(after) if after else 0.0


@dataclass
class MimoResult:
    massive_mimo: MimoTransient
    small_antenna: MimoTransient


def _run_variant(
    massive: bool, duration_s: float, migrate_at_s: float,
    offered_bps: float, seed: int,
) -> MimoTransient:
    # With 64 antennas the full array gain is ~18 dB; a 1 dB base SNR is
    # unusable uncombined but comfortable (~19 dB) once beamformed. The
    # small-antenna control gets the same *effective* steady-state SNR.
    profile = (
        UeProfile(ue_id=1, name="UE", mean_snr_db=1.0,
                  shadow_sigma_db=0.4, fade_probability=0.0)
        if massive
        else UeProfile(ue_id=1, name="UE", mean_snr_db=17.0,
                       shadow_sigma_db=0.4, fade_probability=0.0)
    )
    config = CellConfig(seed=seed, ue_profiles=[profile], massive_mimo=massive)
    cell = build_slingshot_cell(config)
    flow = UdpIperfUplink(
        cell.sim, cell.server, cell.ue(1), "mimo", 1, bitrate_bps=offered_bps
    )
    # Give the tracker time to converge before measuring.
    run_for_ns(cell, seconds(0.3))
    flow.start()
    cell.sim.at(
        s_to_ns(migrate_at_s), lambda: cell.planned_migration(0), label="migrate"
    )
    run_until_ns(cell, seconds(duration_s))
    start = s_to_ns(0.5)
    series = [
        (t - migrate_at_s * 1000.0, mbps)
        for t, mbps in flow.sink.throughput_series(start, s_to_ns(duration_s))
    ]
    return MimoTransient(
        label="massive MIMO (64 antennas)" if massive else "small antenna (4T4R)",
        series=series,
        rlf_events=cell.ue(1).stats.rlf_events,
    )


def run(
    duration_s: float = 3.0,
    migrate_at_s: float = 1.8,
    offered_bps: float = 12e6,
    seed: int = 0,
) -> MimoResult:
    """Measure the migration transient with and without MIMO state."""
    return MimoResult(
        massive_mimo=_run_variant(True, duration_s, migrate_at_s, offered_bps, seed),
        small_antenna=_run_variant(False, duration_s, migrate_at_s, offered_bps, seed),
    )


def summarize(result: MimoResult) -> str:
    lines = ["§10 extension — massive-MIMO state discard transient"]
    for transient in (result.small_antenna, result.massive_mimo):
        lines.append(
            f"  {transient.label:26s}: dip {transient.dip_duration_ms():5.0f} ms, "
            f"min(after) {transient.min_after_mbps():4.1f} Mbps, "
            f"RLFs {transient.rlf_events}"
        )
    lines.append(
        "  paper (§10): beamforming matrices are still discardable soft "
        "state, 'albeit with a possibly larger impact on UE performance'"
    )
    return "\n".join(lines)
