"""§8.6 — switch resource usage and healthy inter-packet gap.

Paper results:

* For a 256-RU / 256-server configuration, Slingshot's data plane uses
  a small slice of each pipeline resource: crossbar 5.2 %, ALU 10.4 %,
  gateway 14.1 %, SRAM 5.3 %, hash bits 9.5 %; only SRAM grows with
  the RU count.
* The maximum inter-packet gap between a healthy PHY's downlink
  fronthaul packets, measured with nanosecond switch timestamps across
  idle and busy periods, is 393 µs — motivating the conservative
  450 µs detector timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps.iperf import UdpIperfDownlink
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.net.p4.resources import PipelineResourceModel
from repro.net.packet import EtherType
from repro.sim.units import US, run_for_ns, seconds


@dataclass
class SwitchResult:
    #: Resource name -> percent of the pipeline used (256-RU config).
    resource_percent: Dict[str, float]
    #: SRAM percentages at growing deployment sizes (only SRAM scales).
    sram_scaling: Dict[int, float]
    max_gap_idle_us: float
    max_gap_busy_us: float
    detector_timeout_us: float

    @property
    def max_gap_us(self) -> float:
        return max(self.max_gap_idle_us, self.max_gap_busy_us)


def _measure_max_gap(busy: bool, duration_s: float, seed: int) -> float:
    """Timestamp the primary PHY's downlink packets at the switch and
    compute the maximum inter-packet gap (the paper's P4 timestamping
    mirror, §8.6)."""
    config = CellConfig(
        seed=seed,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )
    cell = build_slingshot_cell(config)
    timestamps: List[int] = []
    detector = cell.middlebox.detector
    original = detector.on_heartbeat

    def tap(phy_id: int, now_ns: Optional[int] = None) -> None:
        if phy_id == 0:
            timestamps.append(cell.sim.now)
        original(phy_id, now_ns)

    detector.on_heartbeat = tap
    if busy:
        flow = UdpIperfDownlink(
            cell.sim, cell.server, cell.ue(1), "dl", bearer_id=1, bitrate_bps=60e6
        )
        run_for_ns(cell, seconds(0.2))
        flow.start()
    run_for_ns(cell, seconds(duration_s))
    stamps = np.array(timestamps[10:], dtype=np.int64)
    if len(stamps) < 2:
        return 0.0
    return float(np.diff(stamps).max()) / US


def run(
    num_rus: int = 256,
    num_phys: int = 256,
    gap_duration_s: float = 3.0,
    seed: int = 0,
) -> SwitchResult:
    """Compute resource usage and measure the healthy inter-packet gap."""
    model = PipelineResourceModel()
    usage = model.usage(num_rus, num_phys)
    sram_scaling = {
        n: model.usage(n, n).percent("sram_bits") for n in (64, 128, 256, 512, 1024)
    }
    return SwitchResult(
        resource_percent={
            name: usage.percent(name) for name in usage.fraction
        },
        sram_scaling=sram_scaling,
        max_gap_idle_us=_measure_max_gap(False, gap_duration_s, seed),
        max_gap_busy_us=_measure_max_gap(True, gap_duration_s, seed + 1),
        detector_timeout_us=450.0,
    )


def summarize(result: SwitchResult) -> str:
    paper = {
        "crossbar": 5.2,
        "alu": 10.4,
        "gateway": 14.1,
        "sram_bits": 5.3,
        "hash_bits": 9.5,
    }
    lines = ["§8.6 — switch ASIC resources (256 RUs / 256 PHYs) and packet gaps"]
    for name, percent in result.resource_percent.items():
        lines.append(
            f"  {name:10s}: {percent:5.1f} %   (paper: {paper.get(name, 0.0):.1f} %)"
        )
    scaling = ", ".join(f"{n}:{p:.1f}%" for n, p in result.sram_scaling.items())
    lines.append(f"  SRAM scaling with deployment size: {scaling}")
    lines.append(
        f"  max healthy inter-packet gap: idle {result.max_gap_idle_us:.0f} us, "
        f"busy {result.max_gap_busy_us:.0f} us (paper: 393 us) "
        f"< timeout {result.detector_timeout_us:.0f} us"
    )
    return "\n".join(lines)
