"""Fig 8 — video-conferencing bitrate through a PHY failure.

Paper result: streaming 500 kb/s video to a UE and SIGKILLing the
primary PHY in the third second, the no-Slingshot baseline (hot backup
vRAN + fronthaul re-route) leaves the UE disconnected for ~6.2 s with
zero bitrate, while Slingshot keeps the bitrate steady throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.video import VideoReceiver, VideoSender
from repro.cell.config import CellConfig
from repro.cell.deployment import build_baseline_cell, build_slingshot_cell
from repro.sim.units import SECOND, run_for_ns, run_until_ns, s_to_ns, seconds


@dataclass
class VideoScenarioResult:
    """Per-interval bitrate series for one scenario."""

    label: str
    #: (interval start s, kb/s) samples.
    bitrate_kbps: List[Tuple[float, float]]
    outage_seconds: float
    rlf_events: int


@dataclass
class Fig8Result:
    no_failure: VideoScenarioResult
    failure_without_slingshot: VideoScenarioResult
    failure_with_slingshot: VideoScenarioResult


def _run_scenario(
    label: str,
    slingshot: bool,
    inject_failure: bool,
    duration_s: float,
    failure_at_s: float,
    bitrate_bps: float,
    seed: int,
) -> VideoScenarioResult:
    config = CellConfig(seed=seed)
    cell = build_slingshot_cell(config) if slingshot else build_baseline_cell(config)
    ue = cell.ue(1)
    sender = VideoSender(
        cell.sim,
        cell.server,
        ue_id=ue.ue_id,
        flow_id="video",
        bearer_id=1,
        bitrate_bps=bitrate_bps,
        rng=cell.rng.stream("app.video.video"),
    )
    receiver = VideoReceiver(cell.sim, ue, flow_id="video")
    # Let the cell settle before streaming.
    run_for_ns(cell, seconds(0.2))
    sender.start()
    if inject_failure:
        cell.kill_phy_at(0, s_to_ns(failure_at_s))
    run_until_ns(cell, seconds(duration_s))
    series = receiver.bitrate_series_kbps(s_to_ns(0.5), s_to_ns(duration_s))
    return VideoScenarioResult(
        label=label,
        bitrate_kbps=series,
        outage_seconds=receiver.outage_seconds(s_to_ns(0.5), s_to_ns(duration_s)),
        rlf_events=ue.stats.rlf_events,
    )


def run(
    duration_s: float = 12.0,
    failure_at_s: float = 2.6,
    bitrate_bps: float = 500_000.0,
    seed: int = 0,
) -> Fig8Result:
    """Run the three scenarios of Fig 8."""
    return Fig8Result(
        no_failure=_run_scenario(
            "No failure", True, False, duration_s, failure_at_s, bitrate_bps, seed
        ),
        failure_without_slingshot=_run_scenario(
            "Failure w/o Slingshot", False, True, duration_s, failure_at_s,
            bitrate_bps, seed + 1,
        ),
        failure_with_slingshot=_run_scenario(
            "Failure w/ Slingshot", True, True, duration_s, failure_at_s,
            bitrate_bps, seed + 2,
        ),
    )


def summarize(result: Fig8Result) -> str:
    lines = ["Fig 8 — downlink video bitrate across a PHY failure"]
    for scenario in (
        result.no_failure,
        result.failure_without_slingshot,
        result.failure_with_slingshot,
    ):
        rates = [kbps for _, kbps in scenario.bitrate_kbps]
        mean = sum(rates) / max(len(rates), 1)
        lines.append(
            f"  {scenario.label:24s}: mean {mean:6.0f} kbps, "
            f"outage {scenario.outage_seconds:4.1f} s, RLFs {scenario.rlf_events}"
        )
    lines.append(
        "  paper: baseline outage 6.2 s (UE reattach); Slingshot outage 0 s"
    )
    return "\n".join(lines)
