"""L2 (MAC + RLC) substrate — the CapGemini-L2 stand-in.

The L2 owns all *hard* UE state (paper §4): RLC sequence numbers and
retransmission buffers, HARQ process bookkeeping, and link adaptation.
It issues per-slot FAPI work requests to the PHY and reacts to the PHY's
indications. Because the hard state lives here, a PHY migration that
discards layer-1 soft state is recoverable: failed HARQ sequences fall
through to RLC AM retransmission (and ultimately TCP).

Modules:

* :mod:`repro.l2.rlc` — RLC AM/UM with segmentation, reassembly, and
  status-driven retransmission.
* :mod:`repro.l2.mac` — the MAC scheduler: TDD-aware PRB allocation,
  SNR-driven MCS selection, UL/DL HARQ management, and FAPI generation.
"""

from repro.l2.rlc import RlcMode, RlcPdu, RlcBearerConfig, RlcTransmitter, RlcReceiver
from repro.l2.mac import L2Process, MacConfig, McsTable, UeContext

__all__ = [
    "RlcMode",
    "RlcPdu",
    "RlcBearerConfig",
    "RlcTransmitter",
    "RlcReceiver",
    "L2Process",
    "MacConfig",
    "McsTable",
    "UeContext",
]
