"""Radio Link Control (RLC) — segmentation, reassembly, and ARQ.

Two modes, matching how real deployments map traffic classes:

* **UM (unacknowledged)** — sequencing and reassembly only; losses that
  survive HARQ reach the application. Used for latency-sensitive flows
  (the UDP/video experiments), which is why Table 2's stress test can
  observe nonzero UDP loss rates.
* **AM (acknowledged)** — adds a retransmission buffer driven by
  receiver STATUS PDUs. Used for TCP bearers; together with TCP's own
  recovery it bounds the post-failover reconnection transient.

SDUs (IP packets) are segmented to fit MAC transport blocks and
reassembled at the receiver; both directions of every bearer run one
transmitter/receiver pair.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

#: RLC PDU header overhead on the wire.
PDU_HEADER_BYTES = 5

#: STATUS PDU base size.
STATUS_BASE_BYTES = 8


class RlcMode(enum.Enum):
    """RLC operating mode for a bearer."""

    UM = "UM"
    AM = "AM"


@dataclass(frozen=True)
class RlcBearerConfig:
    """Configuration of one radio bearer's RLC entity pair."""

    bearer_id: int
    mode: RlcMode
    #: AM: how many SDU sequence numbers may be outstanding.
    window_size: int = 512
    #: AM: maximum retransmissions of one PDU before it is discarded.
    max_retx: int = 8
    #: UM: reassembly timer — a gap older than this is declared lost and
    #: skipped (3GPP t-Reassembly). Generous enough for MAC-level (DTX
    #: driven) HARQ retransmissions to fill the gap first.
    um_t_reassembly_ns: int = 40_000_000
    #: Transmit queue bound; tail-drop beyond it (keeps TCP's
    #: bufferbloat at a realistic level).
    queue_limit_bytes: int = 512_000


_sdu_ids = itertools.count(1)


@dataclass
class RlcPdu:
    """One RLC PDU: a (possibly partial) segment of one SDU.

    ``sdu`` rides along as the payload object; the receiver releases it
    upward only once all segments of the SDU have arrived in order.
    """

    bearer_id: int
    seq: int
    sdu_id: int
    sdu: Any
    #: Segment byte range [offset, offset+length) of the SDU.
    offset: int
    length: int
    sdu_total: int
    is_last_segment: bool

    @property
    def wire_bytes(self) -> int:
        return PDU_HEADER_BYTES + self.length


@dataclass
class RlcStatus:
    """Receiver STATUS PDU: cumulative ack plus selective nacks."""

    bearer_id: int
    #: All seq < ack_seq received.
    ack_seq: int
    #: Missing sequence numbers below the highest received.
    nack_seqs: List[int] = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return STATUS_BASE_BYTES + 3 * len(self.nack_seqs)


@dataclass
class _PendingSdu:
    sdu_id: int
    sdu: Any
    size: int
    sent_offset: int = 0


@dataclass
class RlcTxStats:
    sdus_queued: int = 0
    sdus_dropped_overflow: int = 0
    pdus_sent: int = 0
    pdus_retransmitted: int = 0
    pdus_discarded: int = 0


class RlcTransmitter:
    """Sender side of one bearer's RLC entity."""

    def __init__(
        self, config: RlcBearerConfig, queue_limit_bytes: Optional[int] = None
    ) -> None:
        self.config = config
        self.queue_limit_bytes = (
            queue_limit_bytes if queue_limit_bytes is not None
            else config.queue_limit_bytes
        )
        self._queue: Deque[_PendingSdu] = deque()
        self._queued_bytes = 0
        self._next_seq = 0
        #: AM only: sent-but-unacked PDUs by seq.
        self._flight: Dict[int, Tuple[RlcPdu, int]] = {}
        #: AM only: PDUs scheduled for retransmission.
        self._retx: Deque[RlcPdu] = deque()
        #: AM only: consecutive status reports that failed to cover a
        #: trailing (never-received) PDU — the t-PollRetransmit stand-in.
        self._trail_misses: Dict[int, int] = {}
        self.stats = RlcTxStats()

    # ------------------------------------------------------------------
    # Upper-layer interface
    # ------------------------------------------------------------------
    def enqueue(self, sdu: Any, size_bytes: int) -> bool:
        """Queue one SDU for transmission; False if dropped on overflow."""
        if self._queued_bytes + size_bytes > self.queue_limit_bytes:
            self.stats.sdus_dropped_overflow += 1
            return False
        self._queue.append(
            _PendingSdu(sdu_id=next(_sdu_ids), sdu=sdu, size=size_bytes)
        )
        self._queued_bytes += size_bytes
        self.stats.sdus_queued += 1
        return True

    @property
    def backlog_bytes(self) -> int:
        """Bytes awaiting first transmission (drives MAC scheduling)."""
        retx_bytes = sum(p.wire_bytes for p in self._retx)
        return self._queued_bytes + retx_bytes

    @property
    def has_data(self) -> bool:
        return bool(self._queue or self._retx)

    # ------------------------------------------------------------------
    # MAC interface
    # ------------------------------------------------------------------
    def pull(self, max_bytes: int) -> List[RlcPdu]:
        """Fill up to ``max_bytes`` of a transport block with PDUs.

        Retransmissions take priority over fresh data (standard RLC AM
        behaviour).
        """
        pdus: List[RlcPdu] = []
        budget = max_bytes
        while self._retx and budget >= self._retx[0].wire_bytes:
            pdu = self._retx.popleft()
            pdus.append(pdu)
            budget -= pdu.wire_bytes
            self.stats.pdus_retransmitted += 1
        while self._queue and budget > PDU_HEADER_BYTES:
            pending = self._queue[0]
            remaining = pending.size - pending.sent_offset
            segment = min(remaining, budget - PDU_HEADER_BYTES)
            if segment <= 0:
                break
            is_last = pending.sent_offset + segment >= pending.size
            pdu = RlcPdu(
                bearer_id=self.config.bearer_id,
                seq=self._next_seq,
                sdu_id=pending.sdu_id,
                sdu=pending.sdu if is_last else None,
                offset=pending.sent_offset,
                length=segment,
                sdu_total=pending.size,
                is_last_segment=is_last,
            )
            self._next_seq += 1
            pending.sent_offset += segment
            self._queued_bytes -= segment
            if is_last:
                self._queue.popleft()
            pdus.append(pdu)
            budget -= pdu.wire_bytes
            self.stats.pdus_sent += 1
            if self.config.mode is RlcMode.AM:
                self._flight[pdu.seq] = (pdu, 0)
        return pdus

    # ------------------------------------------------------------------
    # Status handling (AM)
    # ------------------------------------------------------------------
    def on_status(self, status: RlcStatus) -> None:
        """Apply a receiver STATUS PDU: ack flight, queue nacked retx.

        Trailing losses — PDUs the receiver never saw at all, so it
        cannot NACK them — are recovered by the poll-retransmit rule: a
        flight PDU that two consecutive status reports fail to cover is
        presumed lost and retransmitted (3GPP's t-PollRetransmit).
        """
        if self.config.mode is not RlcMode.AM:
            return
        acked = [seq for seq in self._flight if seq < status.ack_seq]
        for seq in acked:
            self._trail_misses.pop(seq, None)
            if seq not in status.nack_seqs:
                del self._flight[seq]
        already_queued = {p.seq for p in self._retx}
        for seq in status.nack_seqs:
            self._trail_misses.pop(seq, None)
            entry = self._flight.get(seq)
            if entry is None or seq in already_queued:
                continue
            self._queue_retx(seq, already_queued)
        # Poll-retransmit for trailing flight the status did not cover.
        for seq in sorted(self._flight):
            if seq < status.ack_seq or seq in already_queued:
                continue
            misses = self._trail_misses.get(seq, 0) + 1
            self._trail_misses[seq] = misses
            if misses >= 2:
                del self._trail_misses[seq]
                self._queue_retx(seq, already_queued)

    def _queue_retx(self, seq: int, already_queued: set) -> None:
        """Schedule one flight PDU for retransmission (bounded retries)."""
        entry = self._flight.get(seq)
        if entry is None or seq in already_queued:
            return
        pdu, retx_count = entry
        if retx_count + 1 > self.config.max_retx:
            del self._flight[seq]
            self.stats.pdus_discarded += 1
            return
        self._flight[seq] = (pdu, retx_count + 1)
        self._retx.append(pdu)
        already_queued.add(seq)

    def reset(self) -> None:
        """Full re-establishment (UE reattach): all state is dropped."""
        self._queue.clear()
        self._queued_bytes = 0
        self._flight.clear()
        self._retx.clear()
        self._next_seq = 0


@dataclass
class RlcRxStats:
    pdus_received: int = 0
    duplicates: int = 0
    sdus_delivered: int = 0
    sdus_lost: int = 0


class RlcReceiver:
    """Receiver side of one bearer's RLC entity.

    * **AM** delivers strictly in sequence, holding gaps until the
      status/retransmission machinery fills them.
    * **UM** follows 3GPP TS 38.322: a *complete* SDU is delivered as
      soon as it is received — there is no cross-SDU in-order guarantee,
      so one lost transport block never head-of-line-blocks the flow.
      Segments of one SDU are reassembled under a per-SDU t-Reassembly
      timer; expiry discards the partial SDU.

    ``now_fn`` supplies the clock used by UM's t-Reassembly logic; when
    omitted, a monotonically increasing PDU counter stands in (tests).
    """

    def __init__(
        self,
        config: RlcBearerConfig,
        now_fn: Optional[Any] = None,
    ) -> None:
        self.config = config
        self._now_fn = now_fn
        #: AM: PDUs received out of order, seq -> pdu.
        self._held: Dict[int, RlcPdu] = {}
        #: AM: next in-sequence PDU expected.
        self._expected_seq = 0
        #: UM: dedup window of recently seen seqs.
        self._seen: set = set()
        self._seen_max = -1
        #: Segment assembly: sdu_id -> [received bytes, first arrival,
        #: sdu object (from the last segment), total].
        self._partial: Dict[int, list] = {}
        #: PDUs accepted since the last status report was built.
        self.pdus_since_status = 0
        self._fallback_clock = 0
        self.stats = RlcRxStats()

    def _now(self) -> int:
        if self._now_fn is not None:
            return self._now_fn()
        # Fallback: one tick per PDU, with t-Reassembly interpreted as a
        # PDU count (keeps unit tests clock-free).
        return self._fallback_clock

    def on_pdu(self, pdu: RlcPdu) -> List[Any]:
        """Accept one PDU; returns the SDUs it makes deliverable."""
        self.stats.pdus_received += 1
        self.pdus_since_status += 1
        self._fallback_clock += 1
        if self.config.mode is RlcMode.AM:
            return self._on_pdu_am(pdu)
        return self._on_pdu_um(pdu)

    # --- AM: strict in-order ------------------------------------------
    def _on_pdu_am(self, pdu: RlcPdu) -> List[Any]:
        if pdu.seq < self._expected_seq or pdu.seq in self._held:
            self.stats.duplicates += 1
            return []
        self._held[pdu.seq] = pdu
        delivered: List[Any] = []
        while self._expected_seq in self._held:
            next_pdu = self._held.pop(self._expected_seq)
            self._expected_seq += 1
            sdu = self._assemble(next_pdu)
            if sdu is not None:
                delivered.append(sdu)
        return delivered

    # --- UM: immediate delivery of complete SDUs ----------------------
    def _on_pdu_um(self, pdu: RlcPdu) -> List[Any]:
        if pdu.seq in self._seen:
            self.stats.duplicates += 1
            return []
        self._seen.add(pdu.seq)
        self._seen_max = max(self._seen_max, pdu.seq)
        if len(self._seen) > 4096:
            cutoff = self._seen_max - 2048
            self._seen = {s for s in self._seen if s > cutoff}
        delivered: List[Any] = []
        sdu = self._assemble(pdu)
        if sdu is not None:
            delivered.append(sdu)
        self._expire_partials()
        return delivered

    def _assemble(self, pdu: RlcPdu) -> Optional[Any]:
        """Per-SDU segment assembly; returns the SDU when complete."""
        if pdu.offset == 0 and pdu.is_last_segment:
            self.stats.sdus_delivered += 1
            return pdu.sdu  # Unsegmented: deliver directly.
        entry = self._partial.get(pdu.sdu_id)
        if entry is None:
            entry = [0, self._now(), None, pdu.sdu_total]
            self._partial[pdu.sdu_id] = entry
        entry[0] += pdu.length
        if pdu.is_last_segment:
            entry[2] = pdu.sdu
        if entry[0] >= entry[3] and entry[2] is not None:
            del self._partial[pdu.sdu_id]
            self.stats.sdus_delivered += 1
            return entry[2]
        return None

    def _expire_partials(self) -> None:
        """UM t-Reassembly: partial SDUs whose first segment is older
        than the timer are dropped (their missing segments are lost)."""
        deadline = self._now() - self.config.um_t_reassembly_ns
        expired = [
            sdu_id
            for sdu_id, entry in self._partial.items()
            if entry[1] <= deadline
        ]
        for sdu_id in expired:
            del self._partial[sdu_id]
            self.stats.sdus_lost += 1

    @property
    def status_due(self) -> bool:
        """True when traffic arrived since the last status was built."""
        return self.pdus_since_status > 0 or bool(self._held)

    def build_status(self) -> RlcStatus:
        """AM: cumulative ack + selective nacks for the transmitter."""
        self.pdus_since_status = 0
        highest = max(self._held) if self._held else self._expected_seq - 1
        nacks = [
            seq
            for seq in range(self._expected_seq, highest + 1)
            if seq not in self._held
        ]
        return RlcStatus(
            bearer_id=self.config.bearer_id,
            ack_seq=highest + 1,
            nack_seqs=nacks,
        )

    def reset(self) -> None:
        """Full re-establishment: drop all reordering/reassembly state."""
        self._held.clear()
        self._partial.clear()
        self._seen.clear()
        self._seen_max = -1
        self._expected_seq = 0
