"""MAC scheduler (the L2's realtime heart).

Responsibilities, mirroring a production L2 at the fidelity Slingshot's
evaluation needs:

* per-slot FAPI generation three slots ahead of air time (UL_TTI and
  DL_TTI in **every** slot — null when there is no work — because the
  PHY requires them; §6.2),
* TDD-aware scheduling over the DDDSU pattern,
* PRB allocation across active UEs and SNR-driven MCS selection,
* UL and DL HARQ process management with retransmissions and DTX
  timeouts (so the scheduler self-heals across the few slots a PHY
  migration blacks out),
* RLC bearer multiplexing: transport blocks carry RLC PDUs and STATUS
  PDUs for any number of bearers.

The L2 keeps its own PTP-derived slot clock: it never stops scheduling
just because a PHY died — that is precisely what lets Orion hand the
unmodified FAPI stream to the secondary PHY mid-stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.fapi.channels import ShmChannel
from repro.fapi.messages import (
    ConfigRequest,
    CrcIndication,
    DlTtiRequest,
    FapiMessage,
    PdschPdu,
    PuschPdu,
    RxDataIndication,
    StartRequest,
    TxDataRequest,
    UciIndication,
    UlTtiRequest,
)
from repro.l2.rlc import (
    RlcBearerConfig,
    RlcMode,
    RlcPdu,
    RlcReceiver,
    RlcStatus,
    RlcTransmitter,
)
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock, SlotType, TddPattern
from repro.sim.engine import SimClock, Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS, US

#: Items carried inside a transport block.
TbItem = Union[RlcPdu, RlcStatus]


@dataclass(frozen=True)
class McsEntry:
    """One row of the link-adaptation table."""

    min_snr_db: float
    modulation: Modulation
    code_rate: float


class McsTable:
    """SNR-to-MCS mapping with conservative thresholds.

    Thresholds sit ~1.5 dB above each modulation's LDPC waterfall so the
    steady-state BLER is low but HARQ still sees occasional work — the
    regime commercial networks target (0.5–2 % residual BLER, §4.2).
    """

    def __init__(self, entries: Optional[List[McsEntry]] = None) -> None:
        self.entries = entries or [
            McsEntry(min_snr_db=-100.0, modulation=Modulation.QPSK, code_rate=0.5),
            McsEntry(min_snr_db=6.0, modulation=Modulation.QAM16, code_rate=0.5),
            McsEntry(min_snr_db=13.0, modulation=Modulation.QAM64, code_rate=0.5),
        ]
        self.entries.sort(key=lambda e: e.min_snr_db)

    def select(self, snr_db: float) -> McsEntry:
        """Highest-order entry whose threshold the SNR clears."""
        chosen = self.entries[0]
        for entry in self.entries:
            if snr_db >= entry.min_snr_db:
                chosen = entry
        return chosen


@dataclass
class MacConfig:
    """Scheduler tunables."""

    #: Slots of lead time between FAPI generation and air time (Fig 7).
    schedule_ahead_slots: int = 3
    #: DL HARQ processes per UE.
    dl_harq_processes: int = 16
    #: UL HARQ processes per UE.
    ul_harq_processes: int = 8
    #: Max HARQ retransmissions (total transmissions = this + 1).
    max_harq_retx: int = 3
    #: Slots to wait for CRC/UCI before declaring DTX.
    harq_timeout_slots: int = 12
    #: Interval between RLC AM status reports.
    status_interval_ns: int = 5 * MS
    #: PRBs available per slot.
    total_prbs: int = 273
    #: Fraction of a slot's REs usable for shared-channel data.
    usable_re_fraction: float = 1.0
    #: Idle UEs still get a small poll grant every this many uplink
    #: slots, keeping SNR measurements (and hence link adaptation) warm.
    ul_poll_interval_slots: int = 50
    #: Downlink per-bearer RLC queue bound. gNB-side buffers are sized
    #: for the high downlink rate (~70 ms of line-rate buffering).
    dl_queue_limit_bytes: int = 1_200_000


@dataclass
class _DlOutstanding:
    """A DL TB awaiting HARQ feedback."""

    pdu: PdschPdu
    payload: List[TbItem]
    sent_slot: int
    retx_count: int = 0


@dataclass
class _UlOutstanding:
    """A UL grant awaiting its CRC result."""

    pdu: PuschPdu
    granted_slot: int
    retx_count: int = 0


@dataclass
class UeContext:
    """All per-UE state held by the scheduler (the L2's hard state)."""

    ue_id: int
    snr_db: float = 10.0
    active: bool = True
    #: DL RLC transmitters and UL RLC receivers per bearer.
    dl_tx: Dict[int, RlcTransmitter] = field(default_factory=dict)
    ul_rx: Dict[int, RlcReceiver] = field(default_factory=dict)
    #: Queued RLC status reports to piggyback on DL.
    pending_dl_status: List[RlcStatus] = field(default_factory=list)
    dl_outstanding: Dict[int, _DlOutstanding] = field(default_factory=dict)
    dl_retx_queue: List[int] = field(default_factory=list)
    ul_outstanding: Dict[int, _UlOutstanding] = field(default_factory=dict)
    ul_retx_queue: List[_UlOutstanding] = field(default_factory=list)
    next_ul_harq: int = 0
    last_status_at: int = 0
    #: Last reported UE uplink backlog minus bytes already granted.
    ul_backlog_estimate: int = 0
    #: Slot of the UE's last uplink grant (drives periodic poll grants).
    last_ul_grant_slot: int = -1

    def free_dl_process(self, count: int) -> Optional[int]:
        for pid in range(count):
            if pid not in self.dl_outstanding:
                return pid
        return None


@dataclass
class MacStats:
    dl_tbs_scheduled: int = 0
    dl_tbs_retransmitted: int = 0
    dl_harq_failures: int = 0
    ul_grants_issued: int = 0
    ul_retx_granted: int = 0
    ul_harq_failures: int = 0
    ul_crc_ok: int = 0
    ul_crc_fail: int = 0
    ul_dtx_timeouts: int = 0


class L2Process(Process):
    """The vRAN L2: MAC scheduler + RLC termination for one cell."""

    def __init__(
        self,
        sim: Simulator,
        slot_clock: SlotClock,
        tdd: TddPattern,
        numerology: Numerology,
        cell_id: int = 0,
        ru_id: int = 0,
        config: Optional[MacConfig] = None,
        mcs_table: Optional[McsTable] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "l2",
    ) -> None:
        super().__init__(sim, name)
        self.slot_clock = slot_clock
        self.tdd = tdd
        self.numerology = numerology
        self.cell_id = cell_id
        self.ru_id = ru_id
        self.config = config or MacConfig()
        self.mcs_table = mcs_table or McsTable()
        self.trace = trace
        self.ues: Dict[int, UeContext] = {}
        self.stats = MacStats()
        #: FAPI channel toward the PHY (through L2-side Orion when present).
        self.fapi_tx: Optional[ShmChannel] = None
        #: Uplink SDU sink: callable(ue_id, bearer_id, sdu).
        self.uplink_sink: Optional[Callable[[int, int, Any], None]] = None
        self._started = False
        self._dl_rr_cursor = 0
        # Per-instance TB id counter: keeps reruns of a scenario
        # bit-identical (a process-global counter would leak state
        # between deployments built in the same interpreter).
        self._tb_id_gen = itertools.count(1_000_000)

    # ------------------------------------------------------------------
    # Wiring / lifecycle
    # ------------------------------------------------------------------
    def set_fapi_channel(self, channel: ShmChannel) -> None:
        self.fapi_tx = channel

    def start(self) -> None:
        """Onboard the cell and begin per-slot scheduling."""
        if self._started:
            return
        self._started = True
        if self.fapi_tx is not None:
            self.fapi_tx.send(
                ConfigRequest(
                    cell_id=self.cell_id,
                    slot=self.slot_clock.slot_at(self.now),
                    num_prbs=self.numerology.num_prbs,
                    numerology_mu=self.numerology.mu,
                    tdd_pattern=self.tdd.pattern,
                    ru_id=self.ru_id,
                )
            )
            self.fapi_tx.send(StartRequest(cell_id=self.cell_id))
        next_slot = self.slot_clock.slot_at(self.now) + 1
        self.sim.schedule_periodic(
            self.slot_clock.slot_duration_ns,
            self._slot_tick,
            first_at=self.slot_clock.slot_start(next_slot) + 10 * US,
            label=f"{self.name}.tick",
        )

    # ------------------------------------------------------------------
    # UE management
    # ------------------------------------------------------------------
    def register_ue(
        self, ue_id: int, bearers: List[RlcBearerConfig], snr_db: float = 10.0
    ) -> UeContext:
        """Admit a UE with the given bearers (called at attach)."""
        ctx = UeContext(ue_id=ue_id, snr_db=snr_db)
        for bearer in bearers:
            ctx.dl_tx[bearer.bearer_id] = RlcTransmitter(
                bearer, queue_limit_bytes=self.config.dl_queue_limit_bytes
            )
            ctx.ul_rx[bearer.bearer_id] = RlcReceiver(
                bearer, now_fn=SimClock(self.sim)
            )
        self.ues[ue_id] = ctx
        if self.trace is not None:
            self.trace.record(self.now, "l2.ue_registered", ue=ue_id)
        return ctx

    def deregister_ue(self, ue_id: int) -> None:
        """Remove a UE (RLF/detach): all its L2 state is released."""
        self.ues.pop(ue_id, None)
        if self.trace is not None:
            self.trace.record(self.now, "l2.ue_deregistered", ue=ue_id)

    def send_downlink(self, ue_id: int, bearer_id: int, sdu: Any, size_bytes: int) -> bool:
        """Entry point for core-network DL traffic toward a UE."""
        ctx = self.ues.get(ue_id)
        if ctx is None:
            return False
        tx = ctx.dl_tx.get(bearer_id)
        if tx is None:
            return False
        return tx.enqueue(sdu, size_bytes)

    # ------------------------------------------------------------------
    # FAPI receive path (indications from the PHY via Orion)
    # ------------------------------------------------------------------
    def receive_fapi(self, message: FapiMessage, channel: ShmChannel) -> None:
        if isinstance(message, CrcIndication):
            self._on_crc(message)
        elif isinstance(message, RxDataIndication):
            self._on_rx_data(message)
        elif isinstance(message, UciIndication):
            self._on_uci(message)

    def _on_crc(self, message: CrcIndication) -> None:
        for result in message.results:
            ctx = self.ues.get(result.ue_id)
            if ctx is None:
                continue
            ctx.snr_db = result.measured_snr_db
            outstanding = ctx.ul_outstanding.pop(result.tb_id, None)
            if result.crc_ok:
                self.stats.ul_crc_ok += 1
                continue
            self.stats.ul_crc_fail += 1
            if outstanding is None:
                continue
            if outstanding.retx_count < self.config.max_harq_retx:
                outstanding.retx_count += 1
                ctx.ul_retx_queue.append(outstanding)
            else:
                self.stats.ul_harq_failures += 1

    def _on_rx_data(self, message: RxDataIndication) -> None:
        for ue_id, _harq, _tb_id, payload in message.payloads:
            ctx = self.ues.get(ue_id)
            if ctx is None or payload is None:
                continue
            for item in payload:
                self._consume_ul_item(ctx, item)

    def _consume_ul_item(self, ctx: UeContext, item: TbItem) -> None:
        if isinstance(item, RlcStatus):
            # Status for a DL bearer: feed the DL transmitter.
            tx = ctx.dl_tx.get(item.bearer_id)
            if tx is not None:
                tx.on_status(item)
            return
        receiver = ctx.ul_rx.get(item.bearer_id)
        if receiver is None:
            return
        for sdu in receiver.on_pdu(item):
            if self.uplink_sink is not None:
                self.uplink_sink(ctx.ue_id, item.bearer_id, sdu)

    def _on_uci(self, message: UciIndication) -> None:
        for ue_id, pending in message.bsr_reports:
            ctx = self.ues.get(ue_id)
            if ctx is not None:
                ctx.ul_backlog_estimate = pending
        for fb in message.feedback:
            ctx = self.ues.get(fb.ue_id)
            if ctx is None:
                continue
            outstanding = ctx.dl_outstanding.get(fb.harq_process)
            if outstanding is None or outstanding.pdu.tb_id != fb.tb_id:
                continue
            if fb.ack:
                del ctx.dl_outstanding[fb.harq_process]
            else:
                self._queue_dl_retx(ctx, fb.harq_process)

    def _queue_dl_retx(self, ctx: UeContext, harq_process: int) -> None:
        outstanding = ctx.dl_outstanding.get(harq_process)
        if outstanding is None:
            return
        if outstanding.retx_count >= self.config.max_harq_retx:
            # HARQ exhausted: drop; RLC AM (or TCP) recovers.
            del ctx.dl_outstanding[harq_process]
            self.stats.dl_harq_failures += 1
            return
        if harq_process not in ctx.dl_retx_queue:
            ctx.dl_retx_queue.append(harq_process)

    # ------------------------------------------------------------------
    # Slot engine
    # ------------------------------------------------------------------
    def _slot_tick(self) -> None:
        # Fires 10 µs into each slot, so the current slot is slot_at(now).
        abs_slot = self.slot_clock.slot_at(self.now)
        target = abs_slot + self.config.schedule_ahead_slots
        self._expire_harq(abs_slot)
        self._maybe_emit_status(abs_slot)
        slot_type = self.tdd.slot_type(target)
        ul_req = UlTtiRequest(cell_id=self.cell_id, slot=target, pdus=[])
        dl_req = DlTtiRequest(cell_id=self.cell_id, slot=target, pdus=[])
        tx_data = TxDataRequest(cell_id=self.cell_id, slot=target, payloads=[])
        if slot_type is SlotType.UPLINK:
            ul_req.pdus = self._schedule_uplink(target)
        elif slot_type is SlotType.DOWNLINK:
            dl_req.pdus, tx_data.payloads = self._schedule_downlink(target)
        if self.fapi_tx is not None:
            self.fapi_tx.send(ul_req)
            self.fapi_tx.send(dl_req)
            if tx_data.payloads:
                self.fapi_tx.send(tx_data)

    def _expire_harq(self, now_slot: int) -> None:
        """DTX timeouts: missing CRC/UCI responses count as NACK."""
        timeout = self.config.harq_timeout_slots
        for ctx in self.ues.values():
            expired_ul = [
                tb_id
                for tb_id, out in ctx.ul_outstanding.items()
                if now_slot - out.granted_slot > timeout
            ]
            for tb_id in expired_ul:
                out = ctx.ul_outstanding.pop(tb_id)
                self.stats.ul_dtx_timeouts += 1
                if out.retx_count < self.config.max_harq_retx:
                    out.retx_count += 1
                    ctx.ul_retx_queue.append(out)
                else:
                    self.stats.ul_harq_failures += 1
            expired_dl = [
                pid
                for pid, out in ctx.dl_outstanding.items()
                if now_slot - out.sent_slot > timeout and pid not in ctx.dl_retx_queue
            ]
            for pid in expired_dl:
                self._queue_dl_retx(ctx, pid)

    def _maybe_emit_status(self, abs_slot: int) -> None:
        """Queue RLC AM status reports for UL bearers onto the DL path."""
        for ctx in self.ues.values():
            if self.now - ctx.last_status_at < self.config.status_interval_ns:
                continue
            ctx.last_status_at = self.now
            for bearer_id, receiver in ctx.ul_rx.items():
                if receiver.config.mode is RlcMode.AM and receiver.status_due:
                    ctx.pending_dl_status.append(receiver.build_status())

    # ------------------------------------------------------------------
    # Downlink scheduling
    # ------------------------------------------------------------------
    def _tb_bytes(self, prbs: int, entry: McsEntry) -> int:
        res = self.numerology.resource_elements_per_slot(prbs)
        usable = res * self.config.usable_re_fraction
        return int(usable * entry.modulation.bits_per_symbol * entry.code_rate) // 8

    def _schedule_downlink(
        self, target_slot: int
    ) -> Tuple[List[PdschPdu], List[Tuple[int, Any]]]:
        pdus: List[PdschPdu] = []
        payloads: List[Tuple[int, Any]] = []
        candidates = [
            ctx
            for ctx in self.ues.values()
            if ctx.active
            and (
                ctx.dl_retx_queue
                or ctx.pending_dl_status
                or any(tx.has_data for tx in ctx.dl_tx.values())
            )
        ]
        if not candidates:
            return pdus, payloads
        prbs_each = max(1, self.config.total_prbs // len(candidates))
        # Round-robin rotation for fairness across slots.
        self._dl_rr_cursor += 1
        rotation = self._dl_rr_cursor % len(candidates)
        candidates = candidates[rotation:] + candidates[:rotation]
        for ctx in candidates:
            pdu_payload = self._schedule_ue_downlink(ctx, target_slot, prbs_each)
            if pdu_payload is not None:
                pdu, payload = pdu_payload
                pdus.append(pdu)
                payloads.append((pdu.tb_id, payload))
        return pdus, payloads

    def _schedule_ue_downlink(
        self, ctx: UeContext, target_slot: int, prbs: int
    ) -> Optional[Tuple[PdschPdu, List[TbItem]]]:
        # HARQ retransmissions take absolute priority.
        if ctx.dl_retx_queue:
            pid = ctx.dl_retx_queue.pop(0)
            outstanding = ctx.dl_outstanding.get(pid)
            if outstanding is not None:
                outstanding.retx_count += 1
                outstanding.sent_slot = target_slot
                pdu = PdschPdu(
                    ue_id=ctx.ue_id,
                    harq_process=pid,
                    modulation=outstanding.pdu.modulation,
                    prbs=outstanding.pdu.prbs,
                    new_data=False,
                    tb_id=outstanding.pdu.tb_id,
                    tb_bytes=outstanding.pdu.tb_bytes,
                    retx_index=outstanding.retx_count,
                )
                self.stats.dl_tbs_retransmitted += 1
                return pdu, outstanding.payload
        pid = ctx.free_dl_process(self.config.dl_harq_processes)
        if pid is None:
            return None
        entry = self.mcs_table.select(ctx.snr_db)
        capacity = self._tb_bytes(prbs, entry)
        items: List[TbItem] = []
        used = 0
        while ctx.pending_dl_status and used < capacity:
            status = ctx.pending_dl_status.pop(0)
            items.append(status)
            used += status.wire_bytes
        for tx in ctx.dl_tx.values():
            if used >= capacity:
                break
            pulled = tx.pull(capacity - used)
            items.extend(pulled)
            used += sum(p.wire_bytes for p in pulled)
        if not items:
            return None
        tb_id = next(self._tb_id_gen)
        pdu = PdschPdu(
            ue_id=ctx.ue_id,
            harq_process=pid,
            modulation=entry.modulation,
            prbs=prbs,
            new_data=True,
            tb_id=tb_id,
            tb_bytes=max(used, 1),
            retx_index=0,
        )
        ctx.dl_outstanding[pid] = _DlOutstanding(
            pdu=pdu, payload=items, sent_slot=target_slot
        )
        self.stats.dl_tbs_scheduled += 1
        return pdu, items

    # ------------------------------------------------------------------
    # Uplink scheduling
    # ------------------------------------------------------------------
    def _ue_wants_ul_grant(self, ctx: UeContext, target_slot: int) -> bool:
        """BSR-driven admission, plus a periodic poll for idle UEs."""
        if ctx.ul_retx_queue or ctx.ul_backlog_estimate > 0:
            return True
        return (
            target_slot - ctx.last_ul_grant_slot >= self.config.ul_poll_interval_slots
        )

    def _schedule_uplink(self, target_slot: int) -> List[PuschPdu]:
        pdus: List[PuschPdu] = []
        active = [
            ctx
            for ctx in self.ues.values()
            if ctx.active and self._ue_wants_ul_grant(ctx, target_slot)
        ]
        if not active:
            return pdus
        prbs_each = max(1, self.config.total_prbs // len(active))
        for ctx in active:
            ctx.last_ul_grant_slot = target_slot
            # Pending retransmission grants first.
            if ctx.ul_retx_queue:
                out = ctx.ul_retx_queue.pop(0)
                pdu = PuschPdu(
                    ue_id=ctx.ue_id,
                    harq_process=out.pdu.harq_process,
                    modulation=out.pdu.modulation,
                    prbs=out.pdu.prbs,
                    new_data=False,
                    tb_id=out.pdu.tb_id,
                    tb_bytes=out.pdu.tb_bytes,
                    retx_index=out.retx_count,
                )
                out.granted_slot = target_slot
                ctx.ul_outstanding[pdu.tb_id] = out
                pdus.append(pdu)
                self.stats.ul_retx_granted += 1
                continue
            entry = self.mcs_table.select(ctx.snr_db)
            tb_bytes = self._tb_bytes(prbs_each, entry)
            ctx.ul_backlog_estimate = max(0, ctx.ul_backlog_estimate - tb_bytes)
            harq = ctx.next_ul_harq
            ctx.next_ul_harq = (ctx.next_ul_harq + 1) % self.config.ul_harq_processes
            tb_id = next(self._tb_id_gen)
            pdu = PuschPdu(
                ue_id=ctx.ue_id,
                harq_process=harq,
                modulation=entry.modulation,
                prbs=prbs_each,
                new_data=True,
                tb_id=tb_id,
                tb_bytes=tb_bytes,
                retx_index=0,
            )
            ctx.ul_outstanding[tb_id] = _UlOutstanding(
                pdu=pdu, granted_slot=target_slot
            )
            pdus.append(pdu)
            self.stats.ul_grants_issued += 1
        return pdus
