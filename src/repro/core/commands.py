"""Slingshot control packets.

Small Ethernet payloads exchanged between Orion and the switch data
plane. ``migrate_on_slot`` is the *only* way migrations are triggered:
Orion is the exclusive initiator and the switch merely executes at the
requested TTI boundary (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Wire size attributed to every Slingshot command/notification packet.
SLINGSHOT_CMD_BYTES = 64


@dataclass(frozen=True)
class MigrateOnSlot:
    """Orion -> switch: remap an RU to a new PHY at a future slot.

    All fronthaul packets with ``abs_slot >= slot`` are steered to (and
    accepted from) ``dest_phy_id``; earlier slots stay with the current
    primary. The comparison happens in the data plane on the timing
    fields of each fronthaul packet, so the flip is exact at the TTI
    boundary regardless of control-plane latency.
    """

    ru_id: int
    dest_phy_id: int
    slot: int


@dataclass(frozen=True)
class FailureNotification:
    """Switch -> Orion: a monitored PHY's heartbeat counter saturated."""

    phy_id: int
    #: Switch-side detection timestamp (ns).
    detected_at: int


@dataclass(frozen=True)
class SetMonitor:
    """Orion -> switch: arm or disarm failure monitoring for one PHY."""

    phy_id: int
    enabled: bool
