"""Slingshot — the paper's contribution.

Three cooperating components provide a "resilient PHY" abstraction to the
RU below and the L2 above, with no modification to either:

* :mod:`repro.core.fh_middlebox` — the in-switch fronthaul middlebox:
  virtual PHY addresses, the indirect RU-to-PHY mapping in data-plane
  registers, TTI-boundary-aligned `migrate_on_slot` execution, and
  downlink filtering of standby PHYs (paper §5).
* :mod:`repro.core.failure_detector` — in-switch failure detection using
  per-TTI downlink fronthaul packets as natural heartbeats, with
  packet-generator timer ticks and per-PHY saturating counters (§5.2).
* :mod:`repro.core.orion` — the software FAPI middlebox: decouples
  L2 and PHY over a lean stateless transport, keeps hot-standby
  secondaries alive with null FAPI requests, filters their responses,
  and orchestrates migration end to end (§6).
* :mod:`repro.core.migration` — cluster configuration and the planned
  migration / live-upgrade controller built on the above.
"""

from repro.core.commands import (
    MigrateOnSlot,
    FailureNotification,
    SetMonitor,
    SLINGSHOT_CMD_BYTES,
)
from repro.core.failure_detector import FailureDetector, DetectorConfig
from repro.core.fh_middlebox import FronthaulMiddlebox, MiddleboxConfig
from repro.core.orion import (
    L2SideOrion,
    PhySideOrion,
    OrionConfig,
    OrionDatagram,
    CellAssignment,
)
from repro.core.migration import MigrationController, ClusterConfig, PhyServer

__all__ = [
    "MigrateOnSlot",
    "FailureNotification",
    "SetMonitor",
    "SLINGSHOT_CMD_BYTES",
    "FailureDetector",
    "DetectorConfig",
    "FronthaulMiddlebox",
    "MiddleboxConfig",
    "L2SideOrion",
    "PhySideOrion",
    "OrionConfig",
    "OrionDatagram",
    "CellAssignment",
    "MigrationController",
    "ClusterConfig",
    "PhyServer",
]
