"""In-switch RAN failure detection (paper §5.2).

The insight: every healthy realtime vRAN layer emits a packet stream
spaced at most one TTI apart — the PHY sends downlink C-plane fronthaul
packets every slot — so these streams are natural heartbeats and no
RAN-side modification or dedicated heartbeat CPU is needed.

Mechanics, mirroring the P4 implementation:

* the switch packet generator injects ``n`` timer packets per timeout
  period ``T`` (paper defaults: T = 450 µs, n = 50 → 9 µs precision at a
  negligible 50 k packets/s internal rate, plus per-monitored-PHY tick
  streams);
* every downlink packet from PHY ``p`` writes 0 into ``counter[p]``;
* every timer packet increments the counters of monitored PHYs
  (saturating); a counter reaching ``n`` means no heartbeat arrived for
  a full period, and the timer packet is reformatted into a failure
  notification toward the registered Orion.

The timeout value is chosen against the measured maximum healthy
inter-packet gap (393 µs in the paper's testbed, §8.6): 450 µs leaves
margin against false positives while still detecting within ~1 TTI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.net.p4.registers import RegisterArray
from repro.sim.units import US
from repro.telemetry.metrics import active as _telemetry_active


@dataclass
class DetectorConfig:
    """Failure-detector parameters."""

    #: Timeout period T.
    timeout_ns: int = 450 * US
    #: Timer ticks per timeout period (n); precision = T/n.
    ticks_per_timeout: int = 50
    #: Maximum PHY id supported (register array size).
    max_phys: int = 256

    @property
    def tick_period_ns(self) -> int:
        return max(1, self.timeout_ns // self.ticks_per_timeout)

    @property
    def precision_ns(self) -> int:
        """Worst-case extra latency from tick granularity."""
        return self.tick_period_ns

    @property
    def pktgen_rate_pps(self) -> float:
        """Internal timer-packet rate for one monitored PHY."""
        return 1e9 / self.tick_period_ns


@dataclass
class DetectorStats:
    heartbeats_seen: int = 0
    ticks_processed: int = 0
    failures_detected: int = 0
    false_positives_rearmed: int = 0


class FailureDetector:
    """Per-PHY heartbeat-counter engine (data-plane state + logic)."""

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        notify: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.config = config or DetectorConfig()
        #: Called as notify(phy_id, detected_at_ns) on counter saturation.
        self.notify = notify
        width = max(self.config.ticks_per_timeout.bit_length() + 1, 8)
        self.counters = RegisterArray(
            "detector_counters", self.config.max_phys, width_bits=width
        )
        self._monitored: Set[int] = set()
        #: PHYs already reported (suppress duplicate notifications).
        self._reported: Set[int] = set()
        self.stats = DetectorStats()
        # Telemetry registry captured at construction; None keeps the
        # data-plane paths to a single attribute test per packet.
        self._metrics = _telemetry_active()
        #: Last heartbeat sim-time per PHY, tracked only when telemetry
        #: is enabled (feeds the detection-latency histogram).
        self._last_heartbeat_ns: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Control interface (driven by Orion command packets)
    # ------------------------------------------------------------------
    def set_monitor(self, phy_id: int, enabled: bool) -> None:
        """Arm or disarm monitoring of one PHY."""
        if enabled:
            self.counters.write(phy_id, 0)
            self._monitored.add(phy_id)
            if phy_id in self._reported:
                self._reported.discard(phy_id)
                self.stats.false_positives_rearmed += 1
        else:
            self._monitored.discard(phy_id)
            self._reported.discard(phy_id)

    def monitored_phys(self) -> List[int]:
        return sorted(self._monitored)

    def is_monitored(self, phy_id: int) -> bool:
        return phy_id in self._monitored

    # ------------------------------------------------------------------
    # Data-plane events
    # ------------------------------------------------------------------
    def on_heartbeat(self, phy_id: int, now_ns: Optional[int] = None) -> None:
        """A downlink packet from ``phy_id`` traversed the switch.

        ``now_ns`` is optional metadata for telemetry (last-heartbeat
        timestamps behind the detection-latency histogram); passing it
        never changes detector behaviour.
        """
        if 0 <= phy_id < self.counters.size:
            self.counters.write(phy_id, 0)
            self.stats.heartbeats_seen += 1
            if self._metrics is not None:
                self._metrics.counter("detector.heartbeat_resets").inc()
                if now_ns is not None:
                    self._last_heartbeat_ns[phy_id] = now_ns

    def on_timer_tick(self, now_ns: int) -> List[int]:
        """One timer-packet batch: increment all monitored counters.

        Returns PHY ids newly detected as failed (also delivered via the
        ``notify`` callback).
        """
        self.stats.ticks_processed += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("detector.ticks").inc()
        detected: List[int] = []
        threshold = self.config.ticks_per_timeout
        for phy_id in self._monitored:
            if phy_id in self._reported:
                continue
            value = self.counters.increment(phy_id)
            if value >= threshold:
                self._reported.add(phy_id)
                self.stats.failures_detected += 1
                detected.append(phy_id)
                if metrics is not None:
                    metrics.counter("detector.saturations").inc()
                    last = self._last_heartbeat_ns.get(phy_id)
                    if last is not None:
                        metrics.histogram(
                            "detector.detection_latency_ns"
                        ).observe(now_ns - last)
                if self.notify is not None:
                    self.notify(phy_id, now_ns)
        return detected
