"""Orion — the L2-to-PHY FAPI middlebox (paper §6).

Orion processes pair with an L2 ("L2-side Orion") or a PHY ("PHY-side
Orion") over the same shared-memory channel the two would normally share,
and talk to each other over a lean, stateless UDP transport across the
edge-datacenter network (§6.1). Because FAPI is a narrow waist shared by
all L2/PHY vendors, interposing here is implementation-agnostic.

The L2-side Orion:

* intercepts the L2's cell initialization (CONFIG/START) and replays it
  to *both* the primary and the secondary PHY, storing a copy so new
  secondaries can be spawned after a failover (§6.3);
* forwards each per-slot TTI request unmodified to the active PHY and
  fabricates a **null** TTI request for the standby, keeping it alive at
  negligible CPU cost (§6.2);
* forwards only the active PHY's responses up to the L2, silently
  dropping the standby's;
* on failure notification (or operator request), picks a migration slot,
  sends `migrate_on_slot` to the switch, and steers FAPI by slot number
  — requests for slots ≥ the boundary go (real) to the new PHY. The old
  primary's in-flight responses for pre-boundary slots keep being
  accepted (pipelined slot draining, Fig 7).

The PHY-side Orion is a stateless relay between the network transport
and its local PHY's SHM channel.

Both sides model a busy-polling DPDK worker: per-message service time
plus FIFO queueing, which is what the Fig 12 latency-vs-load
microbenchmark measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.commands import SLINGSHOT_CMD_BYTES, FailureNotification, MigrateOnSlot, SetMonitor
from repro.fapi.channels import ShmChannel
from repro.fapi.codec import wire_size
from repro.fapi.messages import (
    ConfigRequest,
    DlTtiRequest,
    FapiMessage,
    SlotIndication,
    StartRequest,
    TxDataRequest,
    UlTtiRequest,
    null_dl_tti,
    null_ul_tti,
)
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.phy.numerology import SlotClock
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.trace import TraceRecorder
from repro.sim.units import US
from repro.telemetry.metrics import active as _telemetry_active

#: Ethernet + IP + UDP overhead on each inter-Orion datagram.
UDP_OVERHEAD_BYTES = 46


@dataclass
class OrionDatagram:
    """One FAPI message in flight between two Orion processes."""

    message: FapiMessage
    #: PHY server id of the sender/receiver PHY side.
    phy_id: int
    #: True when flowing PHY -> L2 (an indication/response).
    is_response: bool

    @property
    def wire_bytes(self) -> int:
        return UDP_OVERHEAD_BYTES + wire_size(self.message)


@dataclass
class OrionConfig:
    """Per-process Orion tunables (service model per Fig 12)."""

    #: Fixed per-message processing cost (parse + transform + enqueue).
    service_base_ns: int = 1_500
    #: Additional cost per payload byte (copy through the UDP path).
    service_per_byte_ns: float = 0.42
    #: Slot margin used when choosing a failover migration boundary.
    failover_slot_margin: int = 1
    #: Slot margin for planned migrations (must exceed the L2's
    #: schedule-ahead depth so zero TTIs are dropped).
    planned_slot_margin: int = 6
    #: Slots of draining during which the old primary's responses for
    #: pre-boundary slots are still accepted.
    drain_slots: int = 4
    #: Upper bound on nulls fabricated for one arrival-time sequence gap
    #: (a huge jump, e.g. after a pause, must not flood the PHY).
    max_repair_slots: int = 8
    #: Response watchdog (§6.2 backstop for gray failures): if the active
    #: PHY's FAPI responses go silent for this many slots while its
    #: heartbeats keep the in-switch detector happy, the L2-side Orion
    #: fails the cell over itself.
    response_watchdog_slots: int = 8
    #: Times each migration's command packets are retransmitted (the
    #: switch command path is lossy under faults; commands are idempotent).
    command_retx_count: int = 8
    #: Slots between command retransmissions.
    command_retx_spacing_slots: int = 1


@dataclass
class OrionStats:
    messages_relayed: int = 0
    null_requests_sent: int = 0
    responses_dropped: int = 0
    drained_responses: int = 0
    migrations_initiated: int = 0
    failovers_handled: int = 0
    bytes_on_wire: int = 0
    queue_max_depth: int = 0
    #: Failure notifications for cells with no live standby.
    failovers_impossible: int = 0
    #: Gap-repair nulls not fabricated because the gap exceeded the cap.
    repair_slots_dropped: int = 0
    #: Failovers triggered by the L2-side response watchdog (gray faults).
    watchdog_failovers: int = 0
    #: Migration command packets retransmitted.
    commands_retransmitted: int = 0


class _ServiceQueue:
    """Single-worker FIFO modeling Orion's busy-polling DPDK thread."""

    def __init__(self, sim: Simulator, config: OrionConfig, name: str) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self._busy_until = 0
        self.depth = 0
        self.max_depth = 0

    def submit(
        self, size_bytes: int, action: Callable[..., None], *args: Any
    ) -> int:
        """Queue one message; returns its completion time.

        ``action(*args)`` runs at completion. The action is carried as a
        (callable, args) pair on a bound-method event — not a closure —
        so an in-flight queue survives a checkpoint pickle.
        """
        service = self.config.service_base_ns + round(
            size_bytes * self.config.service_per_byte_ns
        )
        start = max(self.sim.now, self._busy_until)
        done = start + service
        self._busy_until = done
        self.depth += 1
        self.max_depth = max(self.max_depth, self.depth)
        self.sim.at(done, self._complete, action, args, label=f"{self.name}.service")
        return done

    def _complete(self, action: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self.depth -= 1
        action(*args)


@dataclass
class CellAssignment:
    """L2-side Orion's bookkeeping for one cell (RU)."""

    cell_id: int
    ru_id: int
    primary_phy: int
    secondary_phy: Optional[int]
    #: Stored copy of the cell's initialization messages (§6.3).
    stored_config: Optional[ConfigRequest] = None
    #: Pending migration boundary: FAPI for slots >= this goes to the
    #: (new) destination PHY. None = no migration in progress.
    migration_slot: Optional[int] = None
    migration_dest: Optional[int] = None
    #: Old primary during a migration (drained, then retired).
    draining_phy: Optional[int] = None
    drain_until_slot: int = -1
    #: Servers that failed while serving this cell (placement avoids
    #: them until an operator explicitly revives them).
    failed_phys: Set[int] = field(default_factory=set)
    #: Response watchdog state: when the active PHY last produced an
    #: accepted FAPI response (None until one is seen, reset on migration).
    last_response_ns: Optional[int] = None
    #: Whether a watchdog check event is already scheduled for this cell.
    watchdog_pending: bool = False
    #: Monotonic migration counter; stale command retransmissions carry
    #: an older value and are discarded.
    migration_seq: int = 0


class PhySideOrion(Process):
    """Orion peer process running next to one PHY.

    Loss protection (§6.1): the inter-Orion transport is a lean
    stateless UDP, so a rare datacenter packet loss could starve the PHY
    of a slot's TTI request — which would crash it (§6.2) and, worse,
    silence its heartbeat for that slot, tripping the failure detector.
    The PHY-side Orion therefore runs a per-slot watchdog once a cell's
    TTI stream is flowing: if a slot's UL/DL TTI request has not arrived
    shortly before the PHY needs it, Orion discards that slot's messages
    and injects null requests in their place, keeping both the FAPI
    contract and the heartbeat cadence intact. Arrival-time gap repair
    covers any stragglers.
    """

    def __init__(
        self,
        sim: Simulator,
        phy_id: int,
        mac: MacAddress,
        config: Optional[OrionConfig] = None,
        slot_clock: Optional[SlotClock] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"orion-phy{phy_id}")
        self.phy_id = phy_id
        self.mac = mac
        self.config = config or OrionConfig()
        self.slot_clock = slot_clock
        self.trace = trace
        self.stats = OrionStats()
        self._queue = _ServiceQueue(sim, self.config, self.name)
        #: SHM channel toward the local PHY.
        self.shm_to_phy: Optional[ShmChannel] = None
        #: NIC uplink into the switch.
        self.uplink: Optional[Link] = None
        #: L2-side Orion's MAC (destination for responses).
        self.l2_orion_mac: Optional[MacAddress] = None
        #: Loss repair: last TTI-request slot seen per (cell, type-name).
        self._last_tti_slot: Dict[Tuple[int, str], int] = {}
        #: Nulls injected to cover transport losses.
        self.nulls_injected = 0
        #: Lead before slot start at which the watchdog injects.
        self.watchdog_lead_ns = 200_000
        self._watchdog_running = False
        # Telemetry registry captured at construction (None = disabled).
        self._metrics = _telemetry_active()

    # --- Network -> PHY -------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        payload = frame.payload
        if not isinstance(payload, OrionDatagram):
            return
        self.stats.messages_relayed += 1
        self._queue.submit(payload.wire_bytes, self._to_phy, payload.message)

    def _to_phy(self, message: FapiMessage) -> None:
        if self.shm_to_phy is None:
            return
        for repaired in self._repair_gaps(message):
            self.shm_to_phy.send(repaired)
        self.shm_to_phy.send(message)

    def _repair_gaps(self, message: FapiMessage) -> List[FapiMessage]:
        """Fabricate null TTI requests for slots lost on the transport."""
        if isinstance(message, UlTtiRequest):
            kind, make_null = "UL", null_ul_tti
        elif isinstance(message, DlTtiRequest):
            kind, make_null = "DL", null_dl_tti
        else:
            return []
        key = (message.cell_id, kind)
        last = self._last_tti_slot.get(key)
        self._last_tti_slot[key] = max(message.slot, last or message.slot)
        self._start_watchdog()
        if last is None or message.slot <= last + 1:
            return []
        cap = self.config.max_repair_slots
        missing = range(last + 1, min(message.slot, last + 1 + cap))
        dropped = (message.slot - last - 1) - len(missing)
        if dropped > 0:
            self.stats.repair_slots_dropped += dropped
        nulls = [make_null(message.cell_id, slot) for slot in missing]
        self.nulls_injected += len(nulls)
        if self._metrics is not None and nulls:
            self._metrics.counter(
                f"orion.phy{self.phy_id}.nulls_injected"
            ).inc(len(nulls))
        if self.trace is not None and nulls:
            self.trace.record(
                self.now, "orion.loss_repaired",
                phy=self.phy_id, cell=message.cell_id, count=len(nulls),
            )
        return nulls

    # --- Per-slot watchdog (deadline-based loss repair) -----------------
    def _start_watchdog(self) -> None:
        if self._watchdog_running or self.slot_clock is None:
            return
        self._watchdog_running = True
        self._arm_watchdog()

    def _arm_watchdog(self) -> None:
        assert self.slot_clock is not None
        next_slot = self.slot_clock.slot_at(self.now + self.watchdog_lead_ns) + 1
        fire_at = self.slot_clock.slot_start(next_slot) - self.watchdog_lead_ns
        self.sim.schedule_periodic(
            self.slot_clock.slot_duration_ns,
            self._watchdog_tick,
            first_at=fire_at,
            label=f"{self.name}.watchdog",
        )

    def _watchdog_tick(self) -> None:
        """Just before the PHY needs the upcoming slot's requests, check
        that they arrived; inject nulls for any that did not."""
        assert self.slot_clock is not None
        abs_slot = self.slot_clock.slot_at(self.now + self.watchdog_lead_ns)
        if self.shm_to_phy is None:
            return
        # Sorted, not insertion order: the dict is populated in arrival
        # order of the first UL/DL request, which can be a same-timestamp
        # tie — iteration must not depend on how that tie broke.
        for (cell_id, kind), last in sorted(self._last_tti_slot.items()):
            if last >= abs_slot:
                continue
            make_null = null_ul_tti if kind == "UL" else null_dl_tti
            for slot in range(last + 1, abs_slot + 1):
                self.shm_to_phy.send(make_null(cell_id, slot))
                self.nulls_injected += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        f"orion.phy{self.phy_id}.nulls_injected"
                    ).inc()
            self._last_tti_slot[(cell_id, kind)] = abs_slot
            if self.trace is not None:
                self.trace.record(
                    self.now, "orion.watchdog_nulls",
                    phy=self.phy_id, cell=cell_id, kind=kind, slot=abs_slot,
                )

    # --- PHY -> network ---------------------------------------------------
    def receive_fapi(self, message: FapiMessage, channel: ShmChannel) -> None:
        datagram = OrionDatagram(message=message, phy_id=self.phy_id, is_response=True)
        self.stats.messages_relayed += 1
        self.stats.bytes_on_wire += datagram.wire_bytes
        self._queue.submit(datagram.wire_bytes, self._to_network, datagram)

    def _to_network(self, datagram: OrionDatagram) -> None:
        if self.uplink is None or self.l2_orion_mac is None:
            return
        frame = EthernetFrame(
            src=self.mac,
            dst=self.l2_orion_mac,
            ethertype=EtherType.IPV4,
            payload=datagram,
            wire_bytes=datagram.wire_bytes,
        )
        self.uplink.send(frame)


class L2SideOrion(Process):
    """Orion peer process running next to the L2 — the migration brain."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacAddress,
        slot_clock: SlotClock,
        config: Optional[OrionConfig] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "orion-l2",
    ) -> None:
        super().__init__(sim, name)
        self.mac = mac
        self.slot_clock = slot_clock
        self.config = config or OrionConfig()
        self.trace = trace
        self.stats = OrionStats()
        self._queue = _ServiceQueue(sim, self.config, self.name)
        #: SHM channel toward the local L2.
        self.shm_to_l2: Optional[ShmChannel] = None
        #: Multi-cell: per-cell SHM channels when several L2 processes
        #: share this server (falls back to ``shm_to_l2``).
        self.shm_to_l2_by_cell: Dict[int, ShmChannel] = {}
        #: NIC uplink into the switch.
        self.uplink: Optional[Link] = None
        #: PHY server id -> PHY-side Orion MAC.
        self.phy_orion_macs: Dict[int, MacAddress] = {}
        #: Cell assignments by cell id.
        self.cells: Dict[int, CellAssignment] = {}
        #: Callback fired when a failover completes (hook for experiments).
        self.on_failover: Optional[Callable[[int, int], None]] = None
        #: Pooled-standby gate (fleet composer): consulted with the cell's
        #: assignment before a *failover* promotes its warm standby.
        #: Returning False denies the promotion (shared pool exhausted) and
        #: the cell degrades exactly as if it had no standby. ``None`` —
        #: the dedicated-standby default — always grants.
        self.standby_gate: Optional[Callable[[CellAssignment], bool]] = None
        # Telemetry registry captured at construction (None = disabled).
        self._metrics = _telemetry_active()

    # ------------------------------------------------------------------
    # Wiring / cluster config
    # ------------------------------------------------------------------
    def register_phy_server(self, phy_id: int, orion_mac: MacAddress) -> None:
        self.phy_orion_macs[phy_id] = orion_mac

    def assign_cell(
        self, cell_id: int, ru_id: int, primary_phy: int, secondary_phy: Optional[int]
    ) -> CellAssignment:
        assignment = CellAssignment(
            cell_id=cell_id,
            ru_id=ru_id,
            primary_phy=primary_phy,
            secondary_phy=secondary_phy,
        )
        self.cells[cell_id] = assignment
        return assignment

    # ------------------------------------------------------------------
    # L2 -> PHYs (requests)
    # ------------------------------------------------------------------
    def receive_fapi(self, message: FapiMessage, channel: ShmChannel) -> None:
        """FAPI request arriving from the local L2 over SHM."""
        assignment = self.cells.get(message.cell_id)
        if assignment is None:
            return
        size = wire_size(message)
        self._queue.submit(size, self._route_request, assignment, message)

    def _route_request(self, assignment: CellAssignment, message: FapiMessage) -> None:
        if isinstance(message, ConfigRequest):
            # Intercept + store initialization, duplicate to both PHYs (§6.3).
            assignment.stored_config = message
            self._send_to_phy(assignment.primary_phy, message)
            if assignment.secondary_phy is not None:
                self._send_to_phy(assignment.secondary_phy, message)
            return
        if isinstance(message, StartRequest):
            self._send_to_phy(assignment.primary_phy, message)
            if assignment.secondary_phy is not None:
                self._send_to_phy(assignment.secondary_phy, message)
            return
        if isinstance(message, (UlTtiRequest, DlTtiRequest, TxDataRequest)):
            active, standby = self._roles_for_slot(assignment, message.slot)
            self._send_to_phy(active, message)
            if self._metrics is not None:
                self._metrics.counter("orion.fapi_real_requests").inc()
            if standby is not None:
                null = self._null_counterpart(message)
                if null is not None:
                    self._send_to_phy(standby, null)
                    self.stats.null_requests_sent += 1
                    if self._metrics is not None:
                        self._metrics.counter("orion.fapi_null_requests").inc()
            return
        # Other control messages follow the current primary.
        self._send_to_phy(assignment.primary_phy, message)

    def _roles_for_slot(
        self, assignment: CellAssignment, slot: int
    ) -> Tuple[int, Optional[int]]:
        """(active, standby) PHY ids for a given slot's FAPI messages."""
        if (
            assignment.migration_slot is not None
            and assignment.migration_dest is not None
            and slot >= assignment.migration_slot
        ):
            active = assignment.migration_dest
            standby = (
                assignment.draining_phy
                if assignment.draining_phy is not None
                else assignment.primary_phy
            )
            if standby == active:
                standby = None
            return active, standby
        return assignment.primary_phy, assignment.secondary_phy

    def _null_counterpart(self, message: FapiMessage) -> Optional[FapiMessage]:
        """The null FAPI request keeping the standby alive for this slot."""
        if isinstance(message, UlTtiRequest):
            return null_ul_tti(message.cell_id, message.slot)
        if isinstance(message, DlTtiRequest):
            return null_dl_tti(message.cell_id, message.slot)
        # TX_DATA has no null counterpart; the standby needs none.
        return None

    def _send_to_phy(self, phy_id: Optional[int], message: FapiMessage) -> None:
        if phy_id is None or self.uplink is None:
            return
        mac = self.phy_orion_macs.get(phy_id)
        if mac is None:
            return
        datagram = OrionDatagram(message=message, phy_id=phy_id, is_response=False)
        self.stats.messages_relayed += 1
        self.stats.bytes_on_wire += datagram.wire_bytes
        frame = EthernetFrame(
            src=self.mac,
            dst=mac,
            ethertype=EtherType.IPV4,
            payload=datagram,
            wire_bytes=datagram.wire_bytes,
        )
        self.uplink.send(frame)

    # ------------------------------------------------------------------
    # PHYs -> L2 (responses) and switch notifications
    # ------------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        payload = frame.payload
        if isinstance(payload, FailureNotification):
            self._on_failure_notification(payload)
            return
        if not isinstance(payload, OrionDatagram):
            return
        self._queue.submit(payload.wire_bytes, self._route_response, payload)

    def _route_response(self, datagram: OrionDatagram) -> None:
        message = datagram.message
        assignment = self.cells.get(message.cell_id)
        if assignment is None:
            return
        if self._accept_response(assignment, datagram):
            self.stats.messages_relayed += 1
            active, _ = self._roles_for_slot(assignment, message.slot)
            if datagram.phy_id == active:
                self._note_response(assignment)
            channel = self.shm_to_l2_by_cell.get(message.cell_id, self.shm_to_l2)
            if channel is not None and not isinstance(message, SlotIndication):
                channel.send(message)
        else:
            self.stats.responses_dropped += 1

    # ------------------------------------------------------------------
    # Response watchdog (gray-failure backstop, §6.2)
    # ------------------------------------------------------------------
    # A hung PHY keeps emitting fronthaul heartbeats — the in-switch
    # detector sees a healthy server — while its FAPI responses stop.
    # The L2-side Orion is the one vantage point that observes the
    # response stream, so it runs a per-cell silence watchdog: if the
    # active PHY produces no accepted response for
    # ``response_watchdog_slots`` slots, Orion fails the cell over
    # without waiting for a switch notification that will never come.
    def _watchdog_threshold_ns(self) -> int:
        return self.config.response_watchdog_slots * self.slot_clock.slot_duration_ns

    def _note_response(self, assignment: CellAssignment) -> None:
        assignment.last_response_ns = self.now
        if not assignment.watchdog_pending:
            assignment.watchdog_pending = True
            self.sim.schedule(
                self._watchdog_threshold_ns(),
                self._watchdog_check,
                assignment,
                label=f"{self.name}.response-watchdog",
            )

    def _watchdog_check(self, assignment: CellAssignment) -> None:
        assignment.watchdog_pending = False
        if assignment.migration_slot is not None:
            return  # A migration is in flight; it resets the tracking.
        last = assignment.last_response_ns
        if last is None:
            return
        if self.now - last < self._watchdog_threshold_ns():
            # Fresh responses arrived; re-check when the current silence
            # window would expire.
            assignment.watchdog_pending = True
            self.sim.at(
                last + self._watchdog_threshold_ns(),
                self._watchdog_check,
                assignment,
                label=f"{self.name}.response-watchdog",
            )
            return
        # Silence exceeded the threshold: the active PHY is gray-failed.
        if assignment.primary_phy in assignment.failed_phys:
            return  # Failure already accounted (pooled-standby denial).
        if self._metrics is not None:
            self._metrics.counter("orion.watchdog_fires").inc()
        if self.trace is not None:
            self.trace.record(
                self.now,
                "orion.response_watchdog_fired",
                cell=assignment.cell_id,
                phy=assignment.primary_phy,
                silent_ns=self.now - last,
            )
        dest = self._failover_dest(assignment)
        if dest is None:
            self._note_failover_impossible(assignment, assignment.primary_phy)
            return
        self.stats.watchdog_failovers += 1
        self.stats.failovers_handled += 1
        self._start_migration(
            assignment,
            dest=dest,
            boundary=self.slot_clock.slot_at(self.now)
            + self.config.failover_slot_margin,
            failover=True,
        )

    def _accept_response(
        self, assignment: CellAssignment, datagram: OrionDatagram
    ) -> bool:
        """Only the slot's active PHY's responses reach the L2 — except
        that an old primary is drained: its responses for pre-boundary
        slots stay welcome while its pipeline empties (Fig 7)."""
        slot = datagram.message.slot
        active, _ = self._roles_for_slot(assignment, slot)
        if datagram.phy_id == active:
            if (
                assignment.migration_slot is not None
                and datagram.phy_id == assignment.draining_phy
            ):
                # The old primary is still producing pre-boundary output
                # from its slot pipeline (Fig 7); count the drain.
                self.stats.drained_responses += 1
            return True
        if (
            datagram.phy_id == assignment.draining_phy
            and assignment.migration_slot is not None
            and slot < assignment.migration_slot
            and self.slot_clock.slot_at(self.now) <= assignment.drain_until_slot
        ):
            self.stats.drained_responses += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Migration orchestration
    # ------------------------------------------------------------------
    def _on_failure_notification(self, notification: FailureNotification) -> None:
        """The switch detected a dead PHY: fail over every affected cell."""
        if self.trace is not None:
            self.trace.record(
                self.now, "orion.failure_notified", phy=notification.phy_id
            )
        for assignment in self.cells.values():
            if assignment.primary_phy != notification.phy_id:
                continue
            if assignment.migration_slot is not None:
                continue  # A migration is already in flight.
            if notification.phy_id in assignment.failed_phys:
                # Already accounted: a denied primary stays failed until
                # an operator revives it — duplicate notifications must
                # not inflate counters or claim a re-warmed pool seat.
                continue
            dest = self._failover_dest(assignment)
            if dest is None:
                # Degraded mode: the cell is down until an operator
                # intervenes — make that observable instead of silent.
                self._note_failover_impossible(assignment, notification.phy_id)
                continue
            self.stats.failovers_handled += 1
            self._start_migration(
                assignment,
                dest=dest,
                boundary=self.slot_clock.slot_at(self.now)
                + self.config.failover_slot_margin,
                failover=True,
            )

    def _failover_dest(self, assignment: CellAssignment) -> Optional[int]:
        """The standby to promote for a failover, or ``None`` when the
        cell is degraded — no standby, or the pooled-standby gate denied
        the warm seat (shared pool exhausted)."""
        if assignment.secondary_phy is None:
            return None
        if self.standby_gate is not None and not self.standby_gate(assignment):
            return None
        return assignment.secondary_phy

    def _note_failover_impossible(
        self, assignment: CellAssignment, phy_id: int
    ) -> None:
        self.stats.failovers_impossible += 1
        if self.standby_gate is not None:
            # Pooled-standby mode: pin the dead primary so the same
            # failure is counted exactly once across the notification and
            # watchdog paths, however many duplicates are in flight.
            assignment.failed_phys.add(phy_id)
        if self.trace is not None:
            self.trace.record(
                self.now,
                "orion.failover_impossible",
                cell=assignment.cell_id,
                phy=phy_id,
            )

    def planned_migration(self, cell_id: int, at_slot: Optional[int] = None) -> int:
        """Operator/controller-initiated migration; returns the boundary slot."""
        assignment = self.cells[cell_id]
        if assignment.secondary_phy is None:
            raise RuntimeError(f"cell {cell_id} has no secondary PHY")
        boundary = (
            at_slot
            if at_slot is not None
            else self.slot_clock.slot_at(self.now) + self.config.planned_slot_margin
        )
        self._start_migration(
            assignment, dest=assignment.secondary_phy, boundary=boundary, failover=False
        )
        return boundary

    def _start_migration(
        self, assignment: CellAssignment, dest: int, boundary: int, failover: bool
    ) -> None:
        self.stats.migrations_initiated += 1
        assignment.migration_slot = boundary
        assignment.migration_dest = dest
        assignment.draining_phy = None if failover else assignment.primary_phy
        assignment.drain_until_slot = boundary + self.config.drain_slots
        assignment.migration_seq += 1
        # The response watchdog re-arms on the new primary's first output.
        assignment.last_response_ns = None
        old_primary = assignment.primary_phy
        commands = (
            # Trigger the fronthaul flip in the switch data plane.
            MigrateOnSlot(ru_id=assignment.ru_id, dest_phy_id=dest, slot=boundary),
            # Re-arm monitoring: watch the new primary, stop watching the old.
            SetMonitor(phy_id=old_primary, enabled=False),
            SetMonitor(phy_id=dest, enabled=True),
        )
        for command in commands:
            self._send_command(command)
        # The command path is a single unacknowledged packet each; under
        # injected loss the migration would silently never commit. The
        # commands are idempotent (the switch ignores duplicates of an
        # already-committed boundary), so blind retransmission is safe.
        spacing = (
            self.config.command_retx_spacing_slots * self.slot_clock.slot_duration_ns
        )
        for attempt in range(1, self.config.command_retx_count + 1):
            self.sim.schedule(
                attempt * spacing,
                self._retransmit_commands,
                assignment,
                assignment.migration_seq,
                commands,
                label=f"{self.name}.cmd-retx",
            )
        if self.trace is not None:
            self.trace.record(
                self.now,
                "orion.migration_started",
                cell=assignment.cell_id,
                dest_phy=dest,
                boundary=boundary,
                failover=failover,
            )
        # Finalize roles once the boundary + draining window passes.
        finalize_at = self.slot_clock.slot_start(assignment.drain_until_slot + 1)
        self.sim.at(
            max(finalize_at, self.now),
            self._finalize_migration,
            assignment,
            dest,
            old_primary,
            failover,
            label=f"{self.name}.finalize",
        )

    def _finalize_migration(
        self,
        assignment: CellAssignment,
        dest: int,
        old_primary: int,
        failover: bool,
    ) -> None:
        if assignment.migration_dest != dest:
            return  # Superseded by a newer migration.
        assignment.primary_phy = dest
        # After a planned migration the old primary becomes the standby;
        # after a failover there is no standby until one is initialized.
        assignment.secondary_phy = None if failover else old_primary
        if failover:
            assignment.failed_phys.add(old_primary)
        assignment.migration_slot = None
        assignment.migration_dest = None
        assignment.draining_phy = None
        if self.trace is not None:
            self.trace.record(
                self.now,
                "orion.migration_finalized",
                cell=assignment.cell_id,
                primary=dest,
                secondary=assignment.secondary_phy,
            )
        if failover and self.on_failover is not None:
            self.on_failover(assignment.cell_id, dest)

    def initialize_secondary(self, cell_id: int, phy_id: int) -> None:
        """Spawn PHY processing for this cell on a new standby server,
        replaying the stored initialization messages (§6.3)."""
        assignment = self.cells[cell_id]
        if assignment.stored_config is None:
            raise RuntimeError(f"cell {cell_id} has no stored initialization")
        # The operator standing a server back up clears its failure record
        # (mirrors the injector's revive path) so it is eligible again.
        assignment.failed_phys.discard(phy_id)
        assignment.secondary_phy = phy_id
        self._send_to_phy(phy_id, assignment.stored_config)
        self._send_to_phy(phy_id, StartRequest(cell_id=cell_id))
        if self.trace is not None:
            self.trace.record(
                self.now, "orion.secondary_initialized", cell=cell_id, phy=phy_id
            )

    def _retransmit_commands(
        self, assignment: CellAssignment, seq: int, commands: tuple
    ) -> None:
        if assignment.migration_seq != seq:
            return  # Superseded by a newer migration.
        for command in commands:
            self._send_command(command)
        self.stats.commands_retransmitted += len(commands)
        if self._metrics is not None:
            self._metrics.counter("orion.commands_retransmitted").inc(
                len(commands)
            )

    def _send_command(self, command) -> None:
        """Send a Slingshot command packet into the switch."""
        if self.uplink is None:
            return
        frame = EthernetFrame(
            src=self.mac,
            dst=MacAddress(0x02_5A_5A_00_00_02),  # Consumed by the pipeline.
            ethertype=EtherType.SLINGSHOT,
            payload=command,
            wire_bytes=SLINGSHOT_CMD_BYTES,
        )
        self.uplink.send(frame)
