"""Cluster configuration and the migration/upgrade controller.

Planned migrations and live upgrades (paper §8.3) are operator-initiated;
this module provides the thin management layer the paper attributes to
"Orion's management thread": knowing which PHY servers exist, choosing
primary/secondary placements, and sequencing upgrades (migrate traffic
off a server, upgrade it, optionally migrate back).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.orion import L2SideOrion
from repro.net.addresses import MacAddress
from repro.phy.process import PhyProcess
from repro.sim.trace import TraceRecorder


@dataclass
class PhyServer:
    """One vRAN server able to host PHY processing."""

    phy_id: int
    phy: PhyProcess
    orion_mac: MacAddress


@dataclass
class ClusterConfig:
    """The deployment's PHY servers and cell placements."""

    servers: Dict[int, PhyServer] = field(default_factory=dict)

    def add_server(self, server: PhyServer) -> None:
        self.servers[server.phy_id] = server

    def server(self, phy_id: int) -> PhyServer:
        return self.servers[phy_id]

    def spare_servers(self, exclude: List[int]) -> List[int]:
        """Server ids not in ``exclude`` (candidates for new secondaries)."""
        return sorted(pid for pid in self.servers if pid not in exclude)


class MigrationController:
    """Sequences planned migrations and live PHY upgrades."""

    def __init__(
        self,
        orion: L2SideOrion,
        cluster: ClusterConfig,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.orion = orion
        self.cluster = cluster
        self.trace = trace

    def planned_migration(self, cell_id: int) -> int:
        """Move a cell's PHY processing to its secondary; returns boundary slot."""
        return self.orion.planned_migration(cell_id)

    def live_upgrade(self, cell_id: int, new_decoder_iterations: int) -> int:
        """Zero-downtime PHY upgrade (paper §8.3).

        The secondary server is restarted with the upgraded PHY software
        (modeled as a higher decoder-iteration budget), re-initialized for
        the cell, and traffic is migrated onto it at a TTI boundary. The
        old primary remains as the new standby, ready for the next
        upgrade wave.
        """
        assignment = self.orion.cells[cell_id]
        secondary_id = assignment.secondary_phy
        if secondary_id is None:
            raise RuntimeError(f"cell {cell_id} has no secondary to upgrade onto")
        server = self.cluster.server(secondary_id)
        # Upgrade the standby: restart its PHY process with the new build.
        server.phy.crash(reason="upgrade restart")
        server.phy.restart(decoder_iterations=new_decoder_iterations)
        # Replay the stored initialization so it re-hosts the cell.
        self.orion.initialize_secondary(cell_id, secondary_id)
        if self.trace is not None:
            self.trace.record(
                self.orion.now,
                "controller.upgrade",
                cell=cell_id,
                phy=secondary_id,
                decoder_iterations=new_decoder_iterations,
            )
        # Give the freshly started standby a few slots of null FAPI before
        # migrating onto it.
        return self.orion.planned_migration(cell_id)

    def replace_failed_secondary(
        self, cell_id: int, allow_restart: bool = False
    ) -> Optional[int]:
        """After a failover, stand up a new secondary on a spare server.

        Placement policy: prefer live spares; servers that previously
        failed while serving this cell are never chosen automatically
        (the fault may recur). With ``allow_restart`` an operator may
        additionally offer crashed-but-repaired spares, which are
        restarted before re-initialization.
        """
        assignment = self.orion.cells[cell_id]
        in_use = [assignment.primary_phy]
        if assignment.secondary_phy is not None:
            in_use.append(assignment.secondary_phy)
        candidates = [
            phy_id
            for phy_id in self.cluster.spare_servers(exclude=in_use)
            if phy_id not in assignment.failed_phys
        ]
        alive = [p for p in candidates if self.cluster.server(p).phy.alive]
        chosen: Optional[int] = None
        if alive:
            chosen = alive[0]
        elif allow_restart and candidates:
            chosen = candidates[0]
        if chosen is None:
            return None
        server = self.cluster.server(chosen)
        if not server.phy.alive:
            server.phy.restart()
        self.orion.initialize_secondary(cell_id, chosen)
        return chosen
