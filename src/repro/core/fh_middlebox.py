"""The in-switch fronthaul middlebox (paper §5).

A :class:`FronthaulMiddlebox` is a switch pipeline (installable on
:class:`repro.net.switch.Switch`) implementing:

* **Virtual PHY addresses** — RUs address a virtual MAC; the pipeline
  resolves it through the indirection ``src MAC → RU ID → PHY ID →
  PHY MAC`` so the RU never learns which server serves it.
* **Indirect RU-to-PHY mapping** — the RU-to-PHY map is a data-plane
  register array indexed by small operator-assigned IDs, sidestepping
  the impossibility of data-plane-updatable MAC-to-MAC hash tables.
* **TTI-aligned migration** — `migrate_on_slot` commands are stored in
  a register-based request store; every fronthaul packet's slot fields
  are compared against pending requests, and the first matching packet
  flips the mapping — exactness the ~29 ms control-plane path cannot
  provide.
* **Downlink filtering** — C/U-plane packets from a PHY that is not the
  RU's active PHY for that slot are dropped (hot standbys stay
  invisible to the RU) while still refreshing the sender's liveness
  counter.
* **Failure detection** — per-PHY heartbeat counters driven by the
  packet generator (see :mod:`repro.core.failure_detector`); detection
  reformats the timer packet into a failure notification toward Orion.

Non-fronthaul traffic (Orion's UDP FAPI transport, app/core flows)
falls through to ordinary static L2 forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.commands import (
    SLINGSHOT_CMD_BYTES,
    FailureNotification,
    MigrateOnSlot,
    SetMonitor,
)
from repro.core.failure_detector import DetectorConfig, FailureDetector
from repro.fronthaul.oran import (
    CplaneMessage,
    UplaneDownlink,
    UplaneUplink,
    UplaneUplinkControlOnly,
)
from repro.net.addresses import MacAddress
from repro.net.p4.packetgen import PacketGenerator, TimerPacket
from repro.net.p4.registers import RegisterArray
from repro.net.p4.tables import MatchActionTable
from repro.net.packet import EtherType, EthernetFrame
from repro.net.switch import ForwardingDecision, Switch
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry.metrics import active as _telemetry_active


@dataclass
class MiddleboxConfig:
    """Sizing and behaviour knobs for the pipeline."""

    max_rus: int = 256
    max_phys: int = 256
    detector: DetectorConfig = None  # type: ignore[assignment]
    #: Ablation switch: when False, migrate commands apply immediately
    #: instead of at the requested TTI boundary (protocol-violating).
    align_to_tti: bool = True

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = DetectorConfig(max_phys=self.max_phys)


@dataclass
class MiddleboxStats:
    ul_steered: int = 0
    dl_forwarded: int = 0
    dl_filtered: int = 0
    migrations_executed: int = 0
    commands_received: int = 0
    duplicate_commands_ignored: int = 0
    notifications_sent: int = 0
    unknown_dropped: int = 0


class FronthaulMiddlebox:
    """Slingshot's switch data plane + its Python control-plane surface."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[MiddleboxConfig] = None,
        trace: Optional[TraceRecorder] = None,
        name: str = "fh-mbox",
    ) -> None:
        self.sim = sim
        self.config = config or MiddleboxConfig()
        self.trace = trace
        self.name = name
        cfg = self.config
        # --- Match-action tables (control-plane installed) -------------
        self.ru_id_directory = MatchActionTable(
            "ru_id_directory", cfg.max_rus, key_bits=48, value_bits=8
        )
        self.phy_id_directory = MatchActionTable(
            "phy_id_directory", cfg.max_phys, key_bits=48, value_bits=8
        )
        self.phy_address_directory = MatchActionTable(
            "phy_address_directory", cfg.max_phys, key_bits=8, value_bits=48 + 9
        )
        self.ru_port_directory = MatchActionTable(
            "ru_port_directory", cfg.max_rus, key_bits=8, value_bits=48 + 9
        )
        # --- Data-plane registers --------------------------------------
        self.ru_to_phy = RegisterArray("ru_to_phy", cfg.max_rus, width_bits=8)
        self.mig_valid = RegisterArray("mig_valid", cfg.max_rus, width_bits=1)
        self.mig_slot = RegisterArray("mig_slot", cfg.max_rus, width_bits=32)
        self.mig_dest = RegisterArray("mig_dest", cfg.max_rus, width_bits=8)
        # The previous PHY and the committed boundary: late packets for
        # pre-boundary slots must still resolve to the *old* PHY (the
        # "primary for TTIs <= i, secondary for > i" contract outlives
        # the register flip).
        self.prev_phy = RegisterArray("prev_phy", cfg.max_rus, width_bits=8)
        self.last_boundary = RegisterArray("last_boundary", cfg.max_rus, width_bits=32)
        # --- Failure detector -------------------------------------------
        self.detector = FailureDetector(cfg.detector, notify=self._on_detected)
        self._pktgen: Optional[PacketGenerator] = None
        self._switch: Optional[Switch] = None
        #: Where failure notifications are sent: (mac, port).
        self.notification_target: Optional[Tuple[MacAddress, int]] = None
        #: Fallback static L2 table for non-fronthaul traffic.
        self.l2_table: Dict[MacAddress, int] = {}
        self.stats = MiddleboxStats()
        # Telemetry registry captured at construction (None when
        # disabled, keeping the per-packet paths to one attribute test).
        self._metrics = _telemetry_active()
        #: Virtual PHY MAC each RU addresses (for documentation/testing;
        #: steering keys off the RU's source MAC, not this address).
        self.virtual_phy_mac = MacAddress(0x02_5A_5A_00_00_01)

    # ------------------------------------------------------------------
    # Bring-up (control plane, install-time)
    # ------------------------------------------------------------------
    def install_on(self, switch: Switch) -> None:
        """Install this pipeline on a switch and start the timer stream."""
        switch.pipeline = self
        self._switch = switch
        self._pktgen = PacketGenerator.for_timeout(
            self.sim,
            inject=self._inject_timer,
            timeout_ns=self.config.detector.timeout_ns,
            ticks_per_timeout=self.config.detector.ticks_per_timeout,
            name=f"{self.name}.pktgen",
        )

    def reconfigure_detector(self, detector_config) -> None:
        """Swap the failure-detector parameters (timeout, tick count).

        Restarts the packet generator so the tick period matches the new
        timeout; monitored PHYs and counters are re-armed.
        """
        monitored = self.detector.monitored_phys()
        self.config.detector = detector_config
        self.detector = FailureDetector(detector_config, notify=self._on_detected)
        for phy_id in monitored:
            self.detector.set_monitor(phy_id, True)
        if self._pktgen is not None:
            self._pktgen.stop()
            self._pktgen = PacketGenerator.for_timeout(
                self.sim,
                inject=self._inject_timer,
                timeout_ns=detector_config.timeout_ns,
                ticks_per_timeout=detector_config.ticks_per_timeout,
                name=f"{self.name}.pktgen",
            )

    def register_ru(self, ru_id: int, mac: MacAddress, port: int, initial_phy: int) -> None:
        """Install an RU's directory entries and initial PHY mapping."""
        self.ru_id_directory.install(mac, ru_id, now=self.sim.now)
        self.ru_port_directory.install(ru_id, (mac, port), now=self.sim.now)
        self.ru_to_phy.write(ru_id, initial_phy)

    def register_phy(self, phy_id: int, mac: MacAddress, port: int) -> None:
        """Install a PHY server's directory entries."""
        self.phy_id_directory.install(mac, phy_id, now=self.sim.now)
        self.phy_address_directory.install(phy_id, (mac, port), now=self.sim.now)
        self.l2_table[mac] = port

    def register_l2_host(self, mac: MacAddress, port: int) -> None:
        """Install a plain host (L2 server, core uplink) for L2 forwarding."""
        self.l2_table[mac] = port

    def set_notification_target(self, mac: MacAddress, port: int) -> None:
        """Configure where failure notifications go (the L2-side Orion)."""
        self.notification_target = (mac, port)

    # ------------------------------------------------------------------
    # Pipeline (SwitchPipeline protocol)
    # ------------------------------------------------------------------
    def process(
        self, frame: EthernetFrame, in_port: int, switch: Switch
    ) -> ForwardingDecision:
        if frame.ethertype == EtherType.ECPRI:
            return self._process_fronthaul(frame, in_port)
        if frame.ethertype == EtherType.SLINGSHOT:
            return self._process_command(frame, in_port)
        return self._process_l2(frame, in_port)

    # --- Fronthaul ----------------------------------------------------
    def _process_fronthaul(
        self, frame: EthernetFrame, in_port: int
    ) -> ForwardingDecision:
        payload = frame.payload
        if isinstance(payload, (UplaneUplink, UplaneUplinkControlOnly)):
            return self._process_uplink(frame, payload)
        if isinstance(payload, (CplaneMessage, UplaneDownlink)):
            return self._process_downlink(frame, payload)
        self.stats.unknown_dropped += 1
        return ForwardingDecision.drop(frame)

    def _effective_phy(self, ru_id: int, abs_slot: int) -> int:
        """Active PHY for an RU at a given slot.

        A pending `migrate_on_slot` takes effect for packets whose slot is
        at or past the boundary even before the register flip commits;
        symmetrically, packets for slots *before* the last committed
        boundary still resolve to the previous PHY, so a late pre-boundary
        packet can never leak from (or to) the wrong PHY.
        """
        if self.mig_valid.read(ru_id) and abs_slot >= self.mig_slot.read(ru_id):
            return self.mig_dest.read(ru_id)
        if abs_slot < self.last_boundary.read(ru_id):
            return self.prev_phy.read(ru_id)
        return self.ru_to_phy.read(ru_id)

    def _maybe_commit_migration(self, ru_id: int, abs_slot: int) -> None:
        """Data-plane commit: first packet at/past the boundary flips the map."""
        if not self.mig_valid.read(ru_id):
            return
        if abs_slot >= self.mig_slot.read(ru_id):
            dest = self.mig_dest.read(ru_id)
            self.prev_phy.write(ru_id, self.ru_to_phy.read(ru_id))
            self.last_boundary.write(ru_id, self.mig_slot.read(ru_id))
            self.ru_to_phy.write(ru_id, dest)
            self.mig_valid.write(ru_id, 0)
            self.stats.migrations_executed += 1
            if self._metrics is not None:
                self._metrics.counter(f"mbox.ru{ru_id}.migrations").inc()
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "mbox.migration_committed",
                    ru=ru_id,
                    dest_phy=dest,
                    slot=abs_slot,
                )

    def _process_uplink(self, frame: EthernetFrame, payload) -> ForwardingDecision:
        ru_id = self.ru_id_directory.lookup(frame.src)
        if ru_id is None:
            self.stats.unknown_dropped += 1
            return ForwardingDecision.drop(frame)
        self._maybe_commit_migration(ru_id, payload.abs_slot)
        phy_id = self._effective_phy(ru_id, payload.abs_slot)
        target = self.phy_address_directory.lookup(phy_id)
        if target is None:
            self.stats.unknown_dropped += 1
            return ForwardingDecision.drop(frame)
        mac, port = target
        self.stats.ul_steered += 1
        if self._metrics is not None:
            self._metrics.counter(f"mbox.ru{ru_id}.ul_forwarded").inc()
        return ForwardingDecision([port], frame.copy_to(mac))

    def _process_downlink(self, frame: EthernetFrame, payload) -> ForwardingDecision:
        src_phy = self.phy_id_directory.lookup(frame.src)
        if src_phy is None:
            self.stats.unknown_dropped += 1
            return ForwardingDecision.drop(frame)
        # Any downlink packet refreshes its sender's liveness counter,
        # including packets about to be filtered.
        self.detector.on_heartbeat(src_phy, self.sim.now)
        ru_id = payload.ru_id
        self._maybe_commit_migration(ru_id, payload.abs_slot)
        active = self._effective_phy(ru_id, payload.abs_slot)
        if src_phy != active:
            self.stats.dl_filtered += 1
            if self._metrics is not None:
                self._metrics.counter(f"mbox.ru{ru_id}.dl_filtered").inc()
            return ForwardingDecision.drop(frame)
        target = self.ru_port_directory.lookup(ru_id)
        if target is None:
            self.stats.unknown_dropped += 1
            return ForwardingDecision.drop(frame)
        mac, port = target
        self.stats.dl_forwarded += 1
        if self._metrics is not None:
            self._metrics.counter(f"mbox.ru{ru_id}.dl_forwarded").inc()
        return ForwardingDecision([port], frame.copy_to(mac))

    # --- Slingshot commands ---------------------------------------------
    def _process_command(self, frame: EthernetFrame, in_port: int) -> ForwardingDecision:
        payload = frame.payload
        self.stats.commands_received += 1
        if isinstance(payload, MigrateOnSlot):
            if self.config.align_to_tti:
                # Idempotence guard: Orion retransmits migrate_on_slot
                # against command loss. A copy arriving after its
                # migration already committed must not re-arm the
                # boundary (it would double-commit and corrupt prev_phy).
                if (
                    not self.mig_valid.read(payload.ru_id)
                    and self.ru_to_phy.read(payload.ru_id) == payload.dest_phy_id
                    and self.last_boundary.read(payload.ru_id) == payload.slot
                ):
                    self.stats.duplicate_commands_ignored += 1
                    return ForwardingDecision.drop(frame)
                self.mig_dest.write(payload.ru_id, payload.dest_phy_id)
                self.mig_slot.write(payload.ru_id, payload.slot)
                self.mig_valid.write(payload.ru_id, 1)
            else:
                # Ablation: flip immediately, ignoring TTI alignment.
                self.ru_to_phy.write(payload.ru_id, payload.dest_phy_id)
                self.mig_valid.write(payload.ru_id, 0)
                self.stats.migrations_executed += 1
            if self.trace is not None:
                self.trace.record(
                    self.sim.now,
                    "mbox.migrate_on_slot",
                    ru=payload.ru_id,
                    dest_phy=payload.dest_phy_id,
                    slot=payload.slot,
                )
        elif isinstance(payload, SetMonitor):
            self.detector.set_monitor(payload.phy_id, payload.enabled)
        return ForwardingDecision.drop(frame)

    # --- Plain L2 fallback ----------------------------------------------
    def _process_l2(self, frame: EthernetFrame, in_port: int) -> ForwardingDecision:
        port = self.l2_table.get(frame.dst)
        if port is None or port == in_port:
            self.stats.unknown_dropped += 1
            return ForwardingDecision.drop(frame)
        return ForwardingDecision([port], frame)

    # ------------------------------------------------------------------
    # Timer / detection path
    # ------------------------------------------------------------------
    def _inject_timer(self, tick: TimerPacket) -> None:
        """Packet-generator injection: run the detector's tick logic."""
        self.detector.on_timer_tick(self.sim.now)

    def _on_detected(self, phy_id: int, detected_at: int) -> None:
        """Reformat the detecting timer packet into a failure notification."""
        if self.trace is not None:
            self.trace.record(detected_at, "mbox.failure_detected", phy=phy_id)
        if self.notification_target is None or self._switch is None:
            return
        mac, port = self.notification_target
        notification = EthernetFrame(
            src=self.virtual_phy_mac,
            dst=mac,
            ethertype=EtherType.SLINGSHOT,
            payload=FailureNotification(phy_id=phy_id, detected_at=detected_at),
            wire_bytes=SLINGSHOT_CMD_BYTES,
        )
        self.stats.notifications_sent += 1
        self._switch.sim.schedule(
            self._switch.pipeline_latency_ns,
            self._switch.port(port).transmit,
            notification,
            label=f"{self.name}.notify",
        )
