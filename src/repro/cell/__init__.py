"""Cell deployment builder.

Wires a full simulated vRAN cell — RU, edge switch with Slingshot's
fronthaul middlebox, PHY servers with PHY-side Orions, the L2 server with
its L2-side Orion, the core network, the application server, and UEs —
mirroring the paper's three-server testbed (Table 1).

:func:`build_slingshot_cell` produces the protected deployment;
:func:`build_baseline_cell` produces the no-Slingshot baseline with a hot
backup vRAN stack (used by §8.1's comparison).
"""

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import (
    SlingshotCell,
    BaselineCell,
    build_slingshot_cell,
    build_baseline_cell,
)

__all__ = [
    "CellConfig",
    "UeProfile",
    "SlingshotCell",
    "BaselineCell",
    "build_slingshot_cell",
    "build_baseline_cell",
]
