"""Multi-cell deployments: several RUs, shared PHY servers.

The paper (§2.2, §8): "Each process (e.g., PHY or L2) supports handling
multiple RUs" and "in real deployments, Slingshot will co-locate primary
and secondary PHYs for different RUs within PHY processes, i.e., our
design does not require dedicated servers to run just secondary PHYs."

:func:`build_dual_cell_deployment` builds exactly that economical
placement: two RUs, two PHY servers, with crossed roles —

* cell 0: primary on server 0, hot standby on server 1;
* cell 1: primary on server 1, hot standby on server 0.

Each server therefore runs one *real* workload and one null-FAPI standby
concurrently inside one PHY process. Killing either server fails over
only the cell it was primary for; the other cell keeps its primary and
merely loses its standby.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cell.config import CellConfig, UeProfile, default_bearers
from repro.cell.deployment import (
    PhyServerNode,
    ServerNic,
    _wire_phy_server,
)
from repro.core.fh_middlebox import FronthaulMiddlebox, MiddleboxConfig
from repro.core.migration import ClusterConfig, MigrationController, PhyServer
from repro.core.orion import L2SideOrion
from repro.corenet.core import CoreConfig, CoreNetwork
from repro.corenet.server import AppServer
from repro.fapi.channels import ShmChannel
from repro.fronthaul.air import AirInterface
from repro.fronthaul.ru import RadioUnit
from repro.l2.mac import L2Process, MacConfig
from repro.net.addresses import MacAllocator
from repro.net.switch import Switch
from repro.phy.channel import UeChannelModel
from repro.phy.numerology import SlotClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.ue.ue import UeConfig, UserEquipment


@dataclass
class CellSite:
    """One RU's slice of the deployment."""

    cell_id: int
    ru: RadioUnit
    air: AirInterface
    l2: L2Process
    ues: Dict[int, UserEquipment]


@dataclass
class DualCellDeployment:
    """Two cells sharing two PHY servers with crossed primary/standby."""

    config: CellConfig
    sim: Simulator
    trace: TraceRecorder
    rng: RngRegistry
    slot_clock: SlotClock
    switch: Switch
    middlebox: FronthaulMiddlebox
    phy_servers: List[PhyServerNode]
    l2_orion: L2SideOrion
    core: CoreNetwork
    server: AppServer
    cells: List[CellSite]
    controller: MigrationController

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def kill_phy_at(self, phy_id: int, time_ns: int) -> None:
        self.sim.at(
            time_ns,
            self.phy_servers[phy_id].phy.crash,
            "SIGKILL",
            label=f"kill-phy{phy_id}",
        )

    def all_ues(self) -> List[UserEquipment]:
        return [ue for site in self.cells for ue in site.ues.values()]


def build_dual_cell_deployment(
    config: Optional[CellConfig] = None,
    ues_per_cell: int = 1,
    sim: Optional[Simulator] = None,
) -> DualCellDeployment:
    """Build the two-cell, two-server crossed-roles deployment.

    ``sim`` plugs the pod into an existing event loop (island mode, same
    contract as :func:`repro.cell.deployment.build_slingshot_cell`).
    """
    config = config or CellConfig()
    if sim is None:
        sim = Simulator(tie_shuffle_seed=config.tie_shuffle_seed)
    trace = TraceRecorder()
    rng = RngRegistry(seed=config.seed)
    slot_clock = SlotClock(config.numerology)
    macs = MacAllocator()
    switch = Switch(sim, name="edge-switch")
    middlebox = FronthaulMiddlebox(sim, config=MiddleboxConfig(), trace=trace)
    middlebox.install_on(switch)
    # --- Two PHY servers (each will host one primary + one standby) ----
    phy_servers = [
        _wire_phy_server(
            config, sim, trace, rng, switch, middlebox, slot_clock, macs,
            phy_id, config.phy_decoder_iterations, vran_instance_id=1,
        )
        for phy_id in range(2)
    ]
    # --- L2 server: one L2 process per cell + a shared L2-side Orion ----
    l2_orion_mac = macs.allocate()
    l2_nic = ServerNic(name="l2-server")
    l2_port = switch.attach(
        l2_nic, latency_ns=config.edge_link_latency_ns, name="l2"
    )
    l2_orion = L2SideOrion(sim, mac=l2_orion_mac, slot_clock=slot_clock, trace=trace)
    l2_orion.uplink = l2_port.ingress_link  # type: ignore[attr-defined]
    l2_nic.orion = l2_orion
    middlebox.register_l2_host(l2_orion_mac, l2_port.number)
    middlebox.set_notification_target(l2_orion_mac, l2_port.number)
    cluster = ClusterConfig()
    for node in phy_servers:
        node.orion.l2_orion_mac = l2_orion_mac
        l2_orion.register_phy_server(node.phy_id, node.orion_mac)
        cluster.add_server(
            PhyServer(phy_id=node.phy_id, phy=node.phy, orion_mac=node.orion_mac)
        )
    controller = MigrationController(l2_orion, cluster, trace=trace)
    # --- Core / app server ----------------------------------------------
    core = CoreNetwork(
        sim,
        config=CoreConfig(backhaul_latency_ns=config.backhaul_latency_ns),
        registry=rng,
        trace=trace,
    )
    server = AppServer(sim, core, latency_to_core_ns=config.server_latency_ns)
    # --- Per-cell sites: RU, L2, UEs, crossed assignment -----------------
    sites: List[CellSite] = []
    next_ue_id = 1
    for cell_id in range(2):
        air = AirInterface()
        ru_mac = macs.allocate()
        ru = RadioUnit(
            sim=sim, ru_id=cell_id, mac=ru_mac,
            virtual_phy_mac=middlebox.virtual_phy_mac,
            slot_clock=slot_clock, tdd=config.tdd, air=air,
            trace=trace, name=f"ru{cell_id}",
        )
        ru_port = switch.attach(
            ru, bandwidth_bps=25e9,
            latency_ns=config.fronthaul_latency_ns, name=f"ru{cell_id}",
        )
        ru.uplink = ru_port.ingress_link  # type: ignore[attr-defined]
        primary = cell_id          # Crossed roles: 0->(0,1), 1->(1,0).
        secondary = 1 - cell_id
        middlebox.register_ru(cell_id, ru_mac, ru_port.number, initial_phy=primary)
        l2 = L2Process(
            sim=sim, slot_clock=slot_clock, tdd=config.tdd,
            numerology=config.numerology, cell_id=cell_id, ru_id=cell_id,
            config=MacConfig(total_prbs=config.numerology.num_prbs),
            trace=trace, name=f"l2-cell{cell_id}",
        )
        shm_to_orion = ShmChannel(sim, l2_orion, name=f"shm-l2{cell_id}->orion")
        shm_to_l2 = ShmChannel(sim, l2, name=f"shm-orion->l2{cell_id}")
        l2.set_fapi_channel(shm_to_orion)
        l2_orion.shm_to_l2_by_cell[cell_id] = shm_to_l2
        l2_orion.assign_cell(
            cell_id=cell_id, ru_id=cell_id,
            primary_phy=primary, secondary_phy=secondary,
        )
        if cell_id == 0:
            # Core's primary binding; per-UE routing handles the rest.
            core.bind_l2(l2)
        else:
            l2.uplink_sink = core._on_uplink_sdu
        ues: Dict[int, UserEquipment] = {}
        for index in range(ues_per_cell):
            profile = config.ue_profiles[index % len(config.ue_profiles)]
            ue_id = next_ue_id
            next_ue_id += 1
            channel = UeChannelModel(
                rng=rng.stream(f"ue{ue_id}.channel"),
                mean_snr_db=profile.mean_snr_db,
                shadow_sigma_db=profile.shadow_sigma_db,
                fade_probability=profile.fade_probability,
            )
            ue = UserEquipment(
                sim=sim, ue_id=ue_id, slot_clock=slot_clock, tdd=config.tdd,
                air=air, channel=channel, rng=rng.stream(f"ue{ue_id}.modem"),
                bearers=default_bearers(),
                config=UeConfig(rlf_timeout_ns=config.rlf_timeout_ns),
                trace=trace, name=f"cell{cell_id}-ue{ue_id}",
            )
            core.admit_ue(ue, default_bearers(), snr_hint_db=profile.mean_snr_db, l2=l2)
            ues[ue_id] = ue
        ru.start()
        l2.start()
        sites.append(CellSite(cell_id=cell_id, ru=ru, air=air, l2=l2, ues=ues))
    # Arm monitoring of both servers once heartbeats flow.
    for phy_id in range(2):
        sim.schedule(
            5 * slot_clock.slot_duration_ns,
            middlebox.detector.set_monitor, phy_id, True,
            label="arm-detector",
        )
    return DualCellDeployment(
        config=config, sim=sim, trace=trace, rng=rng, slot_clock=slot_clock,
        switch=switch, middlebox=middlebox, phy_servers=phy_servers,
        l2_orion=l2_orion, core=core, server=server, cells=sites,
        controller=controller,
    )
