"""Cell and UE configuration.

Defaults reproduce the paper's testbed (Table 1): 100 MHz at 3.5 GHz,
30 kHz subcarrier spacing (500 µs TTIs), TDD "DDDSU", three PHY-capable
servers behind a Tofino-class switch, and three UEs with distinct link
qualities (two phones and a Raspberry Pi).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.l2.rlc import RlcBearerConfig, RlcMode
from repro.phy.numerology import Numerology, TddPattern
from repro.sim.units import MS


@dataclass(frozen=True)
class UeProfile:
    """One UE's identity and radio characteristics."""

    ue_id: int
    name: str
    #: Mean link SNR; sets which MCS the UE sustains.
    mean_snr_db: float
    #: Slow-fading standard deviation.
    shadow_sigma_db: float = 1.2
    #: Probability per slot of entering a short fade.
    fade_probability: float = 0.0003


#: The paper's three UEs, with SNRs chosen so the phones sit near the
#: 16-QAM threshold (they benefit from the Fig 11 FEC upgrade) and the
#: Raspberry Pi enjoys a stronger link.
DEFAULT_UE_PROFILES: List[UeProfile] = [
    UeProfile(ue_id=1, name="OnePlus N10", mean_snr_db=15.5),
    UeProfile(ue_id=2, name="Samsung A52s", mean_snr_db=14.5),
    UeProfile(ue_id=3, name="Raspberry Pi", mean_snr_db=19.5),
]


def default_bearers() -> List[RlcBearerConfig]:
    """The two default radio bearers per UE.

    Bearer 1 (UM) carries latency-sensitive traffic — UDP iperf, video,
    ping — so radio losses surface to the app. Bearer 2 (AM) carries TCP,
    adding RLC retransmission underneath TCP's own recovery. This mirrors
    the standard mapping of traffic classes onto RLC modes.
    """
    return [
        RlcBearerConfig(bearer_id=1, mode=RlcMode.UM),
        RlcBearerConfig(bearer_id=2, mode=RlcMode.AM),
    ]


@dataclass
class CellConfig:
    """Everything needed to stand up one simulated cell."""

    seed: int = 0
    #: Tie-order race detector (see :class:`repro.sim.engine.Simulator`):
    #: when set, same-timestamp events fire in seeded-random order instead
    #: of FIFO. Traces must not depend on the value.
    tie_shuffle_seed: Optional[int] = None
    numerology: Numerology = field(default_factory=Numerology)
    tdd: TddPattern = field(default_factory=TddPattern)
    ue_profiles: List[UeProfile] = field(default_factory=lambda: list(DEFAULT_UE_PROFILES))
    #: Decoder iterations of the (initial) PHY software build.
    phy_decoder_iterations: int = 8
    #: Decoder iterations of the secondary, when it runs a different
    #: build (None = same as primary). Used by the upgrade experiment.
    secondary_decoder_iterations: Optional[int] = None
    #: Number of PHY-capable servers (>= 2 for a hot standby).
    num_phy_servers: int = 2
    #: Massive-MIMO mode (§10 extension): PHYs maintain long-lived
    #: beamforming state whose array gain lifts uplink SNR.
    massive_mimo: bool = False
    #: UE radio-link-failure timer.
    rlf_timeout_ns: int = 50 * MS
    #: One-way latency between the app server and the core.
    server_latency_ns: int = 6 * MS
    #: One-way backhaul latency between the core and the L2.
    backhaul_latency_ns: int = 4 * MS
    #: Inter-server link latency inside the edge datacenter.
    edge_link_latency_ns: int = 1_000
    #: Fronthaul fiber latency (RU to switch).
    fronthaul_latency_ns: int = 25_000
